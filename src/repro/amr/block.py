"""Mesh block payloads: grid data, face extraction/insertion, split/merge.

A block stores ``(num_vars, nx+2, ny+2, nz+2)`` doubles — interior cells
plus one ghost layer per side — in **real** payload mode, or a per-variable
surrogate vector (the block's total per variable) in **synthetic** mode.
Synthetic mode keeps the exact task/message structure of a run while
skipping the arithmetic; refinement transfers conserve the surrogate sums
so checksums remain meaningful.
"""

from __future__ import annotations

import numpy as np

from .ids import BlockId, LO


def _plane_axes(axis):
    return tuple(a for a in range(3) if a != axis)


class Block:
    """One mesh block: id plus payload."""

    __slots__ = ("bid", "data", "surrogate")

    def __init__(self, bid: BlockId, data=None, surrogate=None):
        self.bid = bid
        self.data = data  # (nv, nx+2, ny+2, nz+2) or None
        self.surrogate = surrogate  # (nv,) or None

    @property
    def is_real(self) -> bool:
        return self.data is not None

    # ------------------------------------------------------------------
    @classmethod
    def initial(cls, bid: BlockId, config, seed_fn=None) -> "Block":
        """Create a root-level block with its initial condition.

        ``seed_fn(bid, var)`` returns the initial value of a variable on a
        block; by default a smooth deterministic function of position.
        """
        nv = config.num_vars
        if config.payload == "synthetic":
            values = np.array(
                [_default_seed(bid, v) for v in range(nv)], dtype=np.float64
            )
            surrogate = values * config.cells_per_block
            return cls(bid, data=None, surrogate=surrogate)
        shape = (nv, config.nx + 2, config.ny + 2, config.nz + 2)
        data = np.zeros(shape, dtype=np.float64)
        for v in range(nv):
            seed = seed_fn(bid, v) if seed_fn else _default_seed(bid, v)
            data[v, 1:-1, 1:-1, 1:-1] = seed
        return cls(bid, data=data, surrogate=None)

    # ------------------------------------------------------------------
    # Checksum
    # ------------------------------------------------------------------
    def checksum(self, vslice: slice) -> np.ndarray:
        """Per-variable interior sums for the given variable group."""
        if self.is_real:
            return self.data[vslice, 1:-1, 1:-1, 1:-1].sum(axis=(1, 2, 3))
        return self.surrogate[vslice].copy()

    # ------------------------------------------------------------------
    # Stencil
    # ------------------------------------------------------------------
    def fill_boundary_ghosts(self, vslice: slice, open_faces):
        """Reflect interior values into ghosts of domain-boundary faces.

        ``open_faces`` is an iterable of (axis, side) pairs that have *no*
        neighbor (the domain boundary).  Interior ghosts are filled by the
        communication phase instead.
        """
        if not self.is_real:
            return
        d = self.data[vslice]
        for axis, side in open_faces:
            sl_ghost = [slice(None)] * 4
            sl_edge = [slice(None)] * 4
            if side == LO:
                sl_ghost[axis + 1] = 0
                sl_edge[axis + 1] = 1
            else:
                sl_ghost[axis + 1] = -1
                sl_edge[axis + 1] = -2
            d[tuple(sl_ghost)] = d[tuple(sl_edge)]

    def stencil7(self, vslice: slice):
        """Apply the 7-point average stencil to the interior cells."""
        if not self.is_real:
            return
        d = self.data[vslice]
        c = d[:, 1:-1, 1:-1, 1:-1]
        result = (
            c
            + d[:, :-2, 1:-1, 1:-1]
            + d[:, 2:, 1:-1, 1:-1]
            + d[:, 1:-1, :-2, 1:-1]
            + d[:, 1:-1, 2:, 1:-1]
            + d[:, 1:-1, 1:-1, :-2]
            + d[:, 1:-1, 1:-1, 2:]
        ) / 7.0
        d[:, 1:-1, 1:-1, 1:-1] = result

    def stencil27(self, vslice: slice):
        """Apply the 27-point average stencil (miniAMR's other option).

        Note: edge/corner ghost cells are not exchanged by the face-only
        communication (the mini-app has the same property); they hold the
        reflected/previous values, which is sufficient for a proxy code.
        """
        if not self.is_real:
            return
        d = self.data[vslice]
        acc = None
        for dx in (0, 1, 2):
            sx = slice(dx, d.shape[1] - 2 + dx)
            for dy in (0, 1, 2):
                sy = slice(dy, d.shape[2] - 2 + dy)
                for dz in (0, 1, 2):
                    sz = slice(dz, d.shape[3] - 2 + dz)
                    part = d[:, sx, sy, sz]
                    acc = part.copy() if acc is None else acc + part
        d[:, 1:-1, 1:-1, 1:-1] = acc / 27.0

    def apply_stencil_kind(self, vslice: slice, kind: int):
        """Dispatch on the configured stencil (7 or 27 point)."""
        if kind == 7:
            self.stencil7(vslice)
        elif kind == 27:
            self.stencil27(vslice)
        else:  # pragma: no cover - config validates
            raise ValueError(f"unknown stencil {kind}")

    # ------------------------------------------------------------------
    # Faces
    # ------------------------------------------------------------------
    def extract_face(self, axis: int, side: int, vslice: slice) -> np.ndarray:
        """Copy the outermost interior plane on (axis, side)."""
        if not self.is_real:
            return None
        sl = [slice(None), slice(1, -1), slice(1, -1), slice(1, -1)]
        sl[0] = vslice
        sl[axis + 1] = 1 if side == LO else -2
        return np.ascontiguousarray(self.data[tuple(sl)])

    def insert_ghost(self, axis: int, side: int, vslice: slice, plane):
        """Write a full face plane into the ghost layer on (axis, side)."""
        if not self.is_real:
            return
        sl = [slice(None), slice(1, -1), slice(1, -1), slice(1, -1)]
        sl[0] = vslice
        sl[axis + 1] = 0 if side == LO else -1
        self.data[tuple(sl)] = plane

    def extract_face_quadrant(
        self, axis: int, side: int, vslice: slice, quadrant
    ) -> np.ndarray:
        """Quarter of the face plane (for sending to a finer neighbor)."""
        if not self.is_real:
            return None
        plane = self.extract_face(axis, side, vslice)
        return _plane_quadrant(plane, quadrant).copy()

    def insert_ghost_quadrant(
        self, axis: int, side: int, vslice: slice, quadrant, quarter
    ):
        """Write a quarter plane into one quadrant of the ghost layer
        (receiving a restricted face from a finer neighbor)."""
        if not self.is_real:
            return
        sl = [slice(None), slice(1, -1), slice(1, -1), slice(1, -1)]
        sl[0] = vslice
        sl[axis + 1] = 0 if side == LO else -1
        ghost = self.data[tuple(sl)]
        _plane_quadrant(ghost, quadrant)[...] = quarter


def _plane_quadrant(plane: np.ndarray, quadrant) -> np.ndarray:
    """View of one quadrant of a (nv, A, B) face plane."""
    qa, qb = quadrant
    na, nb = plane.shape[1], plane.shape[2]
    ha, hb = na // 2, nb // 2
    sa = slice(qa * ha, (qa + 1) * ha)
    sb = slice(qb * hb, (qb + 1) * hb)
    return plane[:, sa, sb]


def restrict_plane(plane: np.ndarray) -> np.ndarray:
    """Average 2×2 cells of a fine face plane → quarter-size plane."""
    nv, na, nb = plane.shape
    return plane.reshape(nv, na // 2, 2, nb // 2, 2).mean(axis=(2, 4))


def prolong_plane(quarter: np.ndarray) -> np.ndarray:
    """Replicate each coarse face cell 2×2 → full-size fine plane."""
    return np.repeat(np.repeat(quarter, 2, axis=1), 2, axis=2)


# ----------------------------------------------------------------------
# Refinement payload operations
# ----------------------------------------------------------------------
def split_block(block: Block, config) -> dict:
    """Split a block into its 8 children (each cell value / 8).

    Each parent cell maps to 2×2×2 child cells carrying 1/8 of its value,
    so the total over all variables is conserved — miniAMR's convention,
    and the invariant our property tests check.

    Returns ``{child_id: Block}``.
    """
    children = {}
    child_ids = block.bid.children()
    if not block.is_real:
        for cid in child_ids:
            children[cid] = Block(cid, surrogate=block.surrogate / 8.0)
        return children

    nx, ny, nz = config.nx, config.ny, config.nz
    hx, hy, hz = nx // 2, ny // 2, nz // 2
    interior = block.data[:, 1:-1, 1:-1, 1:-1]
    for cid in child_ids:
        oi = cid.i & 1
        oj = cid.j & 1
        ok = cid.k & 1
        octant = interior[
            :,
            oi * hx : (oi + 1) * hx,
            oj * hy : (oj + 1) * hy,
            ok * hz : (ok + 1) * hz,
        ]
        fine = np.repeat(
            np.repeat(np.repeat(octant, 2, axis=1), 2, axis=2), 2, axis=3
        ) / 8.0
        data = np.zeros_like(block.data)
        data[:, 1:-1, 1:-1, 1:-1] = fine
        children[cid] = Block(cid, data=data)
    return children


def consolidate_blocks(parent_id: BlockId, children: dict, config) -> Block:
    """Merge 8 sibling blocks into their parent (2×2×2 sum pooling).

    Inverse of :func:`split_block`: conserves per-variable totals.
    """
    child_ids = parent_id.children()
    missing = [cid for cid in child_ids if cid not in children]
    if missing:
        raise ValueError(f"missing children for consolidation: {missing}")

    sample = children[child_ids[0]]
    if not sample.is_real:
        surrogate = sum(children[cid].surrogate for cid in child_ids)
        return Block(parent_id, surrogate=surrogate)

    nx, ny, nz = config.nx, config.ny, config.nz
    hx, hy, hz = nx // 2, ny // 2, nz // 2
    data = np.zeros_like(sample.data)
    for cid in child_ids:
        child = children[cid]
        fine = child.data[:, 1:-1, 1:-1, 1:-1]
        nv = fine.shape[0]
        coarse = fine.reshape(nv, hx, 2, hy, 2, hz, 2).sum(axis=(2, 4, 6))
        oi = cid.i & 1
        oj = cid.j & 1
        ok = cid.k & 1
        data[
            :,
            1 + oi * hx : 1 + (oi + 1) * hx,
            1 + oj * hy : 1 + (oj + 1) * hy,
            1 + ok * hz : 1 + (ok + 1) * hz,
        ] = coarse
    return Block(parent_id, data=data)


def _default_seed(bid: BlockId, var: int) -> float:
    """Deterministic smooth initial value for (block, variable)."""
    level_scale = 1.0 / (1 << bid.level)
    return (
        1.0
        + 0.5 * var
        + 0.1 * ((bid.i + 1) * 1.3 + (bid.j + 1) * 0.7 + (bid.k + 1) * 0.41)
        * level_scale
    )

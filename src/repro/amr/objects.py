"""Moving objects that drive refinement decisions.

MiniAMR defines up to 16 object types (rectangles, spheroids, hemispheres,
cylinders — surface or solid).  Objects have an initial center and size,
per-timestep movement and growth rates, and may bounce off the domain
boundary.  A mesh block is tagged for refinement when it intersects an
object's *surface* (and, for solid objects, also when it lies inside).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, IntEnum


class Classification(Enum):
    OUTSIDE = "outside"
    SURFACE = "surface"
    INSIDE = "inside"


class Shape(IntEnum):
    """Object type codes (mirroring miniAMR's taxonomy)."""

    SURFACE_RECTANGLE = 0
    SOLID_RECTANGLE = 1
    SURFACE_SPHEROID = 2
    SOLID_SPHEROID = 3
    SURFACE_HEMISPHERE_PX = 4
    SOLID_HEMISPHERE_PX = 5
    SURFACE_HEMISPHERE_NX = 6
    SOLID_HEMISPHERE_NX = 7
    SURFACE_CYLINDER_X = 8
    SOLID_CYLINDER_X = 9
    SURFACE_CYLINDER_Y = 10
    SOLID_CYLINDER_Y = 11
    SURFACE_CYLINDER_Z = 12
    SOLID_CYLINDER_Z = 13
    SURFACE_HEMISPHERE_PZ = 14
    SOLID_HEMISPHERE_PZ = 15

    @property
    def solid(self) -> bool:
        return bool(self.value & 1)


@dataclass(frozen=True)
class ObjectSpec:
    """Immutable description of one input object."""

    shape: Shape
    center: tuple  # (cx, cy, cz) in the unit cube
    size: tuple  # semi-axes (sx, sy, sz)
    move: tuple = (0.0, 0.0, 0.0)  # per-timestep movement
    grow: tuple = (0.0, 0.0, 0.0)  # per-timestep size increase
    bounce: bool = False

    def __post_init__(self):
        if len(self.center) != 3 or len(self.size) != 3:
            raise ValueError("center and size must have 3 components")
        if any(s <= 0 for s in self.size):
            raise ValueError("object size components must be positive")


class MovingObject:
    """Mutable runtime state of one object (advanced every timestep)."""

    def __init__(self, spec: ObjectSpec):
        self.spec = spec
        self.center = list(spec.center)
        self.size = list(spec.size)
        self.move = list(spec.move)
        self.grow = list(spec.grow)

    # ------------------------------------------------------------------
    def advance(self, timesteps: int = 1):
        """Advance position and size by ``timesteps`` steps."""
        for _ in range(timesteps):
            for a in range(3):
                self.center[a] += self.move[a]
                self.size[a] += self.grow[a]
                if self.spec.bounce:
                    # Reflect when the object's extent crosses the domain.
                    if self.center[a] - self.size[a] < 0.0 and self.move[a] < 0:
                        self.move[a] = -self.move[a]
                    elif (
                        self.center[a] + self.size[a] > 1.0
                        and self.move[a] > 0
                    ):
                        self.move[a] = -self.move[a]

    # ------------------------------------------------------------------
    def classify(self, bounds) -> Classification:
        """Classify a block's bounding box against this object."""
        shape = self.spec.shape
        if shape in (Shape.SURFACE_RECTANGLE, Shape.SOLID_RECTANGLE):
            return self._classify_box(bounds)
        if shape in (Shape.SURFACE_SPHEROID, Shape.SOLID_SPHEROID):
            return self._classify_ellipsoid(bounds, axes=(0, 1, 2))
        if shape in (
            Shape.SURFACE_HEMISPHERE_PX,
            Shape.SOLID_HEMISPHERE_PX,
        ):
            return self._classify_half(bounds, axis=0, positive=True)
        if shape in (
            Shape.SURFACE_HEMISPHERE_NX,
            Shape.SOLID_HEMISPHERE_NX,
        ):
            return self._classify_half(bounds, axis=0, positive=False)
        if shape in (
            Shape.SURFACE_HEMISPHERE_PZ,
            Shape.SOLID_HEMISPHERE_PZ,
        ):
            return self._classify_half(bounds, axis=2, positive=True)
        if shape in (Shape.SURFACE_CYLINDER_X, Shape.SOLID_CYLINDER_X):
            return self._classify_cylinder(bounds, axis=0)
        if shape in (Shape.SURFACE_CYLINDER_Y, Shape.SOLID_CYLINDER_Y):
            return self._classify_cylinder(bounds, axis=1)
        if shape in (Shape.SURFACE_CYLINDER_Z, Shape.SOLID_CYLINDER_Z):
            return self._classify_cylinder(bounds, axis=2)
        raise ValueError(f"unhandled shape {shape}")  # pragma: no cover

    def refine_trigger(self, bounds) -> bool:
        """Whether a block with ``bounds`` must be refined for this object."""
        cls = self.classify(bounds)
        if cls is Classification.SURFACE:
            return True
        return self.spec.shape.solid and cls is Classification.INSIDE

    # ------------------------------------------------------------------
    # Shape primitives
    # ------------------------------------------------------------------
    def _classify_box(self, bounds) -> Classification:
        inside_all = True
        for a in range(3):
            lo, hi = bounds[a]
            olo = self.center[a] - self.size[a]
            ohi = self.center[a] + self.size[a]
            if hi <= olo or lo >= ohi:
                return Classification.OUTSIDE
            if not (lo >= olo and hi <= ohi):
                inside_all = False
        return Classification.INSIDE if inside_all else Classification.SURFACE

    def _ellipse_minmax(self, bounds, axes):
        """Min and max of sum(((p-c)/s)^2) over the box, for given axes."""
        fmin = 0.0
        fmax = 0.0
        for a in axes:
            lo, hi = bounds[a]
            c = self.center[a]
            s = self.size[a]
            nearest = min(max(c, lo), hi)
            farthest = lo if (c - lo) > (hi - c) else hi
            fmin += ((nearest - c) / s) ** 2
            fmax += ((farthest - c) / s) ** 2
        return fmin, fmax

    def _classify_ellipsoid(self, bounds, axes) -> Classification:
        fmin, fmax = self._ellipse_minmax(bounds, axes)
        if fmin > 1.0:
            return Classification.OUTSIDE
        if fmax < 1.0:
            return Classification.INSIDE
        return Classification.SURFACE

    def _classify_halfspace(self, bounds, axis, positive) -> Classification:
        lo, hi = bounds[axis]
        c = self.center[axis]
        if positive:
            if lo >= c:
                return Classification.INSIDE
            if hi <= c:
                return Classification.OUTSIDE
        else:
            if hi <= c:
                return Classification.INSIDE
            if lo >= c:
                return Classification.OUTSIDE
        return Classification.SURFACE

    def _classify_slab(self, bounds, axis) -> Classification:
        lo, hi = bounds[axis]
        olo = self.center[axis] - self.size[axis]
        ohi = self.center[axis] + self.size[axis]
        if hi <= olo or lo >= ohi:
            return Classification.OUTSIDE
        if lo >= olo and hi <= ohi:
            return Classification.INSIDE
        return Classification.SURFACE

    @staticmethod
    def _intersect(a: Classification, b: Classification) -> Classification:
        if a is Classification.OUTSIDE or b is Classification.OUTSIDE:
            return Classification.OUTSIDE
        if a is Classification.INSIDE and b is Classification.INSIDE:
            return Classification.INSIDE
        return Classification.SURFACE

    def _classify_half(self, bounds, axis, positive) -> Classification:
        sph = self._classify_ellipsoid(bounds, axes=(0, 1, 2))
        half = self._classify_halfspace(bounds, axis, positive)
        return self._intersect(sph, half)

    def _classify_cylinder(self, bounds, axis) -> Classification:
        plane_axes = tuple(a for a in range(3) if a != axis)
        disc = self._classify_ellipsoid(bounds, axes=plane_axes)
        slab = self._classify_slab(bounds, axis)
        return self._intersect(disc, slab)


def sphere(center, radius, move=(0.0, 0.0, 0.0), grow=(0.0, 0.0, 0.0),
           bounce=False, solid=False) -> ObjectSpec:
    """Convenience constructor for the spherical inputs used in the paper."""
    shape = Shape.SOLID_SPHEROID if solid else Shape.SURFACE_SPHEROID
    return ObjectSpec(
        shape=shape,
        center=tuple(center),
        size=(radius, radius, radius),
        move=tuple(move),
        grow=tuple(grow),
        bounce=bounce,
    )

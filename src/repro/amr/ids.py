"""Octree block identifiers and geometry over the unit-cube domain.

The mesh is a rectangular grid of root blocks (the coarsest level).  A
block id is ``(level, i, j, k)`` with integer coordinates in the level's
grid: level ``L`` has ``root_dims * 2**L`` slots per dimension.  Refining a
block produces its 8 children at ``level+1``; coarsening consolidates the 8
siblings back into their parent.
"""

from __future__ import annotations

from typing import NamedTuple

#: Axis indices.
X, Y, Z = 0, 1, 2
#: Face sides.
LO, HI = 0, 1

#: The six faces as (axis, side) pairs, in miniAMR's direction order
#: (X first, then Y, then Z; low before high).
FACES = tuple((axis, side) for axis in (X, Y, Z) for side in (LO, HI))


class BlockId(NamedTuple):
    """Identifier of one mesh block: refinement level + grid coordinates.

    A named tuple rather than a (frozen) dataclass: ids key the
    dependency tables and mesh dicts, so their ``__hash__``/``__eq__``
    run millions of times per simulation and the C tuple implementations
    matter.  Hash values and the field-wise ordering are identical to
    what the equivalent ``@dataclass(frozen=True, order=True)`` produces,
    so dict/set iteration orders — and with them the goldens — are
    unchanged.
    """

    level: int
    i: int
    j: int
    k: int

    @property
    def coords(self):
        return (self.i, self.j, self.k)

    def parent(self) -> "BlockId":
        if self.level == 0:
            raise ValueError("root blocks have no parent")
        return BlockId(self.level - 1, self.i // 2, self.j // 2, self.k // 2)

    def children(self):
        """The 8 children, in octant order (z fastest)."""
        level = self.level + 1
        base = (self.i * 2, self.j * 2, self.k * 2)
        return [
            BlockId(level, base[0] + di, base[1] + dj, base[2] + dk)
            for di in (0, 1)
            for dj in (0, 1)
            for dk in (0, 1)
        ]

    def octant(self) -> int:
        """Index of this block within its sibling group (0..7)."""
        return ((self.i & 1) << 2) | ((self.j & 1) << 1) | (self.k & 1)

    def sibling_group(self):
        """All 8 blocks sharing this block's parent."""
        if self.level == 0:
            raise ValueError("root blocks have no siblings")
        return self.parent().children()


class Grid:
    """Geometry helpers bound to the root-grid dimensions."""

    def __init__(self, root_dims):
        rx, ry, rz = root_dims
        if rx <= 0 or ry <= 0 or rz <= 0:
            raise ValueError("root dimensions must be positive")
        self.root_dims = (rx, ry, rz)

    def dims_at(self, level: int):
        """Grid slots per dimension at ``level``."""
        return tuple(d << level for d in self.root_dims)

    def contains(self, bid: BlockId) -> bool:
        dims = self.dims_at(bid.level)
        return all(0 <= c < d for c, d in zip(bid.coords, dims))

    def bounds(self, bid: BlockId):
        """Axis-aligned bounding box ((x0,x1),(y0,y1),(z0,z1)) in [0,1]³."""
        dims = self.dims_at(bid.level)
        return tuple(
            (c / d, (c + 1) / d) for c, d in zip(bid.coords, dims)
        )

    def face_coord(self, bid: BlockId, axis: int, side: int):
        """Same-level neighbor coordinates across a face, or None at the
        domain boundary."""
        dims = self.dims_at(bid.level)
        coords = list(bid.coords)
        coords[axis] += 1 if side == HI else -1
        if not 0 <= coords[axis] < dims[axis]:
            return None
        return BlockId(bid.level, *coords)

    def finer_face_neighbors(self, neighbor_slot: BlockId, axis: int,
                             side: int):
        """The 4 children of ``neighbor_slot`` touching our shared face.

        ``side`` is the face side *on the original block*; the children we
        want sit on the opposite side of the neighbor slot.
        """
        touching = []
        want = 0 if side == HI else 1  # child coord parity on that axis
        for child in neighbor_slot.children():
            if (child.coords[axis] & 1) == want:
                touching.append(child)
        return touching

    def morton_key(self, bid: BlockId, max_level: int):
        """Space-filling-curve sort key (Morton order at ``max_level``).

        Blocks are mapped to their position at the finest level; the level
        is appended so a parent sorts immediately before its first child.
        """
        shift = max_level - bid.level
        if shift < 0:
            raise ValueError("bid.level exceeds max_level")
        fi, fj, fk = (c << shift for c in bid.coords)
        return (_morton3(fi, fj, fk), bid.level)


def _part1by2(n: int) -> int:
    """Spread the bits of ``n`` so there are two zero bits between each."""
    result = 0
    bit = 0
    while n:
        result |= (n & 1) << (3 * bit)
        n >>= 1
        bit += 1
    return result


def _morton3(i: int, j: int, k: int) -> int:
    return _part1by2(i) | (_part1by2(j) << 1) | (_part1by2(k) << 2)


def face_quadrant(child: BlockId, axis: int) -> tuple:
    """Which quadrant of the coarse face a finer neighbor occupies.

    Returns (q_a, q_b) in {0,1}² for the two in-plane axes (the axes other
    than ``axis``, in increasing order).
    """
    plane_axes = [a for a in (X, Y, Z) if a != axis]
    return tuple(child.coords[a] & 1 for a in plane_axes)

"""Mesh statistics and reports (AMR efficiency analysis).

Quantifies why AMR pays off — the comparison the paper's introduction
makes against statically refined grids — plus per-rank distribution
statistics used by examples and analyses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .mesh import MeshStructure


def level_histogram(structure: MeshStructure) -> dict:
    """Number of active blocks per refinement level."""
    hist = {}
    for bid in structure.active:
        hist[bid.level] = hist.get(bid.level, 0) + 1
    return dict(sorted(hist.items()))


def finest_level(structure: MeshStructure) -> int:
    return max((b.level for b in structure.active), default=0)


def uniform_equivalent_blocks(structure: MeshStructure) -> int:
    """Blocks a uniform grid at the finest level would need."""
    rx, ry, rz = structure.config.root_dims
    return rx * ry * rz * 8 ** finest_level(structure)


def amr_savings(structure: MeshStructure) -> float:
    """Fraction of blocks (≈ memory/compute) AMR saves vs uniform.

    0.0 means no savings (mesh is uniformly refined); values near 1.0 mean
    the refined region is a tiny part of the domain.
    """
    uniform = uniform_equivalent_blocks(structure)
    if uniform == 0:
        return 0.0
    return 1.0 - structure.num_blocks() / uniform


def cross_level_face_fraction(structure: MeshStructure) -> float:
    """Fraction of face adjacencies that cross a refinement level.

    Measures how much restriction/prolongation traffic the mesh generates
    relative to same-level copies.
    """
    total = 0
    cross = 0
    for bid in structure.active:
        for _a, _s, nbid, rel in structure.all_neighbors(bid):
            total += 1
            if rel != "same":
                cross += 1
    if total == 0:
        return 0.0
    return cross / total


@dataclass
class MeshReport:
    """Aggregated statistics of one mesh state."""

    num_blocks: int
    levels: dict
    finest_level: int
    savings_vs_uniform: float
    cross_level_faces: float
    rank_counts: dict = field(default_factory=dict)

    def render(self) -> str:
        lines = [
            f"blocks:              {self.num_blocks}",
            f"levels:              "
            + ", ".join(f"L{l}={n}" for l, n in self.levels.items()),
            f"finest level:        {self.finest_level}",
            f"savings vs uniform:  {self.savings_vs_uniform:.1%}",
            f"cross-level faces:   {self.cross_level_faces:.1%}",
        ]
        if self.rank_counts:
            counts = list(self.rank_counts.values())
            lines.append(
                f"blocks/rank:         min={min(counts)} max={max(counts)} "
                f"mean={sum(counts) / len(counts):.1f}"
            )
        return "\n".join(lines)


def mesh_report(structure: MeshStructure) -> MeshReport:
    """Build a :class:`MeshReport` for the current mesh."""
    return MeshReport(
        num_blocks=structure.num_blocks(),
        levels=level_histogram(structure),
        finest_level=finest_level(structure),
        savings_vs_uniform=amr_savings(structure),
        cross_level_faces=cross_level_face_fraction(structure),
        rank_counts=structure.rank_block_counts(),
    )

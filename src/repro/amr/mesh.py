"""Global mesh structure: active octree blocks, ownership, refinement plans.

Design note (documented substitution): the mesh *structure* — which blocks
exist and who owns them — is replicated across ranks, while block *data* is
fully distributed and only moves through simulated messages.  Refinement
decisions are deterministic functions of the shared object state, so every
rank computes the same plan; the coordination cost the real mini-app pays
is still charged through the collectives and control messages issued in the
refinement phase.  A :class:`PlanBoard` guarantees each plan is computed
once per epoch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .ids import FACES, BlockId, Grid


class MeshStructure:
    """Active block set + ownership map for one simulation."""

    def __init__(self, config):
        self.config = config
        self.grid = Grid(config.root_dims)
        self.active = set()
        self.owner = {}
        self._rank_blocks = {r: set() for r in range(config.num_ranks)}
        self._init_root_blocks()

    # ------------------------------------------------------------------
    def _init_root_blocks(self):
        cfg = self.config
        rx, ry, rz = cfg.root_dims
        for i in range(rx):
            for j in range(ry):
                for k in range(rz):
                    bid = BlockId(0, i, j, k)
                    rank = self._initial_owner(i, j, k)
                    self.active.add(bid)
                    self.owner[bid] = rank
                    self._rank_blocks[rank].add(bid)

    def _initial_owner(self, i, j, k) -> int:
        cfg = self.config
        px = i // cfg.init_x
        py = j // cfg.init_y
        pz = k // cfg.init_z
        return (pz * cfg.npy + py) * cfg.npx + px

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def num_blocks(self) -> int:
        return len(self.active)

    def blocks_of_rank(self, rank):
        """Sorted ids of the blocks a rank owns (deterministic order)."""
        return sorted(self._rank_blocks[rank])

    def rank_block_counts(self):
        return {r: len(s) for r, s in self._rank_blocks.items()}

    def set_owner(self, bid: BlockId, rank: int):
        if bid not in self.active:
            raise KeyError(f"{bid} is not active")
        old = self.owner[bid]
        if old == rank:
            return
        self._rank_blocks[old].discard(bid)
        self._rank_blocks[rank].add(bid)
        self.owner[bid] = rank

    def face_neighbors(self, bid: BlockId, axis: int, side: int):
        """Active neighbors across one face.

        Returns a list of ``(neighbor_id, relation)`` with relation in
        ``{"same", "coarser", "finer"}`` — one same-level or coarser
        neighbor, four finer ones, or an empty list at the domain boundary.
        """
        slot = self.grid.face_coord(bid, axis, side)
        if slot is None:
            return []
        if slot in self.active:
            return [(slot, "same")]
        if slot.level > 0:
            parent = slot.parent()
            if parent in self.active:
                return [(parent, "coarser")]
        finer = self.grid.finer_face_neighbors(slot, axis, side)
        present = [(c, "finer") for c in finer if c in self.active]
        if len(present) == len(finer):
            return present
        raise RuntimeError(
            f"mesh inconsistent at {bid} face ({axis},{side}): "
            f"slot {slot} neither active, coarser-covered, nor fully refined"
        )

    def all_neighbors(self, bid: BlockId):
        """(axis, side, neighbor, relation) over all six faces."""
        result = []
        for axis, side in FACES:
            for nbid, rel in self.face_neighbors(bid, axis, side):
                result.append((axis, side, nbid, rel))
        return result

    def open_faces(self, bid: BlockId):
        """Faces at the domain boundary (no neighbor)."""
        return [
            (axis, side)
            for axis, side in FACES
            if self.grid.face_coord(bid, axis, side) is None
        ]

    # ------------------------------------------------------------------
    # Invariant checks (used by tests)
    # ------------------------------------------------------------------
    def check_cover(self) -> bool:
        """Active blocks tile the domain exactly (no overlap, no gap).

        Measured by summing block volumes at the finest level.
        """
        rx, ry, rz = self.config.root_dims
        total = 0
        max_level = max((b.level for b in self.active), default=0)
        for b in self.active:
            total += 8 ** (max_level - b.level)
        return total == rx * ry * rz * 8**max_level

    def check_two_to_one(self) -> bool:
        """No two face-adjacent blocks differ by more than one level."""
        for bid in self.active:
            for _axis, _side, nbid, _rel in self.all_neighbors(bid):
                if abs(nbid.level - bid.level) > 1:
                    return False
        return True


# ----------------------------------------------------------------------
# Refinement planning
# ----------------------------------------------------------------------
@dataclass
class RefinePlan:
    """Outcome of one refinement decision stage."""

    #: Blocks to split into 8 children.
    refine: set = field(default_factory=set)
    #: Parent ids whose 8 children consolidate into them.
    coarsen_parents: set = field(default_factory=set)

    @property
    def is_empty(self) -> bool:
        return not self.refine and not self.coarsen_parents

    def block_delta(self) -> int:
        """Net change in the number of active blocks."""
        return 7 * len(self.refine) - 7 * len(self.coarsen_parents)


def plan_refinement(
    structure: MeshStructure, objects, uniform: bool = False
) -> RefinePlan:
    """Decide which blocks refine/coarsen, enforcing the 2:1 constraint.

    Deterministic: depends only on the active set and object positions.
    With ``uniform`` (miniAMR's ``--uniform_refine``) every block below the
    level cap refines regardless of objects.
    """
    cfg = structure.config
    grid = structure.grid
    delta = {}  # bid -> -1 (coarsen candidate), 0, +1 (refine)

    for bid in structure.active:
        bounds = grid.bounds(bid)
        triggered = uniform or any(
            obj.refine_trigger(bounds) for obj in objects
        )
        if triggered and bid.level < cfg.max_refine_level:
            delta[bid] = 1
        elif not triggered and bid.level > 0:
            delta[bid] = -1
        else:
            delta[bid] = 0

    _enforce_group_coarsening(structure, delta)
    _enforce_two_to_one(structure, delta)

    plan = RefinePlan()
    seen_parents = set()
    for bid, d in delta.items():
        if d == 1:
            plan.refine.add(bid)
        elif d == -1:
            parent = bid.parent()
            if parent not in seen_parents:
                seen_parents.add(parent)
                plan.coarsen_parents.add(parent)
    return plan


def _enforce_group_coarsening(structure, delta):
    """A block may only coarsen when all 8 siblings exist and agree."""
    for bid in list(delta):
        if delta[bid] != -1:
            continue
        siblings = bid.sibling_group()
        if not all(s in structure.active and delta.get(s) == -1
                   for s in siblings):
            for s in siblings:
                if delta.get(s) == -1:
                    delta[s] = 0


def _enforce_two_to_one(structure, delta):
    """Fixpoint: upgrade neighbors until no final-level gap exceeds one."""
    changed = True
    while changed:
        changed = False
        for bid in structure.active:
            fb = bid.level + delta[bid]
            for _axis, _side, nbid, _rel in structure.all_neighbors(bid):
                fn = nbid.level + delta[nbid]
                if fb - fn > 1:
                    if delta[nbid] == -1:
                        # Cancel the whole sibling group's coarsening.
                        for s in nbid.sibling_group():
                            if delta.get(s) == -1:
                                delta[s] = 0
                        changed = True
                    elif (
                        delta[nbid] == 0
                        and nbid.level < structure.config.max_refine_level
                    ):
                        delta[nbid] = 1
                        changed = True


def apply_plan(structure: MeshStructure, plan: RefinePlan):
    """Mutate the shared structure per ``plan``.

    Children of a split inherit the parent's owner; a consolidated parent
    is owned by the rank holding its first child (the designated
    consolidator — other children's data must be shipped there).

    Returns the ownership snapshot needed by the data stage:
    ``(split_owner, coarsen_owner)`` mapping block/parent ids to ranks.
    """
    split_owner = {}
    coarsen_owner = {}

    for bid in sorted(plan.refine):
        rank = structure.owner[bid]
        split_owner[bid] = rank
        structure.active.discard(bid)
        structure._rank_blocks[rank].discard(bid)
        del structure.owner[bid]
        for child in bid.children():
            structure.active.add(child)
            structure.owner[child] = rank
            structure._rank_blocks[rank].add(child)

    for parent in sorted(plan.coarsen_parents):
        children = parent.children()
        rank = structure.owner[children[0]]
        coarsen_owner[parent] = {
            "rank": rank,
            "child_owners": {c: structure.owner[c] for c in children},
        }
        for child in children:
            crank = structure.owner[child]
            structure.active.discard(child)
            structure._rank_blocks[crank].discard(child)
            del structure.owner[child]
        structure.active.add(parent)
        structure.owner[parent] = rank
        structure._rank_blocks[rank].add(parent)

    return split_owner, coarsen_owner


class PlanBoard:
    """Compute-once store for per-epoch shared plans.

    All ranks arrive at the same epoch, the first computes, the rest reuse;
    the entry is dropped once every rank consumed it.
    """

    def __init__(self, num_ranks: int):
        self.num_ranks = num_ranks
        self._entries = {}

    def get(self, key, compute):
        entry = self._entries.get(key)
        if entry is None:
            entry = self._entries[key] = [compute(), 0]
        entry[1] += 1
        value = entry[0]
        if entry[1] == self.num_ranks:
            del self._entries[key]
        return value

"""Load balancing: SFC and RCB partitioners plus block-move planning.

MiniAMR redistributes blocks after every refinement stage so each rank owns
(nearly) the same number.  Two partitioners are provided:

* **SFC** — contiguous chunks of the Morton (Z-order) traversal;
  deterministic, locality-preserving, counts within one block of the mean;
* **RCB** — recursive coordinate bisection over block centers (the
  reference miniAMR's default): ranks are split in two, blocks are split
  along the widest dimension proportionally, recursively.

Both produce the integer imbalance profile the paper's runs exhibit
(a rank owns ⌈N/P⌉ or ⌊N/P⌋ blocks).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .mesh import MeshStructure


def sfc_order(structure: MeshStructure):
    """Active blocks in Morton order (the balancing traversal)."""
    max_level = max((b.level for b in structure.active), default=0)
    return sorted(
        structure.active,
        key=lambda b: structure.grid.morton_key(b, max_level),
    )


def plan_partition(structure: MeshStructure, num_ranks: int) -> dict:
    """Target ownership: contiguous SFC chunks, sizes within one block."""
    order = sfc_order(structure)
    n = len(order)
    base, extra = divmod(n, num_ranks)
    owner = {}
    index = 0
    for rank in range(num_ranks):
        size = base + (1 if rank < extra else 0)
        for bid in order[index : index + size]:
            owner[bid] = rank
        index += size
    return owner


def plan_partition_rcb(structure: MeshStructure, num_ranks: int) -> dict:
    """Recursive coordinate bisection (reference miniAMR's balancer).

    Ranks are split into two halves; blocks are sorted along the widest
    dimension of their bounding region and cut so the counts are
    proportional to the rank halves; recurse on both sides.  Deterministic
    (ties broken by block id).
    """
    grid = structure.grid
    blocks = sorted(structure.active)
    centers = {
        b: tuple((lo + hi) / 2 for lo, hi in grid.bounds(b)) for b in blocks
    }
    owner = {}

    def recurse(block_list, rank_lo, rank_hi):
        nranks = rank_hi - rank_lo
        if nranks == 1 or not block_list:
            for b in block_list:
                owner[b] = rank_lo
            return
        # Widest dimension of this group's extent.
        spans = []
        for axis in range(3):
            coords = [centers[b][axis] for b in block_list]
            spans.append(max(coords) - min(coords))
        axis = max(range(3), key=lambda a: (spans[a], -a))
        ordered = sorted(block_list, key=lambda b: (centers[b][axis], b))
        half_ranks = nranks // 2
        cut = round(len(ordered) * half_ranks / nranks)
        recurse(ordered[:cut], rank_lo, rank_lo + half_ranks)
        recurse(ordered[cut:], rank_lo + half_ranks, rank_hi)

    recurse(blocks, 0, num_ranks)
    return owner


PARTITIONERS = {
    "sfc": plan_partition,
    "rcb": plan_partition_rcb,
}


@dataclass
class MovePlan:
    """Blocks that must change rank: ``moves[bid] = (src, dst)``."""

    moves: dict = field(default_factory=dict)

    @property
    def is_empty(self) -> bool:
        return not self.moves

    def outgoing(self, rank: int):
        """Moves leaving ``rank``, in deterministic order."""
        return sorted(
            (bid, dst)
            for bid, (src, dst) in self.moves.items()
            if src == rank
        )

    def incoming(self, rank: int):
        """Moves arriving at ``rank``, in deterministic order."""
        return sorted(
            (bid, src)
            for bid, (src, dst) in self.moves.items()
            if dst == rank
        )

    def __len__(self):
        return len(self.moves)


def plan_moves(structure: MeshStructure, target_owner: dict) -> MovePlan:
    """Diff current against target ownership."""
    plan = MovePlan()
    for bid, dst in target_owner.items():
        src = structure.owner[bid]
        if src != dst:
            plan.moves[bid] = (src, dst)
    return plan


def max_imbalance(structure: MeshStructure) -> float:
    """max/mean ratio of per-rank block counts (1.0 = perfectly balanced)."""
    counts = list(structure.rank_block_counts().values())
    mean = sum(counts) / len(counts)
    if mean == 0:
        return 1.0
    return max(counts) / mean

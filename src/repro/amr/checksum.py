"""Checksum computation and validation (miniAMR's solution check).

Every ``checksum_freq`` stages the mini-app sums each variable over all
cells of all blocks (local reduction per rank, then a global reduction) and
validates the result against the previous checksum: the 7-point average
stencil changes totals only slowly, so a large jump indicates corruption.
"""

from __future__ import annotations

import numpy as np


class ChecksumError(RuntimeError):
    """Raised when a checksum validation fails."""


def local_checksum(blocks, vslice) -> np.ndarray:
    """Per-variable sums over a rank's blocks for one variable group."""
    total = None
    for block in blocks:
        part = block.checksum(vslice)
        total = part if total is None else total + part
    if total is None:
        width = vslice.stop - vslice.start
        return np.zeros(width, dtype=np.float64)
    return np.asarray(total, dtype=np.float64)


def validate(previous, current, tolerance: float):
    """Check the new global checksum against the previous one.

    Raises :class:`ChecksumError` on NaN/Inf or when any variable moved by
    more than ``tolerance`` relative to the previous checksum.  Returns the
    maximum relative change observed.
    """
    current = np.asarray(current, dtype=np.float64)
    if not np.all(np.isfinite(current)):
        raise ChecksumError("checksum is not finite")
    if previous is None:
        return 0.0
    previous = np.asarray(previous, dtype=np.float64)
    scale = np.maximum(np.abs(previous), 1e-300)
    rel = np.abs(current - previous) / scale
    worst = float(rel.max()) if rel.size else 0.0
    if worst > tolerance:
        var = int(rel.argmax())
        raise ChecksumError(
            f"checksum drift {worst:.3e} on variable {var} exceeds "
            f"tolerance {tolerance:.3e}"
        )
    return worst

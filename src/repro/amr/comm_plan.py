"""Per-stage communication planning: who sends which faces to whom.

For every direction (X, Y, Z — miniAMR processes one axis at a time) the
plan lists, per rank: intra-rank ghost copies, and the face transfers to
send to / receive from each neighbor rank.  Transfers are enumerated from
the destination block's perspective (each transfer fills one ghost face or
quadrant) in a deterministic global order, so sender and receiver derive
identical message groupings and tags independently.
"""

from __future__ import annotations

from dataclasses import dataclass

from .ids import HI, LO, face_quadrant
from .mesh import MeshStructure

#: Tag sub-space stride per direction (Section IV-A: distinct tag space per
#: direction so communication tasks of different directions can fly
#: concurrently).
DIRECTION_TAG_STRIDE = 1 << 18
#: Tag offset for refinement/load-balance exchange messages.
EXCHANGE_TAG_BASE = 3 << 18


@dataclass(frozen=True)
class FaceTransfer:
    """One ghost-fill: data flows ``src`` → ``dst`` across ``axis``.

    ``side`` is the face side on the *destination* block.  ``rel`` is the
    source's level relative to the destination: "same", "finer" (source
    restricts, quarter-size message), or "coarser" (source sends its
    quadrant, destination prolongs).  ``quadrant`` locates the quarter
    within the coarse face for cross-level transfers.
    """

    src: object  # BlockId
    dst: object  # BlockId
    axis: int
    side: int
    rel: str
    quadrant: tuple  # () for same-level
    nbytes: int


@dataclass
class DirectionPlan:
    """All transfers of one rank for one direction (axis)."""

    axis: int
    local: list  # intra-rank FaceTransfers
    sends: dict  # peer rank -> [FaceTransfer] (deterministic order)
    recvs: dict  # peer rank -> [FaceTransfer]

    def total_send_bytes(self) -> int:
        return sum(t.nbytes for ts in self.sends.values() for t in ts)


def _transfer_sort_key(t: FaceTransfer):
    return (t.dst, t.side, t.src)


def build_global_transfers(structure: MeshStructure, config, nvars: int):
    """Every face transfer of the current mesh, grouped per (axis)."""
    per_axis = {0: [], 1: [], 2: []}
    for dst in sorted(structure.active):
        for axis in (0, 1, 2):
            for side in (LO, HI):
                for src, rel_dst in structure.face_neighbors(dst, axis, side):
                    if rel_dst == "same":
                        rel, quadrant = "same", ()
                        cross = False
                    elif rel_dst == "finer":
                        # Source is finer than destination: it restricts
                        # its face; the quarter lands in the quadrant the
                        # finer block occupies on our coarse face.
                        rel = "finer"
                        quadrant = face_quadrant(src, axis)
                        cross = True
                    else:  # source coarser: sends our quadrant of its face
                        rel = "coarser"
                        quadrant = face_quadrant(dst, axis)
                        cross = True
                    per_axis[axis].append(
                        FaceTransfer(
                            src=src,
                            dst=dst,
                            axis=axis,
                            side=side,
                            rel=rel,
                            quadrant=quadrant,
                            nbytes=config.face_bytes(axis, nvars, cross),
                        )
                    )
    for axis in per_axis:
        per_axis[axis].sort(key=_transfer_sort_key)
    return per_axis


def build_rank_plan(structure, config, nvars, rank, global_transfers=None):
    """Slice the global transfer list into one rank's DirectionPlans."""
    if global_transfers is None:
        global_transfers = build_global_transfers(structure, config, nvars)
    plans = []
    owner = structure.owner
    for axis in (0, 1, 2):
        local = []
        sends = {}
        recvs = {}
        for t in global_transfers[axis]:
            src_rank = owner[t.src]
            dst_rank = owner[t.dst]
            if src_rank == rank and dst_rank == rank:
                local.append(t)
            elif src_rank == rank:
                sends.setdefault(dst_rank, []).append(t)
            elif dst_rank == rank:
                recvs.setdefault(src_rank, []).append(t)
        plans.append(
            DirectionPlan(axis=axis, local=local, sends=sends, recvs=recvs)
        )
    return plans


def build_all_rank_plans(structure, config, nvars):
    """One pass over the global transfers → ``{rank: [DirectionPlan x3]}``.

    Equivalent to calling :func:`build_rank_plan` per rank but O(transfers)
    instead of O(ranks × transfers); used by the per-epoch plan cache.
    """
    global_transfers = build_global_transfers(structure, config, nvars)
    ranks = range(structure.config.num_ranks)
    plans = {
        r: [DirectionPlan(axis=a, local=[], sends={}, recvs={})
            for a in (0, 1, 2)]
        for r in ranks
    }
    owner = structure.owner
    for axis in (0, 1, 2):
        for t in global_transfers[axis]:
            src_rank = owner[t.src]
            dst_rank = owner[t.dst]
            if src_rank == dst_rank:
                plans[src_rank][axis].local.append(t)
            else:
                plans[src_rank][axis].sends.setdefault(dst_rank, []).append(t)
                plans[dst_rank][axis].recvs.setdefault(src_rank, []).append(t)
    return plans


def message_groups(transfers, send_faces: bool, max_comm_tasks: int):
    """Split one (direction, peer) transfer list into MPI messages.

    * default: a single message carrying every face (the mini-app's
      aggregation);
    * ``send_faces``: one message per face;
    * ``send_faces`` + ``max_comm_tasks=m``: at most ``m`` messages,
      faces distributed round-robin (the paper's granularity knob).

    The input order is the deterministic global order, so sender and
    receiver produce identical groups.
    """
    transfers = list(transfers)
    if not transfers:
        return []
    if not send_faces:
        return [transfers]
    if max_comm_tasks <= 0 or max_comm_tasks >= len(transfers):
        return [[t] for t in transfers]
    groups = [[] for _ in range(max_comm_tasks)]
    for i, t in enumerate(transfers):
        groups[i % max_comm_tasks].append(t)
    return [g for g in groups if g]


def group_nbytes(group) -> int:
    return sum(t.nbytes for t in group)


def direction_tag(axis: int, index: int) -> int:
    """MPI tag for message ``index`` of a (direction, peer) stream."""
    if index >= DIRECTION_TAG_STRIDE:  # pragma: no cover - absurd scale
        raise ValueError("tag index overflows the direction sub-space")
    return axis * DIRECTION_TAG_STRIDE + index

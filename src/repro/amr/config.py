"""miniAMR run configuration (mirrors the mini-app's CLI options).

Includes the options the reference implementation exposes plus the three
the paper introduces/uses for the taskified port: ``send_faces``,
``separate_buffers``, and ``max_comm_tasks`` (Section IV-A).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from ..machine.costmodel import VAR_BYTES
from .objects import ObjectSpec


@dataclass(frozen=True)
class AmrConfig:
    """All knobs of one miniAMR simulation."""

    # ----- domain decomposition -------------------------------------
    #: MPI ranks per dimension (npx * npy * npz must equal world size).
    npx: int = 1
    npy: int = 1
    npz: int = 1
    #: Initial blocks per rank per dimension.
    init_x: int = 1
    init_y: int = 1
    init_z: int = 1

    # ----- block shape ----------------------------------------------
    #: Interior cells per block per dimension (must be even for 2:1
    #: face restriction).
    nx: int = 12
    ny: int = 12
    nz: int = 12
    #: Variables per cell.
    num_vars: int = 40
    #: Stencil selection: 7 (face neighbors) or 27 (full cube).
    stencil: int = 7
    #: Variables communicated/computed together per group
    #: (``--comm_vars``); 0 means all variables in one group.
    comm_vars: int = 0

    # ----- time stepping ----------------------------------------------
    num_tsteps: int = 20
    stages_per_ts: int = 20
    #: Refinement happens every `refine_freq` timesteps.
    refine_freq: int = 5
    #: Checksum validation every `checksum_freq` stages.
    checksum_freq: int = 10
    #: Maximum refinement level of any block.
    max_refine_level: int = 4
    #: Refine every block regardless of objects (miniAMR --uniform_refine).
    uniform_refine: bool = False
    #: Load balancer: "sfc" (Morton chunks) or "rcb" (recursive coordinate
    #: bisection, the reference implementation's default).
    lb_method: str = "sfc"
    #: Maximum levels a block may move in a single refinement stage.
    refine_step_cap: int = 1

    # ----- objects -----------------------------------------------------
    objects: tuple = field(default_factory=tuple)  # of ObjectSpec

    # ----- checksum ----------------------------------------------------
    #: Relative change allowed between consecutive checksums.  The 7-point
    #: averaging stencil with reflected boundaries drifts a few percent per
    #: stage; the check guards against NaNs and gross corruption (the exact
    #: cross-variant comparison is done by the integration tests).
    checksum_tolerance: float = 0.5

    # ----- paper options (Section IV-A) ---------------------------------
    #: One MPI message per face instead of one per (neighbor, direction).
    send_faces: bool = False
    #: Separate communication buffers per direction (removes false deps).
    separate_buffers: bool = False
    #: Max communication tasks (messages) per neighbor and direction when
    #: ``send_faces`` is on; 0 = one per face.
    max_comm_tasks: int = 0
    #: Extension (beyond the paper): declare ghost-fill tasks (unpack and
    #: intra-process copies) with OmpSs-2 *commutative* dependencies on the
    #: destination block instead of inout — they write disjoint ghost
    #: planes, so any mutually-exclusive order is valid, letting the
    #: scheduler run them in arrival order.
    commutative_ghosts: bool = False

    #: Per-rank block capacity for the load-balance exchange (0 =
    #: unlimited).  When bounded, receivers ACK negatively once full and
    #: the exchange runs additional rounds (Section IV-B).
    max_blocks_per_rank: int = 0

    #: "real" = numpy payloads (functional mode), "synthetic" = costs only.
    payload: str = "real"

    # ------------------------------------------------------------------
    def __post_init__(self):
        for name in ("npx", "npy", "npz", "init_x", "init_y", "init_z"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        for name in ("nx", "ny", "nz"):
            v = getattr(self, name)
            if v < 2 or v % 2:
                raise ValueError(f"{name} must be even and >= 2 (2:1 faces)")
        if self.num_vars <= 0:
            raise ValueError("num_vars must be positive")
        if self.comm_vars < 0 or self.comm_vars > self.num_vars:
            raise ValueError("comm_vars must be in [0, num_vars]")
        if self.payload not in ("real", "synthetic"):
            raise ValueError("payload must be 'real' or 'synthetic'")
        if self.max_comm_tasks < 0:
            raise ValueError("max_comm_tasks must be >= 0")
        if self.stencil not in (7, 27):
            raise ValueError("stencil must be 7 or 27")
        if self.lb_method not in ("sfc", "rcb"):
            raise ValueError("lb_method must be 'sfc' or 'rcb'")
        for obj in self.objects:
            if not isinstance(obj, ObjectSpec):
                raise TypeError(f"{obj!r} is not an ObjectSpec")

    # ------------------------------------------------------------------
    @property
    def num_ranks(self) -> int:
        return self.npx * self.npy * self.npz

    @property
    def root_dims(self):
        """Root-grid block counts per dimension."""
        return (
            self.npx * self.init_x,
            self.npy * self.init_y,
            self.npz * self.init_z,
        )

    @property
    def cells_per_block(self) -> int:
        return self.nx * self.ny * self.nz

    @property
    def vars_per_group(self) -> int:
        return self.comm_vars if self.comm_vars else self.num_vars

    @property
    def num_groups(self) -> int:
        return math.ceil(self.num_vars / self.vars_per_group)

    def group_slice(self, group: int) -> slice:
        """Variable slice of communication group ``group``."""
        if not 0 <= group < self.num_groups:
            raise ValueError(f"invalid group {group}")
        lo = group * self.vars_per_group
        hi = min(lo + self.vars_per_group, self.num_vars)
        return slice(lo, hi)

    def group_size(self, group: int) -> int:
        s = self.group_slice(group)
        return s.stop - s.start

    # ------------------------------------------------------------------
    # Byte sizes (for message costs)
    # ------------------------------------------------------------------
    def block_bytes(self, nvars=None) -> int:
        nvars = self.num_vars if nvars is None else nvars
        return self.cells_per_block * nvars * VAR_BYTES

    def face_bytes(self, axis: int, nvars: int, cross_level: bool) -> int:
        """Message bytes of one face transfer.

        Cross-level transfers carry a quarter plane (restricted or
        to-be-prolonged), same-level a full plane.
        """
        dims = (self.nx, self.ny, self.nz)
        plane = 1
        for a in range(3):
            if a != axis:
                plane *= dims[a]
        if cross_level:
            plane //= 4
        return plane * nvars * VAR_BYTES

    # ------------------------------------------------------------------
    def with_overrides(self, **kwargs) -> "AmrConfig":
        return replace(self, **kwargs)

"""``repro.amr`` — the miniAMR substrate: mesh, blocks, objects, planning.

A faithful re-implementation of the structures the Mantevo miniAMR proxy
app is built from: an octree of equal-size blocks over the unit cube, 16
moving object types that drive refinement, 2:1-balanced refine/coarsen
planning, SFC load balancing, per-direction face-exchange planning, the
7-point stencil, and checksums.
"""

from .balance import (
    MovePlan,
    PARTITIONERS,
    max_imbalance,
    plan_moves,
    plan_partition,
    plan_partition_rcb,
    sfc_order,
)
from .block import (
    Block,
    consolidate_blocks,
    prolong_plane,
    restrict_plane,
    split_block,
)
from .checksum import ChecksumError, local_checksum, validate
from .comm_plan import (
    DIRECTION_TAG_STRIDE,
    EXCHANGE_TAG_BASE,
    DirectionPlan,
    FaceTransfer,
    build_all_rank_plans,
    build_global_transfers,
    build_rank_plan,
    direction_tag,
    group_nbytes,
    message_groups,
)
from .config import AmrConfig
from .ids import FACES, HI, LO, X, Y, Z, BlockId, Grid, face_quadrant
from .metrics import (
    MeshReport,
    amr_savings,
    cross_level_face_fraction,
    finest_level,
    level_histogram,
    mesh_report,
    uniform_equivalent_blocks,
)
from .mesh import (
    MeshStructure,
    PlanBoard,
    RefinePlan,
    apply_plan,
    plan_refinement,
)
from .objects import (
    Classification,
    MovingObject,
    ObjectSpec,
    Shape,
    sphere,
)

__all__ = [
    "AmrConfig",
    "Block",
    "BlockId",
    "ChecksumError",
    "Classification",
    "DIRECTION_TAG_STRIDE",
    "DirectionPlan",
    "EXCHANGE_TAG_BASE",
    "FACES",
    "FaceTransfer",
    "Grid",
    "HI",
    "LO",
    "MeshReport",
    "MeshStructure",
    "MovePlan",
    "PARTITIONERS",
    "MovingObject",
    "ObjectSpec",
    "PlanBoard",
    "RefinePlan",
    "Shape",
    "X",
    "Y",
    "Z",
    "amr_savings",
    "apply_plan",
    "build_all_rank_plans",
    "build_global_transfers",
    "build_rank_plan",
    "consolidate_blocks",
    "cross_level_face_fraction",
    "direction_tag",
    "face_quadrant",
    "finest_level",
    "group_nbytes",
    "level_histogram",
    "local_checksum",
    "max_imbalance",
    "mesh_report",
    "message_groups",
    "plan_moves",
    "plan_partition",
    "plan_partition_rcb",
    "plan_refinement",
    "prolong_plane",
    "restrict_plane",
    "sfc_order",
    "sphere",
    "split_block",
    "uniform_equivalent_blocks",
    "validate",
]

"""``repro.tampi`` — the Task-Aware MPI library on the simulator.

Reproduces the TAMPI contract the paper relies on (Section II-B):

* :func:`iwait` / :func:`iwaitall` bind the completion of the *calling
  task* to the completion of MPI requests.  They are non-blocking and
  asynchronous: the task body may finish first, and its dependencies are
  released only once every bound request completed.
* :func:`isend` / :func:`irecv` are the convenience wrappers that perform
  the non-blocking operation and immediately bind the resulting request.
* :func:`send` / :func:`recv` model TAMPI's *blocking* mode: the calling
  task pauses until the operation completes, while the runtime's other
  cores keep executing tasks (in the simulator the core simply waits — the
  paper's port uses the non-blocking mode for all heavy transfers).

All functions take the :class:`~repro.tasking.runtime.TaskContext` handed
to generator task bodies, plus the rank's communicator.
"""

from .tampi import irecv, isend, iwait, iwaitall, recv, send

__all__ = ["irecv", "isend", "iwait", "iwaitall", "recv", "send"]

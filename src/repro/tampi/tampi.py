"""Task-Aware MPI operations (see package docstring for the contract)."""

from __future__ import annotations


def iwait(ctx, request):
    """Bind ``request`` to the calling task (``TAMPI_Iwait``).

    Non-blocking and asynchronous: returns immediately; the task will not
    release its dependencies until the request completes.  May be called
    several times to bind multiple requests.
    """
    profiler = ctx.runtime.profiler
    if profiler is not None:
        profiler.iwait_outcome(
            ctx.runtime.rank,
            "bound" if not request.completed else "immediate",
        )
    if not request.completed:
        ctx.runtime.bind_request(ctx.task, request)


def iwaitall(ctx, requests):
    """Bind every request in ``requests`` (``TAMPI_Iwaitall``)."""
    for request in requests:
        if request is not None:
            iwait(ctx, request)


def isend(ctx, comm, dest, tag, nbytes=None, payload=None):
    """``TAMPI_Isend``: non-blocking send bound to the calling task.

    Generator — use as ``req = yield from tampi.isend(...)`` inside a task
    body.  The posting CPU overhead is charged to the executing core; the
    task completes (releases dependencies) only once the message landed.
    """
    request = yield from comm.isend(dest, tag, nbytes=nbytes, payload=payload)
    iwait(ctx, request)
    return request


def irecv(ctx, comm, source, tag, nbytes=0):
    """``TAMPI_Irecv``: non-blocking receive bound to the calling task.

    The received payload is available as ``request.data`` once the task's
    successors run (never inside this task — the paper stresses the data
    must not be consumed by the binding task itself).
    """
    request = yield from comm.irecv(source, tag, nbytes=nbytes)
    iwait(ctx, request)
    return request


def send(ctx, comm, dest, tag, nbytes=None, payload=None):
    """Blocking-mode TAMPI send: pauses the calling task until complete."""
    request = yield from comm.isend(dest, tag, nbytes=nbytes, payload=payload)
    if not request.completed:
        yield request.event
    return request


def recv(ctx, comm, source, tag, nbytes=0):
    """Blocking-mode TAMPI receive: pauses until the message arrived."""
    request = yield from comm.irecv(source, tag, nbytes=nbytes)
    if not request.completed:
        yield request.event
    return request

"""Errors and control-flow exceptions for the simulation kernel."""


class SimxError(Exception):
    """Base class for all simulation-kernel errors."""


class EventAlreadyTriggered(SimxError):
    """Raised when an event is triggered (succeed/fail) more than once."""


class NotTriggeredError(SimxError):
    """Raised when the value of an untriggered event is read."""


class EmptySchedule(SimxError):
    """Raised by :meth:`Environment.step` when no events remain."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` attribute carries the value given to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause=None):
        super().__init__(cause)

    @property
    def cause(self):
        return self.args[0]


class StaleProcessError(SimxError):
    """Raised when interacting with a process that already terminated."""

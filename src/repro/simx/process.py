"""Generator-backed simulation processes.

A process wraps a Python generator.  Each ``yield`` must produce an
:class:`~repro.simx.events.Event`; the process resumes when the event
triggers, receiving the event's value (or having its failure exception
thrown in).  A process is itself an event that triggers when the generator
returns (success, with the return value) or raises (failure).
"""

from __future__ import annotations

from .errors import Interrupt, StaleProcessError
from .events import Event


class Initialize(Event):
    """Immediate event that starts a freshly created process."""

    __slots__ = ()

    def __init__(self, env, process):
        super().__init__(env)
        self.callbacks.append(process._resume)
        self._ok = True
        self._value = None
        env._schedule_event(self, priority=0)


class Process(Event):
    """A running simulation process (also usable as an event to wait on)."""

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, env, generator, name=None):
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        #: The event this process is currently waiting on (None if running).
        self._target = None
        self.name = name or getattr(generator, "__name__", "process")
        Initialize(env, self)

    @property
    def is_alive(self):
        """True while the generator has not terminated."""
        return not self.triggered

    def interrupt(self, cause=None):
        """Throw :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            raise StaleProcessError(f"{self} has terminated")
        if self._target is self.env.active_process:
            raise RuntimeError("a process cannot interrupt itself")
        Interruption(self, cause)

    def _resume(self, event):
        env = self.env
        env._active_proc = self
        # Resume runs once per processed event — locals for the generator
        # methods keep the hot ok-path to one C call per step.
        send = self._generator.send
        while True:
            if event._ok:
                try:
                    target = send(event._value)
                except StopIteration as exc:
                    self._finish(True, exc.value)
                    break
                except BaseException as exc:
                    self._finish(False, exc)
                    break
            else:
                event.defused = True
                try:
                    target = self._generator.throw(event._value)
                except StopIteration as exc:
                    self._finish(True, exc.value)
                    break
                except BaseException as exc:
                    if exc is event._value:
                        # Unhandled failure: keep defused semantics and crash
                        # this process with the same exception.
                        pass
                    self._finish(False, exc)
                    break

            if not isinstance(target, Event):
                exc = TypeError(
                    f"process {self.name!r} yielded non-event {target!r}"
                )
                try:
                    self._generator.throw(exc)
                except BaseException as err:
                    self._finish(False, err)
                break

            if target.callbacks is None:  # processed: feed it immediately
                event = target
                continue

            self._target = target
            target.callbacks.append(self._resume)
            break

        env._active_proc = None

    def _finish(self, ok, value):
        self._target = None
        if ok:
            self.succeed(value)
        else:
            if not isinstance(value, BaseException):  # pragma: no cover
                value = RuntimeError(repr(value))
            self.fail(value)

    def __repr__(self):
        return f"<Process {self.name!r}>"


class Interruption(Event):
    """Immediate event delivering an :class:`Interrupt` to a process."""

    __slots__ = ("process",)

    def __init__(self, process, cause):
        super().__init__(process.env)
        self.process = process
        self._ok = False
        self._value = Interrupt(cause)
        self.defused = True
        self.callbacks.append(self._deliver)
        process.env._schedule_event(self, priority=0)

    def _deliver(self, event):
        process = self.process
        if process.triggered:
            return  # terminated in the meantime; interrupt is dropped
        # Detach the process from whatever it was waiting on.
        target = process._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(process._resume)
            except ValueError:  # pragma: no cover
                pass
        process._target = None
        process._resume(event)

"""Rank→worker partition maps and the lookahead derivation.

A :class:`PartitionMap` assigns every simulated world rank to exactly one
PDES worker process.  Two policies exist:

* ``"node"`` (the default): whole machine nodes stay on one worker, so
  every cross-partition message is inter-node and the lookahead is the
  (larger) inter-node latency.  When the run has fewer nodes than
  workers the policy degrades to a contiguous rank split — smaller
  lookahead, but the run still parallelizes.
* ``"contiguous"``: the rank range is split into near-equal contiguous
  chunks regardless of node boundaries.

The **lookahead** is the provable minimum delta between a send decided
in one partition and its earliest possible effect in another:

* a point-to-point message posted at time ``t`` arrives no earlier than
  ``t + injection_gap + latency`` (injection serialization plus the link
  latency of the cheapest cross-partition pair; fault injection only
  *adds* delay);
* a spanning collective entered last at time ``t`` completes no earlier
  than ``t + collective_round`` (``collective_time`` is at least one
  round for any communicator of size >= 2).

The minimum of the two, shrunk by a 10% safety margin (absorbing the
few-ulp float rounding of shipped absolute timestamps), bounds the safe
execution window: no partition executing events strictly before
``min_next_event + lookahead`` can miss an incoming effect.
"""

from __future__ import annotations

#: Relative safety margin applied to the analytic lookahead.  Timestamps
#: shipped between workers are exact serial heap times (``now + (arrival
#: - now)``), which can round a few ulps below the real-arithmetic
#: arrival; the margin keeps every ingress strictly inside a *future*
#: window so the clock never runs backwards.  Window count rises by ~11%
#: — timestamps are unaffected (the lookahead only sizes windows).
LOOKAHEAD_MARGIN = 0.9


class PartitionMap:
    """An immutable world-rank → worker assignment."""

    __slots__ = ("owner", "num_workers", "_local")

    def __init__(self, owner):
        owner = list(owner)
        if not owner:
            raise ValueError("partition map needs at least one rank")
        workers = sorted(set(owner))
        if workers != list(range(len(workers))):
            raise ValueError(
                f"worker ids must be dense 0..W-1, got {workers}"
            )
        self.owner = owner
        self.num_workers = len(workers)
        self._local = [
            [r for r, w in enumerate(owner) if w == wid]
            for wid in range(self.num_workers)
        ]

    # ------------------------------------------------------------------
    @property
    def num_ranks(self) -> int:
        return len(self.owner)

    def owner_of(self, world_rank: int) -> int:
        return self.owner[world_rank]

    def local_ranks(self, worker: int) -> list:
        """World ranks owned by ``worker`` (ascending)."""
        return list(self._local[worker])

    def __repr__(self):
        sizes = [len(ranks) for ranks in self._local]
        return f"<PartitionMap {self.num_workers} workers, ranks {sizes}>"

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, machine, num_workers, policy=None) -> "PartitionMap":
        """Partition ``machine``'s ranks across ``num_workers`` workers.

        ``num_workers`` is clamped to the rank count (a worker with no
        ranks would only slow the window protocol down).  ``policy`` is
        ``"node"`` (default) or ``"contiguous"``.
        """
        if policy not in (None, "node", "contiguous"):
            raise ValueError(f"unknown partition policy {policy!r}")
        num_ranks = machine.num_ranks
        workers = max(1, min(num_workers, num_ranks))
        if policy in (None, "node") and machine.num_nodes >= workers:
            owner = [0] * num_ranks
            for node in range(machine.num_nodes):
                wid = node * workers // machine.num_nodes
                for rank in machine.ranks_on_node(node):
                    owner[rank] = wid
            return cls(owner)
        return cls(
            [rank * workers // num_ranks for rank in range(num_ranks)]
        )


def contiguous_map(num_ranks, num_workers) -> PartitionMap:
    """A machine-free contiguous split (for tests and the pure protocol)."""
    workers = max(1, min(num_workers, num_ranks))
    return PartitionMap(
        [rank * workers // num_ranks for rank in range(num_ranks)]
    )


def cross_partition_latency(pmap, machine, network) -> float:
    """The cheapest link latency any cross-partition message can take.

    Intra-node if any node hosts ranks of two different workers (the
    contiguous-fallback case), inter-node otherwise.  Returns ``inf``
    when no pair of ranks crosses a partition boundary (single worker).
    """
    if pmap.num_workers <= 1:
        return float("inf")
    for node in range(machine.num_nodes):
        owners = {pmap.owner[r] for r in machine.ranks_on_node(node)}
        if len(owners) > 1:
            return network.latency_intra
    return network.latency_inter


def lookahead(pmap, machine, network) -> float:
    """The safe synchronization window bound of this partitioning.

    ``min(injection_gap + cheapest cross-partition latency,
    collective_round) * LOOKAHEAD_MARGIN`` — see the module docstring
    for why each term lower-bounds its interaction class.
    """
    latency = cross_partition_latency(pmap, machine, network)
    bound = min(network.injection_gap + latency, network.collective_round)
    return bound * LOOKAHEAD_MARGIN

"""Partitioned (conservative-PDES) execution of the simulation kernel.

Splits one simulated run's ranks across ``RunSpec.pdes_workers`` OS
processes, each running its own :class:`~repro.simx.Environment` over
its rank subset; cross-partition sends become inter-worker messages and
a conservative time-window coordinator keeps every partition inside the
provable lookahead of the machine's network model.  Results are
bit-identical to the serial kernel — the point is wall-clock speed at
large simulated node counts, not approximation.

Layering:

* :mod:`.partition` — rank→worker maps and the lookahead derivation;
* :mod:`.protocol`  — the window protocol as pure logic (what the
  Hypothesis property suite drives);
* :mod:`.sync`      — spin barrier + mailboxes over shared memory;
* :mod:`.runner`    — worker processes, the window loop, result merge.
"""

from .partition import (
    LOOKAHEAD_MARGIN,
    PartitionMap,
    contiguous_map,
    cross_partition_latency,
    lookahead,
)
from .protocol import (
    CausalityError,
    LogicalProcess,
    run_conservative,
    safe_horizon,
)
from .runner import effective_workers, run_partitioned
from .sync import Mailboxes, SpinBarrier, WorkerAborted

__all__ = [
    "LOOKAHEAD_MARGIN",
    "PartitionMap",
    "contiguous_map",
    "cross_partition_latency",
    "lookahead",
    "CausalityError",
    "LogicalProcess",
    "run_conservative",
    "safe_horizon",
    "effective_workers",
    "run_partitioned",
    "Mailboxes",
    "SpinBarrier",
    "WorkerAborted",
]

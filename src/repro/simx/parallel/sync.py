"""Inter-worker synchronization primitives for the partitioned kernel.

Two pieces, both built on ``multiprocessing`` shared memory so a window
boundary costs microseconds, not scheduler round-trips:

* :class:`SpinBarrier` — an all-to-all flag barrier over a shared int64
  array.  Each worker *writes only its own slot* (its current round
  number) and spins until every slot has reached that round; aligned
  8-byte stores are atomic on every platform we target, so no lock is
  needed.  A worker that dies poisons its slot with ``-1``, releasing
  the others into a :class:`WorkerAborted` instead of a hang.
* :class:`Mailboxes` — one ``multiprocessing.Queue`` per worker for
  inbound batches plus a shared cumulative sent-batch counter matrix.
  Senders flush their outboxes *before* the barrier; receivers read the
  counters *after* it, so exactly the advertised batches are drained —
  no polling, no partial reads.  ``Queue`` (not a raw pipe) matters:
  its feeder thread buffers arbitrarily large batches, so two workers
  simultaneously flushing block-sized payloads to each other cannot
  deadlock on pipe capacity.
"""

from __future__ import annotations

import os
import time
from ctypes import c_int64

#: How long a barrier spins before declaring the fleet hung (seconds).
BARRIER_TIMEOUT = 600.0

#: Spin iterations before the first ``sleep(0)`` yield (keeps a waiting
#: worker from starving the one it is waiting for on oversubscribed
#: hosts).
_SPINS_PER_YIELD = 2_000

#: Yields before escalating from ``sleep(0)`` to a real (20 us) sleep.
#: On a host with at least one core per worker the barrier almost always
#: releases within the tight-spin phase and this never triggers; on an
#: oversubscribed host it stops the waiters from eating the scheduler
#: quanta the straggler needs to reach the barrier at all.
_YIELDS_PER_SLEEP = 16
_BACKOFF_SLEEP = 20e-6


def _available_cores() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


class WorkerAborted(RuntimeError):
    """Another worker died or the barrier timed out."""


class SpinBarrier:
    """All-to-all flag barrier; see the module docstring."""

    __slots__ = ("slots", "wid", "num_workers", "round", "timeout",
                 "_spins_per_yield")

    def __init__(self, slots, wid, num_workers, timeout=BARRIER_TIMEOUT):
        #: Shared ``RawArray(c_int64, num_workers)``; slot w = worker
        #: w's last completed round (-1 = aborted).
        self.slots = slots
        self.wid = wid
        self.num_workers = num_workers
        self.round = 0
        self.timeout = timeout
        # Spinning only pays when the peers we wait for can run
        # *concurrently*; with fewer cores than workers, every spin
        # iteration steals the quantum the straggler needs, so yield on
        # every pass instead.
        self._spins_per_yield = (
            _SPINS_PER_YIELD if _available_cores() >= num_workers else 1
        )

    def wait(self):
        """Enter the next round and block until every worker has."""
        self.round += 1
        target = self.round
        self.slots[self.wid] = target
        deadline = time.monotonic() + self.timeout
        spins = 0
        yields = 0
        while True:
            done = True
            for w in range(self.num_workers):
                v = self.slots[w]
                if v < 0:
                    raise WorkerAborted(f"worker {w} aborted")
                if v < target:
                    done = False
                    break
            if done:
                return
            spins += 1
            if spins % self._spins_per_yield == 0:
                yields += 1
                time.sleep(0 if yields < _YIELDS_PER_SLEEP
                           else _BACKOFF_SLEEP)
                if time.monotonic() > deadline:
                    self.abort()
                    raise WorkerAborted(
                        f"worker {self.wid}: barrier round {target} "
                        f"timed out after {self.timeout}s"
                    )

    def abort(self):
        """Poison this worker's slot so peers fail fast instead of hang."""
        self.slots[self.wid] = -1

    @staticmethod
    def make_slots(ctx, num_workers):
        """The shared slot array (create in the parent, pass to workers)."""
        return ctx.RawArray(c_int64, num_workers)


class Mailboxes:
    """Batched, barrier-phased record exchange between workers."""

    __slots__ = ("wid", "num_workers", "queues", "sent", "_consumed",
                 "outboxes")

    def __init__(self, wid, num_workers, queues, sent):
        self.wid = wid
        self.num_workers = num_workers
        #: queues[w] is worker w's inbound queue.
        self.queues = queues
        #: Shared ``RawArray(c_int64, W*W)``: slot ``src*W + dst`` is the
        #: cumulative number of batches src has put on dst's queue.
        #: Single-writer per slot (the sender), read only after a
        #: barrier the writer has also passed.
        self.sent = sent
        self._consumed = [0] * num_workers
        self.outboxes = [[] for _ in range(num_workers)]

    # ------------------------------------------------------------------
    def post(self, dst, record):
        """Queue one record for ``dst`` (flushed at the next barrier)."""
        self.outboxes[dst].append(record)

    def broadcast(self, record):
        """Queue one record for every *other* worker."""
        for dst in range(self.num_workers):
            if dst != self.wid:
                self.outboxes[dst].append(record)

    def flush(self) -> int:
        """Ship every non-empty outbox; call *before* the barrier.

        Returns the number of batches shipped this call — the window's
        cross-partition traffic, reported via ``pdes_window`` telemetry.
        """
        w = self.num_workers
        shipped = 0
        for dst in range(w):
            box = self.outboxes[dst]
            if box:
                self.outboxes[dst] = []
                self.queues[dst].put((self.wid, box))
                self.sent[self.wid * w + dst] += 1
                shipped += 1
        return shipped

    def drain(self):
        """Collect every advertised inbound batch; call *after* the
        barrier.  Returns ``[(src_worker, [records...]), ...]`` sorted
        by source worker, each batch in its sender's posting order."""
        w = self.num_workers
        expected = 0
        for src in range(w):
            if src != self.wid:
                expected += self.sent[src * w + self.wid] - \
                    self._consumed[src]
        batches = []
        queue = self.queues[self.wid]
        for _ in range(expected):
            try:
                src, box = queue.get(timeout=BARRIER_TIMEOUT)
            except Exception:
                # The sender advertised a batch its feeder never shipped
                # (e.g. it died mid-pickle) — fail fast, don't hang.
                raise WorkerAborted(
                    f"worker {self.wid}: advertised inbound batch never "
                    "arrived"
                ) from None
            self._consumed[src] += 1
            batches.append((src, box))
        batches.sort(key=lambda b: b[0])
        return batches

    @staticmethod
    def make_shared(ctx, num_workers):
        """(queues, sent-counter array) — create in the parent."""
        queues = [ctx.Queue() for _ in range(num_workers)]
        sent = ctx.RawArray(c_int64, num_workers * num_workers)
        return queues, sent

"""The partitioned-kernel runner: worker processes, window loop, merge.

``run_partitioned`` splits one simulated run's ranks across
``RunSpec.pdes_workers`` OS processes.  Each worker builds the *full*
World and shared application state (replicated state evolves identically
everywhere) but instantiates rank programs — and therefore simulation
processes and events — only for its own rank subset.  The workers then
advance in lockstep **conservative time windows**:

1. flush cross-partition records (messages, collective entries) posted
   during the previous window;
2. barrier; ingest every inbound record, sorted by ``(timestamp,
   source worker, posting index)`` so the ingress order is identical
   across runs; publish the local next-event time;
3. barrier; compute the global minimum next-event time ``M`` — if it is
   ``inf`` the run is over (the ingest in step 2 proves nothing is in
   flight) — else execute every local event strictly before ``M +
   lookahead``.

The lookahead (:func:`repro.simx.parallel.lookahead`) under-approximates
the minimum latency of any cross-partition effect, so no event executed
inside a window can be invalidated by a record that arrives at the next
barrier: delivery order and every timestamp are identical to the serial
kernel, bit for bit.  The merged :class:`~repro.core.RunResult` is
byte-identical to the serial one on all serializable fields.
"""

from __future__ import annotations

import gc
import multiprocessing
import os
import queue as queue_mod
import time
import traceback
from ctypes import c_double

from .partition import PartitionMap, lookahead
from .sync import Mailboxes, SpinBarrier

_INF = float("inf")


def effective_workers(rs, machine) -> int:
    """How many workers a partitioned run of ``rs`` actually uses.

    Clamped to the rank count — a worker with no ranks would only add
    barrier latency.  ``1`` means the run takes the serial path.
    """
    return max(1, min(rs.pdes_workers, machine.num_ranks))


def can_partition() -> bool:
    """Whether this process may host PDES workers at all.

    Daemonic processes may not spawn children; a partitioned spec run
    from one (e.g. a sweep-engine pool child that was not given a slot
    width) silently degrades to the byte-identical serial kernel.
    """
    return not multiprocessing.current_process().daemon


class _WorkerLink:
    """The ``World``-facing handle of one worker (see ``World.partition``)."""

    __slots__ = ("pmap", "wid", "mail")

    def __init__(self, pmap, wid, mail):
        self.pmap = pmap
        self.wid = wid
        self.mail = mail

    def post(self, dst_worker, record):
        self.mail.post(dst_worker, record)

    def broadcast(self, record):
        self.mail.broadcast(record)


class _InjectorView:
    """Adapter giving ``build_profile_report`` the merged fault ledger
    through the ``fault_injector.stats`` attribute it expects."""

    __slots__ = ("stats",)

    def __init__(self, stats):
        self.stats = stats


def _record_time(rec) -> float:
    # ("p2p", comm_id, dst, src, tag, nbytes, payload, sched) |
    # ("coll", comm_id, index, kind, rank, value, nbytes, meta, time)
    return rec[7] if rec[0] == "p2p" else rec[8]


def _drive_windows(sim, mail, barrier, mins, wid, la, bus=None):
    """Run one worker's share of the window protocol to completion.

    Returns ``(windows, stall_wall_seconds)``.  ``stall`` is wall-clock
    time blocked at the two per-window barriers — the partitioned run's
    own idle class, reported via ``ProfileReport.pdes``.  With a
    telemetry ``bus`` attached (``REPRO_TELEMETRY``), every executed
    window additionally emits one ``pdes_window`` record: wall duration,
    barrier stall, and batches shipped.  Here ``wid`` is the *partition*
    id, a different domain from the engine pool slot ids.
    """
    env, world = sim.env, sim.world
    perf = time.perf_counter
    windows = 0
    stall = 0.0
    while True:
        w_t0 = perf() if bus is not None else 0.0
        shipped = mail.flush()
        t0 = perf()
        barrier.wait()
        w_stall = perf() - t0
        records = []
        for src, box in mail.drain():
            for idx, rec in enumerate(box):
                records.append((_record_time(rec), src, idx, rec))
        # Deterministic ingress order: primary by timestamp, ties broken
        # by (sending worker, posting index) — both run-invariant.
        records.sort(key=lambda r: (r[0], r[1], r[2]))
        for _t, _src, _idx, rec in records:
            if rec[0] == "p2p":
                world.ingest_p2p(*rec[1:])
            else:
                world.ingest_collective_entry(*rec[1:])
        # Publish *after* ingest: a termination verdict (all inf) then
        # proves nothing was in flight anywhere.
        mins[wid] = env.peek()
        t0 = perf()
        barrier.wait()
        w_stall += perf() - t0
        stall += w_stall
        m = min(mins)
        if m == _INF:
            return windows, stall
        windows += 1
        env.run_window(m + la)
        if bus is not None:
            bus.emit(
                "pdes_window", window=windows - 1, dur=perf() - w_t0,
                stall=w_stall, batches=shipped,
            )


def _worker_main(wid, rs, barrier_slots, queues, sent, mins, result_queue,
                 fp=None):
    """Entry point of one PDES worker process."""
    barrier = SpinBarrier(barrier_slots, wid, _num_workers(rs))
    bus = None
    try:
        if fp is not None:
            # Grandchild of the sweep engine: no queue reaches this far,
            # so attach straight to the stream file (line-atomic).
            from ...obs.telemetry import TelemetryBus

            bus = TelemetryBus.from_env(wid=wid, run=fp)
        t_start = time.perf_counter()
        # Same GC regime as the serial driver: refcounting reclaims the
        # hot path; the cyclic collector would only rescan the world.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            payload = _run_worker(
                wid, rs, barrier, queues, sent, mins, bus=bus
            )
        finally:
            if gc_was_enabled:
                gc.enable()
        payload["elapsed"] = time.perf_counter() - t_start
        result_queue.put(("ok", wid, payload))
    except BaseException:
        barrier.abort()  # unblock peers spinning at a window barrier
        result_queue.put(("error", wid, traceback.format_exc()))
    finally:
        if bus is not None:
            bus.close()


def _num_workers(rs) -> int:
    spec = rs.machine
    machine = spec.machine(
        num_nodes=rs.num_nodes, ranks_per_node=rs.ranks_per_node
    )
    return effective_workers(rs, machine)


def _run_worker(wid, rs, barrier, queues, sent, mins, bus=None) -> dict:
    # Imported here (not at module top) so worker bootstrap under the
    # spawn start method resolves the package cleanly and the driver
    # module keeps its lazy one-way dependency on this package.
    from ...core.driver import _build_simulation
    from ...core.results import RuntimeStats

    spec = rs.machine
    machine = spec.machine(
        num_nodes=rs.num_nodes, ranks_per_node=rs.ranks_per_node
    )
    num_workers = effective_workers(rs, machine)
    pmap = PartitionMap.build(machine, num_workers, rs.pdes_partition)
    network = spec.network.scaled_to(rs.num_nodes)
    la = lookahead(pmap, machine, network)
    mail = Mailboxes(wid, num_workers, queues, sent)
    link = _WorkerLink(pmap, wid, mail)

    sim = _build_simulation(
        rs, machine, local_ranks=pmap.local_ranks(wid), partition=link
    )
    windows, stall = _drive_windows(
        sim, mail, barrier, mins, wid, la, bus=bus
    )

    stuck = [p.name for p in sim.procs if p.is_alive]
    if stuck:
        raise RuntimeError(
            f"worker {wid}: out of events with processes still alive: "
            f"{stuck} (rank deadlock or lost cross-partition message)"
        )
    if sim.witness is not None:
        sim.witness.check()
    sim.env.flush_metrics()
    if sim.profiler is not None:
        # Deferred edges reference live Task objects; resolve them to
        # task-id ints before the profiler crosses the process boundary.
        sim.profiler.materialize_edges()

    shared = sim.shared
    payload = {
        "now": sim.env.now,
        "windows": windows,
        "stall": stall,
        "flops": shared.flops,  # local ranks' share; exact integer floats
        "stats": sim.world.stats,
        "runtime_stats": [
            (p.rank, RuntimeStats.from_runtime(p.rt.stats))
            for p in sim.programs
        ],
        "fault_stats": (
            sim.injector.stats if sim.injector is not None else None
        ),
        "tracer_events": (
            list(sim.tracer.events) if sim.tracer is not None else None
        ),
        "tracer_dropped": (
            getattr(sim.tracer, "dropped_events", 0)
            if sim.tracer is not None
            else 0
        ),
        "profiler": sim.profiler,
    }
    for p in sim.programs:
        if p.rank == 0:
            payload["refine_time"] = p.refine_seconds
            payload["checksums"] = list(shared.checksum_log)
    if wid == 0:
        # Replicated structure state — identical on every worker; one
        # snapshot suffices.
        payload["num_blocks"] = shared.structure.num_blocks()
        payload["imbalance"] = _imbalance(shared)
    return payload


def _imbalance(shared) -> float:
    from ...amr.balance import max_imbalance

    return max_imbalance(shared.structure)


def _merge_world_stats(stats_list):
    """Component-wise sum of the per-worker ``WorldStats``.

    Every counter is sender-side (collectives are counted exactly once,
    by the owner of the lowest member rank), so the sums equal the
    serial counters.
    """
    merged = stats_list[0]
    for s in stats_list[1:]:
        merged.messages += s.messages
        merged.bytes_sent += s.bytes_sent
        merged.intra_node_messages += s.intra_node_messages
        merged.inter_node_messages += s.inter_node_messages
        merged.collectives += s.collectives
        for key, n in s.by_tag_kind.items():
            merged.by_tag_kind[key] = merged.by_tag_kind.get(key, 0) + n
    return merged


def _merge_tracers(rs, workers):
    """A fresh Tracer holding every worker's events in global time order.

    Stable-sorted by ``(t0, rank)``: per-rank order is preserved and the
    interleaving is run-invariant.
    """
    from ...trace import Tracer

    if workers[0]["tracer_events"] is None:
        return None
    merged = Tracer()
    events = []
    for w in workers:
        events.extend(w["tracer_events"])
    events.sort(key=lambda e: (e.t0, e.rank))
    merged.events.extend(events)
    merged.dropped_events = sum(w["tracer_dropped"] for w in workers)
    return merged


def _merge_profilers(workers):
    """Fold the per-worker profilers into one, remapping task ids.

    Each worker numbers tasks from 0; worker ``w``'s ids are shifted past
    every earlier worker's id span (worker order is deterministic, so the
    remapped ids are too).
    """
    base = workers[0]["profiler"]
    if base is None:
        return None
    offset = max((t for t in base.tasks), default=-1) + 1
    for w in workers[1:]:
        prof = w["profiler"]
        span = max((t for t in prof.tasks), default=-1) + 1
        base.absorb(prof, offset)
        offset += span
    return base


def run_partitioned(rs):
    """Execute a resolved RunSpec across ``rs.pdes_workers`` processes.

    Returns the merged :class:`~repro.core.RunResult` — byte-identical
    on all serializable fields to the serial run of the same spec.
    """
    from ...core.results import CommStats, RunResult
    from ...faults.injectors import FaultStats
    from ...obs.report import PhaseSummary, build_profile_report

    spec = rs.machine
    machine = spec.machine(
        num_nodes=rs.num_nodes, ranks_per_node=rs.ranks_per_node
    )
    num_workers = effective_workers(rs, machine)
    pmap = PartitionMap.build(machine, num_workers, rs.pdes_partition)
    network = spec.network.scaled_to(rs.num_nodes)
    la = lookahead(pmap, machine, network)

    # Telemetry rides the environment (never the spec): the fingerprint
    # is computed only when a stream is attached, so disabled runs pay
    # nothing.
    from ...obs.telemetry import TELEMETRY_ENV

    fp = rs.fingerprint() if os.environ.get(TELEMETRY_ENV) else None

    # fork shares the (already imported) package pages with the workers;
    # spawn is the portable fallback and everything shipped to
    # ``_worker_main`` is picklable for it.
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context(
        "fork" if "fork" in methods else methods[0]
    )
    barrier_slots = SpinBarrier.make_slots(ctx, num_workers)
    queues, sent = Mailboxes.make_shared(ctx, num_workers)
    mins = ctx.RawArray(c_double, num_workers)
    result_queue = ctx.Queue()

    procs = [
        ctx.Process(
            target=_worker_main,
            args=(wid, rs, barrier_slots, queues, sent, mins, result_queue,
                  fp),
            daemon=True,
        )
        for wid in range(num_workers)
    ]
    for p in procs:
        p.start()

    payloads = {}
    error = None
    try:
        while len(payloads) < num_workers and error is None:
            try:
                kind, wid, data = result_queue.get(timeout=1.0)
            except queue_mod.Empty:
                for w, p in enumerate(procs):
                    if (
                        w not in payloads
                        and not p.is_alive()
                        and p.exitcode not in (0, None)
                    ):
                        error = (
                            f"PDES worker {w} died with exit code "
                            f"{p.exitcode}"
                        )
                        break
                continue
            if kind == "error":
                error = f"PDES worker {wid} failed:\n{data}"
            else:
                payloads[wid] = data
    finally:
        if error is not None:
            for p in procs:
                if p.is_alive():
                    p.terminate()
        for p in procs:
            p.join(timeout=30)
    if error is not None:
        raise RuntimeError(error)

    workers = [payloads[w] for w in range(num_workers)]
    if fp is not None:
        from ...obs.telemetry import TelemetryBus

        bus = TelemetryBus.from_env(run=fp)
        if bus is not None:
            bus.emit(
                "pdes_run", workers=num_workers,
                windows=workers[0]["windows"], lookahead=la,
                stall=sum(w["stall"] for w in workers),
                elapsed=max(w["elapsed"] for w in workers),
            )
            bus.close()
    total_time = max(w["now"] for w in workers)
    owner0 = pmap.owner_of(0)

    fault_stats = None
    if workers[0]["fault_stats"] is not None:
        fault_stats = FaultStats()
        for w in workers:
            fault_stats.merge(w["fault_stats"])

    tracer = _merge_tracers(rs, workers)
    profiler = _merge_profilers(workers)
    runtime_stats = [
        stats
        for _rank, stats in sorted(
            (pair for w in workers for pair in w["runtime_stats"]),
            key=lambda pair: pair[0],
        )
    ]

    cores_per_rank = (
        1 if rs.variant == "mpi_only" else machine.cores_per_rank
    )
    profile = None
    if profiler is not None:
        profile = build_profile_report(
            profiler,
            rs,
            num_ranks=machine.num_ranks,
            cores_per_rank=cores_per_rank,
            makespan=total_time,
            tracer=tracer,
            fault_injector=(
                _InjectorView(fault_stats)
                if fault_stats is not None
                else None
            ),
            pdes={
                "workers": num_workers,
                "windows": workers[0]["windows"],
                "lookahead": la,
                "stall_wall_seconds": [w["stall"] for w in workers],
                "elapsed_wall_seconds": [w["elapsed"] for w in workers],
            },
        )

    return RunResult(
        variant=rs.variant,
        num_nodes=rs.num_nodes,
        ranks_per_node=rs.ranks_per_node,
        total_time=total_time,
        refine_time=workers[owner0]["refine_time"],
        flops=sum(w["flops"] for w in workers),
        num_blocks=workers[0]["num_blocks"],
        imbalance=workers[0]["imbalance"],
        checksums=workers[owner0]["checksums"],
        comm_stats=CommStats.from_world(
            _merge_world_stats([w["stats"] for w in workers])
        ),
        runtime_stats=runtime_stats,
        phase_summary=(
            PhaseSummary.from_tracer(tracer) if tracer is not None else None
        ),
        profile=profile,
        fault_stats=(
            fault_stats.to_dict() if fault_stats is not None else None
        ),
        tracer=tracer if rs.trace else None,
        profiler=profiler,
    )

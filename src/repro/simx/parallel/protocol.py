"""The conservative window protocol, as pure logic.

This module holds the synchronization math of the partitioned kernel in
a form with no processes, queues, or shared memory — exactly what the
Hypothesis property suite (``tests/test_pdes_property.py``) drives with
random partition maps, latencies, and message schedules.  The real
runner (:mod:`repro.simx.parallel.runner`) uses :func:`safe_horizon`
verbatim, so the property-tested invariants are the shipped ones:

* **Causality** — a partition only executes events strictly before the
  horizon ``M + L`` (``M`` = global minimum next-event time, ``L`` =
  lookahead), and every cross-partition message sent at ``t >= M``
  arrives at ``t + delay`` with ``delay >= L``, i.e. at or after the
  horizon.  No partition can receive a message timestamped before an
  event it already executed.
* **Null-window progress** — a partition with no pending events reports
  ``min = inf`` and simply keeps exchanging/synchronizing; the global
  minimum is taken across *all* partitions, so as long as anyone has an
  event the window advances, and when nobody does (after an ingest
  phase, so nothing is in flight) the protocol terminates.
"""

from __future__ import annotations

import heapq

_INF = float("inf")


class CausalityError(RuntimeError):
    """A partition received a message timestamped before its clock."""


def safe_horizon(mins, lookahead):
    """The exclusive execution horizon of one window.

    ``mins`` are the per-partition next-event times (``inf`` for an
    empty partition).  Returns ``None`` when every partition is empty —
    the termination signal — else ``min(mins) + lookahead``.  Events
    strictly before the horizon are safe to execute: no in-flight or
    future cross-partition effect can land before it.
    """
    m = min(mins)
    if m == _INF:
        return None
    return m + lookahead


class LogicalProcess:
    """One model partition: an event heap and a monotone local clock.

    Events are ``(time, payload)``; executing one may emit messages via
    the ``on_execute`` callback (returning ``[(dst_partition, delay,
    payload), ...]`` with every ``delay >= lookahead``).
    """

    __slots__ = ("pid", "pending", "clock", "executed")

    def __init__(self, pid, events=()):
        self.pid = pid
        self.pending = [(float(t), payload) for t, payload in events]
        heapq.heapify(self.pending)
        self.clock = 0.0
        self.executed = []

    def next_time(self):
        return self.pending[0][0] if self.pending else _INF

    def ingest(self, time, payload):
        """Accept a cross-partition message; enforce causality."""
        if time < self.clock:
            raise CausalityError(
                f"partition {self.pid}: message at t={time} arrived "
                f"behind the local clock {self.clock}"
            )
        heapq.heappush(self.pending, (float(time), payload))

    def run_window(self, horizon, on_execute=None):
        """Execute every pending event strictly before ``horizon``."""
        sent = []
        while self.pending and self.pending[0][0] < horizon:
            t, payload = heapq.heappop(self.pending)
            self.clock = t
            self.executed.append((t, payload))
            if on_execute is not None:
                for dst, delay, msg in on_execute(self.pid, t, payload):
                    sent.append((dst, t + delay, msg))
        return sent


def run_conservative(processes, lookahead, on_execute=None,
                     max_windows=100_000):
    """Drive the window protocol over model partitions to completion.

    Mirrors the real runner's loop — exchange, global min, window —
    and returns the number of windows executed.  Raises
    :class:`CausalityError` on any causality violation and
    :class:`RuntimeError` if ``max_windows`` elapse without
    termination (the deadlock detector of the property suite).
    """
    if lookahead <= 0:
        raise ValueError("lookahead must be positive")
    in_flight = []  # (dst_pid, arrival_time, payload)
    windows = 0
    while True:
        # Exchange phase: everything sent last window lands now.  This
        # precedes the min computation, so termination (all-inf) proves
        # nothing was in flight.
        for dst, t, payload in in_flight:
            processes[dst].ingest(t, payload)
        in_flight = []
        horizon = safe_horizon(
            [p.next_time() for p in processes], lookahead
        )
        if horizon is None:
            return windows
        windows += 1
        if windows > max_windows:
            raise RuntimeError(
                f"no termination after {max_windows} windows "
                "(deadlock or livelock)"
            )
        for p in processes:
            in_flight.extend(p.run_window(horizon, on_execute))

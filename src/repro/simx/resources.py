"""Process-synchronization resources built on the event kernel.

Only the pieces the upper layers need: a FIFO :class:`Store` (used for
worker ready-queues and mailboxes), a counting :class:`Semaphore`, and a
reusable :class:`Gate` (a resettable broadcast event).
"""

from __future__ import annotations

from collections import deque

from .events import Event


class Store:
    """An unbounded FIFO channel between processes.

    ``put`` never blocks.  ``get`` returns an event that fires with the next
    item; pending getters are served in FIFO order.
    """

    def __init__(self, env):
        self.env = env
        self._items = deque()
        self._getters = deque()

    def __len__(self):
        return len(self._items)

    @property
    def items(self):
        """A snapshot tuple of queued items (for introspection/tests)."""
        return tuple(self._items)

    def put(self, item):
        """Deposit ``item``, waking the oldest waiting getter if any."""
        while self._getters:
            getter = self._getters.popleft()
            if not getter.triggered:
                getter.succeed(item)
                return
        self._items.append(item)

    def get(self):
        """Return an event that fires with the next available item."""
        event = Event(self.env)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def get_nowait(self, default=None):
        """Pop an item immediately, or return ``default`` if empty."""
        if self._items:
            return self._items.popleft()
        return default


class Semaphore:
    """A counting semaphore with FIFO wakeup order."""

    def __init__(self, env, value=1):
        if value < 0:
            raise ValueError("semaphore value must be >= 0")
        self.env = env
        self._value = value
        self._waiters = deque()

    @property
    def value(self):
        return self._value

    def acquire(self):
        """Return an event that fires once a unit has been acquired."""
        event = Event(self.env)
        if self._value > 0:
            self._value -= 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self):
        """Release one unit, waking the oldest waiter if any."""
        while self._waiters:
            waiter = self._waiters.popleft()
            if not waiter.triggered:
                waiter.succeed()
                return
        self._value += 1


class Gate:
    """A resettable broadcast event.

    Processes wait on :meth:`wait`; :meth:`open` wakes all current waiters.
    After :meth:`reset` the gate can be waited on and opened again.
    """

    def __init__(self, env):
        self.env = env
        self._event = Event(env)
        self._open = False

    @property
    def is_open(self):
        return self._open

    def wait(self):
        """Return an event that fires when the gate opens."""
        if self._open:
            ev = Event(self.env)
            ev.succeed()
            return ev
        return self._event

    def open(self, value=None):
        """Open the gate, waking every waiter."""
        if not self._open:
            self._open = True
            self._event.succeed(value)

    def reset(self):
        """Close the gate again so it can be reused."""
        if self._open:
            self._open = False
            self._event = Event(self.env)

"""Event primitives for the discrete-event simulation kernel.

An :class:`Event` is a one-shot occurrence at a point in simulated time.
Processes (generators) yield events to suspend until the event triggers.
Events may *succeed* with a value or *fail* with an exception; failures
propagate into every waiting process.

The kernel is fully deterministic: callbacks run in registration order and
simultaneous events fire in scheduling order.
"""

from __future__ import annotations

from .errors import EventAlreadyTriggered, NotTriggeredError

_PENDING = object()


class Event:
    """A one-shot occurrence that processes can wait on.

    Parameters
    ----------
    env:
        The :class:`~repro.simx.kernel.Environment` the event belongs to.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "defused")

    def __init__(self, env):
        self.env = env
        #: Callables invoked as ``cb(event)`` when the event is processed.
        self.callbacks = []
        self._value = _PENDING
        self._ok = None
        #: Set to True when a failure was handled (suppresses crash).
        self.defused = False

    @property
    def triggered(self):
        """True once the event has been scheduled to fire."""
        return self._value is not _PENDING

    @property
    def processed(self):
        """True once callbacks have run (or are running)."""
        return self.callbacks is None

    @property
    def ok(self):
        """True if the event succeeded.  Only valid once triggered."""
        if self._value is _PENDING:
            raise NotTriggeredError("event has not been triggered")
        return self._ok

    @property
    def value(self):
        """The success value or failure exception of the event."""
        if self._value is _PENDING:
            raise NotTriggeredError("event has not been triggered")
        return self._value

    def succeed(self, value=None):
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env._schedule_event(self)
        return self

    def fail(self, exception):
        """Trigger the event with an exception.

        Waiting processes will have ``exception`` thrown into them.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self._value is not _PENDING:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.env._schedule_event(self)
        return self

    def trigger(self, event):
        """Trigger this event with the state of another event (chaining)."""
        if event._value is _PENDING:
            raise NotTriggeredError(
                f"cannot chain from untriggered source event {event!r}"
            )
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    def _process_callbacks(self):
        callbacks, self.callbacks = self.callbacks, None
        for cb in callbacks:
            cb(self)

    def __repr__(self):
        state = "pending"
        if self.triggered:
            state = "ok" if self._ok else "failed"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay.

    Timeouts dominate the event mix (every CPU charge is one), so the
    kernel free-lists them: a processed Timeout that no simulation code
    still references is reinitialized in place by
    :meth:`~repro.simx.kernel.Environment.timeout` instead of allocated
    fresh.  Reuse is only attempted when the object's refcount proves the
    kernel holds the sole reference, so holding on to a Timeout (e.g. to
    read its ``value`` later) always remains safe.
    """

    __slots__ = ("delay",)

    def __init__(self, env, delay, value=None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env._schedule_event(self, delay)

    def _reinit(self, delay, value):
        """Reset a recycled Timeout for its next firing (free-list path)."""
        self.callbacks = []
        self.delay = delay
        self._value = value
        self.defused = False

    def __repr__(self):
        return f"<Timeout delay={self.delay}>"


class Condition(Event):
    """Wait for a combination of events.

    ``evaluate`` receives (events, n_triggered_ok) and returns True once the
    condition holds.  On success the value is an ordered dict-like mapping of
    the *triggered* constituent events to their values.
    """

    __slots__ = ("events", "_count", "_evaluate")

    def __init__(self, env, evaluate, events):
        super().__init__(env)
        self.events = tuple(events)
        self._count = 0
        self._evaluate = evaluate

        for event in self.events:
            if event.env is not env:
                raise ValueError("events from different environments")

        if not self.events:
            self.succeed(self._collect())
            return

        for event in self.events:
            if event.processed:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _collect(self):
        # An event has *occurred* once its callbacks ran (``processed``);
        # Timeouts are valued at creation, so ``triggered`` is too early.
        return {ev: ev._value for ev in self.events if ev.processed and ev._ok}

    def _check(self, event):
        if self.triggered:
            return
        if not event._ok:
            event.defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self._evaluate(self.events, self._count):
            self.succeed(self._collect())

    @staticmethod
    def all_events(events, count):
        return len(events) == count

    @staticmethod
    def any_events(events, count):
        return count > 0 or len(events) == 0


class AllOf(Condition):
    """Condition that succeeds once *all* constituent events succeeded."""

    __slots__ = ()

    def __init__(self, env, events):
        super().__init__(env, Condition.all_events, events)


class AnyOf(Condition):
    """Condition that succeeds once *any* constituent event succeeded."""

    __slots__ = ()

    def __init__(self, env, events):
        super().__init__(env, Condition.any_events, events)

"""``repro.simx`` — a minimal, deterministic discrete-event simulation kernel.

This package is the foundation of the whole reproduction: the simulated
cluster, MPI library, tasking runtime, and the miniAMR application itself
all execute as :class:`Process` generators inside an :class:`Environment`.

Public API::

    env = Environment()
    def proc(env):
        yield env.timeout(1.0)
        return "done"
    p = env.process(proc(env))
    env.run()
"""

from .errors import (
    EmptySchedule,
    EventAlreadyTriggered,
    Interrupt,
    NotTriggeredError,
    SimxError,
    StaleProcessError,
)
from .events import AllOf, AnyOf, Condition, Event, Timeout
from .kernel import NORMAL, URGENT, Environment
from .process import Process
from .resources import Gate, Semaphore, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "EmptySchedule",
    "Environment",
    "Event",
    "EventAlreadyTriggered",
    "Gate",
    "Interrupt",
    "NORMAL",
    "NotTriggeredError",
    "Process",
    "Semaphore",
    "SimxError",
    "StaleProcessError",
    "Store",
    "Timeout",
    "URGENT",
]

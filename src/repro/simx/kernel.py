"""The discrete-event simulation environment.

The :class:`Environment` owns the virtual clock and the event heap.  It is
intentionally SimPy-like so the rest of the stack (simulated MPI, the
tasking runtime, the miniAMR port) reads like ordinary process-oriented
simulation code, while remaining dependency-free and fully deterministic:
simultaneous events are processed in (priority, schedule-order).
"""

from __future__ import annotations

from heapq import heappop, heappush
from sys import getrefcount

from .errors import EmptySchedule
from .events import AllOf, AnyOf, Event, Timeout
from .process import Process

#: Priority for urgent events (process initialization, interrupts).
URGENT = 0
#: Default priority for ordinary events.
NORMAL = 1

#: Upper bound on the Timeout free list (bounds idle memory; in steady
#: state the pool holds roughly one Timeout per concurrently sleeping
#: process).
_TIMEOUT_POOL_CAP = 1024


class Environment:
    """A deterministic discrete-event simulation environment."""

    def __init__(self, initial_time=0.0, metrics=None):
        self._now = float(initial_time)
        self._queue = []  # heap of (time, priority, seq, event)
        self._seq = 0
        self._active_proc = None
        #: Optional :class:`repro.obs.MetricsRegistry` counting processed
        #: events (None = no accounting; the hot loop stays branch-cheap).
        self.metrics = metrics
        # With metrics on, the per-event cost is one plain-int increment;
        # flush_metrics() folds the count into the registry at run end.
        self._events_processed = 0
        self._timeout_pool = []

    # ------------------------------------------------------------------
    # Clock & scheduling
    # ------------------------------------------------------------------
    @property
    def now(self):
        """Current simulated time (seconds)."""
        return self._now

    @property
    def active_process(self):
        """The process currently being resumed, if any."""
        return self._active_proc

    def _schedule_event(self, event, delay=0.0, priority=NORMAL):
        seq = self._seq + 1
        self._seq = seq
        heappush(self._queue, (self._now + delay, priority, seq, event))

    def schedule_at(self, time, callback, priority=NORMAL):
        """Schedule ``callback`` at *absolute* simulated ``time``.

        The partitioned-kernel ingress path (:mod:`repro.simx.parallel`)
        needs to plant a callback at an exact absolute timestamp shipped
        from another worker — relative ``timeout(time - now)`` would
        re-round the float and lose bitwise equality with the serial
        schedule.  The event is created already-succeeded (value ``None``)
        so both run loops process it like any other triggered event.
        """
        if time < self._now:
            raise ValueError(
                f"schedule_at({time}) is in the past (now={self._now})"
            )
        event = Event(self)
        event._ok = True
        event._value = None
        event.callbacks.append(callback)
        seq = self._seq + 1
        self._seq = seq
        heappush(self._queue, (time, priority, seq, event))
        return event

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------
    def event(self):
        """Create a new untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay, value=None):
        """Create an event that fires after ``delay`` simulated seconds.

        Recycles a free-listed :class:`Timeout` when one is available —
        scheduling order (and thus determinism) is identical either way,
        because the recycled path consumes the same sequence number the
        fresh path would.
        """
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise ValueError(f"negative delay {delay}")
            to = pool.pop()
            to._reinit(delay, value)
            seq = self._seq + 1
            self._seq = seq
            heappush(self._queue, (self._now + delay, NORMAL, seq, to))
            return to
        return Timeout(self, delay, value)

    def process(self, generator, name=None):
        """Start a new :class:`Process` running ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events):
        """Event that triggers when all of ``events`` have succeeded."""
        return AllOf(self, events)

    def any_of(self, events):
        """Event that triggers when any of ``events`` has succeeded."""
        return AnyOf(self, events)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def peek(self):
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self):
        """Process the single next event.

        Raises :class:`EmptySchedule` when no events remain.  Re-raises the
        exception of any failed event whose failure no process handled.
        """
        try:
            when, _prio, _seq, event = heappop(self._queue)
        except IndexError:
            raise EmptySchedule("no scheduled events") from None

        self._now = when
        if self.metrics is not None:
            self._events_processed += 1
        event._process_callbacks()

        if not event._ok and not event.defused:
            exc = event._value
            raise exc

        # Free-list processed Timeouts nobody else references (refcount 2
        # = this frame's local + getrefcount's argument).
        if type(event) is Timeout and getrefcount(event) == 2:
            pool = self._timeout_pool
            if len(pool) < _TIMEOUT_POOL_CAP:
                pool.append(event)

    def run_window(self, horizon):
        """Process every event with time *strictly before* ``horizon``.

        The conservative-PDES window primitive: a partition may safely
        execute up to (but not at) its synchronization horizon, because a
        cross-partition message can arrive exactly *at* the horizon.  The
        clock is left at the last processed event — never advanced to
        ``horizon`` — so ``peek()`` afterwards reports the true next
        event time for the next safe-horizon computation.  Returns the
        number of events processed.
        """
        queue = self._queue
        pool = self._timeout_pool
        pop = heappop
        refcount = getrefcount
        metered = self.metrics is not None
        processed = 0
        while queue and queue[0][0] < horizon:
            when, _prio, _seq, event = pop(queue)
            self._now = when
            if metered:
                self._events_processed += 1
            processed += 1
            callbacks = event.callbacks
            event.callbacks = None
            for cb in callbacks:
                cb(event)
            if not event._ok and not event.defused:
                raise event._value
            if (
                type(event) is Timeout
                and refcount(event) == 2
                and len(pool) < _TIMEOUT_POOL_CAP
            ):
                pool.append(event)
        return processed

    def flush_metrics(self):
        """Fold the processed-event count into the metrics registry.

        Deferred from :meth:`step` so the hot loop pays a plain-int
        increment per event instead of a series update; the driver calls
        this once before the profile report is built.
        """
        if self.metrics is not None:
            self.metrics.counter("kernel.events").add(self._events_processed)
            self._events_processed = 0

    def run(self, until=None):
        """Run the simulation.

        ``until`` may be ``None`` (run until no events remain), a number
        (run until that simulated time), or an :class:`Event` (run until it
        triggers, returning its value).
        """
        if until is None:
            stop_time, stop_event = None, None
        elif isinstance(until, Event):
            stop_time, stop_event = None, until
            if until.processed:
                if not until._ok:
                    raise until._value
                return until._value
        else:
            stop_time, stop_event = float(until), None
            if stop_time < self._now:
                raise ValueError(
                    f"until ({stop_time}) is in the past (now={self._now})"
                )

        # The event loop is inlined (rather than calling step()) and works
        # on local bindings: at paper-scale world sizes it executes
        # millions of iterations, so every attribute load per event counts.
        # The until-a-time check only exists in the stop_time flavor of
        # the loop head, keeping the (dominant) run-to-event mode free of
        # the extra heap peek per iteration.
        queue = self._queue
        pool = self._timeout_pool
        pop = heappop
        refcount = getrefcount
        metered = self.metrics is not None
        timed = stop_time is not None
        while queue:
            if timed and queue[0][0] > stop_time:
                self._now = stop_time
                return None
            when, _prio, _seq, event = pop(queue)
            self._now = when
            if metered:
                self._events_processed += 1
            callbacks = event.callbacks
            event.callbacks = None
            for cb in callbacks:
                cb(event)
            if not event._ok and not event.defused:
                raise event._value
            # An event becomes `processed` exactly when this loop pops it,
            # so comparing identities replaces the per-event
            # `stop_event.processed` property probe of the generic step().
            if type(event) is Timeout:
                if event is stop_event:
                    return event._value
                # Free-list the Timeout when this frame holds the only
                # reference (refcount 2: the local + getrefcount's arg).
                if refcount(event) == 2 and len(pool) < _TIMEOUT_POOL_CAP:
                    pool.append(event)
            elif event is stop_event:
                if not event._ok:
                    event.defused = True
                    raise event._value
                return event._value

        if stop_event is not None:
            raise RuntimeError(
                f"simulation ended before {stop_event!r} triggered"
            )
        if stop_time is not None:
            self._now = stop_time
        return None

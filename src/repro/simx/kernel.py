"""The discrete-event simulation environment.

The :class:`Environment` owns the virtual clock and the event heap.  It is
intentionally SimPy-like so the rest of the stack (simulated MPI, the
tasking runtime, the miniAMR port) reads like ordinary process-oriented
simulation code, while remaining dependency-free and fully deterministic:
simultaneous events are processed in (priority, schedule-order).
"""

from __future__ import annotations

from heapq import heappop, heappush

from .errors import EmptySchedule
from .events import AllOf, AnyOf, Event, Timeout
from .process import Process

#: Priority for urgent events (process initialization, interrupts).
URGENT = 0
#: Default priority for ordinary events.
NORMAL = 1


class Environment:
    """A deterministic discrete-event simulation environment."""

    def __init__(self, initial_time=0.0, metrics=None):
        self._now = float(initial_time)
        self._queue = []  # heap of (time, priority, seq, event)
        self._seq = 0
        self._active_proc = None
        #: Optional :class:`repro.obs.MetricsRegistry` counting processed
        #: events (None = no accounting; the hot loop stays branch-cheap).
        self.metrics = metrics
        # With metrics on, the per-event cost is one plain-int increment;
        # flush_metrics() folds the count into the registry at run end.
        self._events_processed = 0

    # ------------------------------------------------------------------
    # Clock & scheduling
    # ------------------------------------------------------------------
    @property
    def now(self):
        """Current simulated time (seconds)."""
        return self._now

    @property
    def active_process(self):
        """The process currently being resumed, if any."""
        return self._active_proc

    def _schedule_event(self, event, delay=0.0, priority=NORMAL):
        self._seq += 1
        heappush(self._queue, (self._now + delay, priority, self._seq, event))

    # ------------------------------------------------------------------
    # Factories
    # ------------------------------------------------------------------
    def event(self):
        """Create a new untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay, value=None):
        """Create an event that fires after ``delay`` simulated seconds."""
        return Timeout(self, delay, value)

    def process(self, generator, name=None):
        """Start a new :class:`Process` running ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events):
        """Event that triggers when all of ``events`` have succeeded."""
        return AllOf(self, events)

    def any_of(self, events):
        """Event that triggers when any of ``events`` has succeeded."""
        return AnyOf(self, events)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def peek(self):
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self):
        """Process the single next event.

        Raises :class:`EmptySchedule` when no events remain.  Re-raises the
        exception of any failed event whose failure no process handled.
        """
        try:
            when, _prio, _seq, event = heappop(self._queue)
        except IndexError:
            raise EmptySchedule("no scheduled events") from None

        self._now = when
        if self.metrics is not None:
            self._events_processed += 1
        event._process_callbacks()

        if not event._ok and not event.defused:
            exc = event._value
            raise exc

    def flush_metrics(self):
        """Fold the processed-event count into the metrics registry.

        Deferred from :meth:`step` so the hot loop pays a plain-int
        increment per event instead of a series update; the driver calls
        this once before the profile report is built.
        """
        if self.metrics is not None:
            self.metrics.counter("kernel.events").add(self._events_processed)
            self._events_processed = 0

    def run(self, until=None):
        """Run the simulation.

        ``until`` may be ``None`` (run until no events remain), a number
        (run until that simulated time), or an :class:`Event` (run until it
        triggers, returning its value).
        """
        if until is None:
            stop_time, stop_event = None, None
        elif isinstance(until, Event):
            stop_time, stop_event = None, until
            if until.processed:
                if not until._ok:
                    raise until._value
                return until._value
        else:
            stop_time, stop_event = float(until), None
            if stop_time < self._now:
                raise ValueError(
                    f"until ({stop_time}) is in the past (now={self._now})"
                )

        while self._queue:
            if stop_time is not None and self._queue[0][0] > stop_time:
                self._now = stop_time
                return None
            self.step()
            if stop_event is not None and stop_event.processed:
                if not stop_event._ok:
                    stop_event.defused = True
                    raise stop_event._value
                return stop_event._value

        if stop_event is not None:
            raise RuntimeError(
                f"simulation ended before {stop_event!r} triggered"
            )
        if stop_time is not None:
            self._now = stop_time
        return None

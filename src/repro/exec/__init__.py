"""``repro.exec`` — parallel, cached execution of simulation sweeps.

Every paper artifact (Tables I–II, Figs 1–5, the ablations) is a sweep of
independent deterministic runs.  This package turns a collection of
:class:`~repro.core.RunSpec`s into results: dispatch across a worker-process
pool, a content-addressed on-disk result cache keyed by spec fingerprint,
per-run timeout and crash retry with exponential backoff, and structured
progress reporting.  ``repro.bench`` and the CLI execute through it.

    from repro.exec import ResultCache, SweepEngine

    engine = SweepEngine(jobs=4, cache=ResultCache(".repro-cache"))
    report = engine.run([spec1, spec2, ...])
    report.raise_failures()
    results = report.results          # RunResults, input order
"""

from .cache import ResultCache
from .engine import (
    RunOutcome,
    Sweep,
    SweepEngine,
    SweepError,
    SweepReport,
    retry_jitter,
    run_spec_dict,
)

__all__ = [
    "ResultCache",
    "RunOutcome",
    "Sweep",
    "SweepEngine",
    "SweepError",
    "SweepReport",
    "retry_jitter",
    "run_spec_dict",
]

"""``repro.exec`` — parallel, cached execution of experiment job graphs.

Every paper artifact (Tables I–II, Figs 1–5, the ablations) is a sweep of
deterministic runs — flat and independent in the simplest case, a
dependency DAG (see :mod:`repro.pipeline`) in the general one.  This
package turns :class:`~repro.core.RunSpec`\\ s into results: dispatch
across a worker-process pool with no level barriers and
critical-path-first ready ordering, a content-addressed on-disk result
cache keyed by spec fingerprint, a persistent run-duration stats store
keyed by *normalized* spec signature (drives the duration predictions),
per-run timeout and crash retry with exponential backoff, and structured
progress reporting.  ``repro.bench`` and the CLI execute through it.

    from repro.exec import ResultCache, RunStatsStore, SweepEngine

    engine = SweepEngine(jobs=4, cache=ResultCache(".repro-cache"),
                         stats=RunStatsStore(".repro-stats.json"))
    report = engine.run([spec1, spec2, ...])   # or a PipelineSpec
    report.raise_failures()
    results = report.results          # RunResults, input order
"""

from .cache import CacheEntry, ResultCache
from .engine import (
    EngineSession,
    RunOutcome,
    SessionStep,
    Sweep,
    SweepEngine,
    SweepError,
    SweepReport,
    retry_jitter,
    run_spec_dict,
)
from .stats import RunStatsStore, fallback_cost, spec_signature

__all__ = [
    "CacheEntry",
    "EngineSession",
    "ResultCache",
    "RunOutcome",
    "RunStatsStore",
    "SessionStep",
    "Sweep",
    "SweepEngine",
    "SweepError",
    "SweepReport",
    "fallback_cost",
    "retry_jitter",
    "run_spec_dict",
    "spec_signature",
]

"""Persistent run-duration statistics keyed by *normalized* spec signature.

The DAG scheduler of :class:`~repro.exec.SweepEngine` orders the ready
set critical-path-first, which needs a predicted host-side duration for
every node.  Predictions come from history: every completed run —
including cache hits, whose execution wall time rides in the cache
envelope — updates a small persistent JSON store.

The store key is deliberately *not* the cache fingerprint.  Two specs
that differ only in observational knobs (``profile``, ``trace``,
``trace_max_events``, ``pdes_partition``) or in an inactive
:class:`~repro.faults.FaultPlan` execute the same simulation with
near-identical cost, so they must share one duration history; and
unlike cache entries, history stays valid across package versions (a
version bump invalidates cached *results*, not how long a run takes).
:func:`spec_signature` therefore strips the observational fields from
the fully-resolved spec and omits the package version — the
``resolve()`` step already normalizes inactive fault plans to ``None``
and equivalent preset/explicit machine spellings to one form.  Knobs
that change *host* cost without changing the simulation — today just
``pdes_workers``, which divides wall time across worker processes —
stay in the key: mixing their durations into one entry would mislead
every consumer (see :data:`SEMANTIC_FIELDS`).

When a signature has no history the engine falls back to
:func:`fallback_cost`, a conservative work estimate derived from the
machine's cost model (conservative = it assumes maximal refinement, so
unknown work sorts *early*, which is the safe direction for
critical-path scheduling).

A corrupt or unreadable stats file is treated as a cold start — exactly
the corrupt-JSON-as-miss contract of :meth:`ResultCache.get` — one bad
file must never fail a sweep.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import tempfile
from pathlib import Path

from ..core.spec import RunSpec

logger = logging.getLogger(__name__)

#: ``RunSpec`` fields stripped from the signature: they change how a run
#: is *observed* (profiling hooks, tracer retention), not what it
#: computes or how long the host works on it.  ``pdes_partition`` stays
#: here: with the worker count fixed, the rank→worker policy shifts
#: host time by at most the window-barrier slack, and one EWMA history
#: per worker count beats fragmenting it per policy.  Inactive fault
#: plans need no entry here: :meth:`RunSpec.resolve` already normalizes
#: them to ``None``.
OBSERVATIONAL_FIELDS = (
    "profile", "trace", "trace_max_events", "pdes_partition",
)

#: Every other ``RunSpec`` field: these define *what* is simulated — or,
#: for ``pdes_workers``, change host wall time by integer factors — so
#: they stay in the signature.  ``pdes_workers`` used to be stripped as
#: observational, which let partitioned wall-clocks pollute serial
#: predictions (and vice-versa) through one shared EWMA entry, skewing
#: the HEFT critical-path ordering; a 4-worker run finishes in a
#: fraction of the serial host time, so each worker count keeps its own
#: history.  The two tuples must jointly cover the full ``RunSpec`` — a
#: completeness test enforces it, so a new spec field cannot silently
#: leak into (or out of) duration-history keys the way ``profile`` once
#: did.
SEMANTIC_FIELDS = (
    "config", "machine", "variant", "num_nodes", "ranks_per_node",
    "scheduler", "sched_seed", "check_access", "delayed_checksum",
    "stage_barrier", "cost_overrides", "faults", "pdes_workers",
)

#: Version mixed into every signature.  Bumping it orphans every
#: existing store entry at once — the graceful-migration lever for
#: changes to the normalization itself (entries written under the old
#: rules are never read again; predictions degrade to the fallback
#: model and re-learn within a few runs).  Bumped 1 → 2 when
#: ``pdes_workers`` moved into the signature: entries keyed under v1
#: blended serial and partitioned durations, so carrying them forward
#: would perpetuate the pollution the move fixes.
SIGNATURE_VERSION = 2

#: Safety factor applied to :func:`fallback_cost` estimates when mixing
#: them with measured history (cold nodes are assumed expensive, so the
#: scheduler starts them early — the conservative direction).
FALLBACK_CONSERVATISM = 1.5


def spec_signature(spec: RunSpec) -> str:
    """Normalized duration-history key of ``spec``.

    The sha256 of the canonical JSON of the fully-resolved spec with the
    observational fields removed and *no* package version mixed in, so:

    * specs identical modulo ``profile`` / ``trace`` /
      ``trace_max_events`` / ``pdes_partition`` / an inactive
      ``FaultPlan`` share one key;
    * specs differing in ``pdes_workers`` get distinct keys (the worker
      count divides host wall time, so sharing a history would corrupt
      both predictions);
    * preset-name and expanded-machine spellings share one key (both
      resolve to the same explicit machine);
    * history survives package version bumps (but not
      :data:`SIGNATURE_VERSION` bumps, which deliberately orphan
      entries keyed under outdated normalization rules).
    """
    d = spec.resolve().to_dict()
    for field in OBSERVATIONAL_FIELDS:
        d.pop(field, None)
    blob = json.dumps(
        {"sig": SIGNATURE_VERSION, "spec": d},
        sort_keys=True, separators=(",", ":"), allow_nan=False,
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def fallback_cost(spec: RunSpec) -> float:
    """Conservative cold-start work estimate for one run (relative units).

    Estimated total stencil CPU-seconds on the resolved machine's cost
    model, assuming every root block refines to ``max_refine_level`` —
    a deliberate overestimate: with critical-path-first ordering, an
    overestimated unknown starts earlier, never later.  The absolute
    scale is meaningless (host time != simulated time); the engine
    rescales these against measured history when any exists.
    """
    rs = spec.resolve()
    cfg, machine = rs.config, rs.machine
    cells = cfg.nx * cfg.ny * cfg.nz
    root_blocks = (
        cfg.npx * cfg.init_x * cfg.npy * cfg.init_y * cfg.npz * cfg.init_z
    )
    blocks = root_blocks * 8 ** cfg.max_refine_level
    sweeps = max(1, cfg.num_tsteps * cfg.stages_per_ts)
    flops = machine.cost.stencil_flops(
        cells, cfg.num_vars, flops_per_cell=float(cfg.stencil)
    )
    return blocks * sweeps * flops / machine.cost.stencil_flops_per_sec


class RunStatsStore:
    """Persistent signature → duration-statistics map (one JSON file).

    Layout::

        {"version": 1,
         "entries": {"<signature>": {
             "runs": 3, "cached": 1, "ewma": 1.08,
             "mean": 1.12, "total": 3.37, "last": 1.01}}}

    ``record`` buffers in memory; ``flush`` persists atomically
    (write-to-temp + rename, like the result cache).  The engine flushes
    once per sweep, not once per run.
    """

    VERSION = 1

    def __init__(self, path, *, alpha=0.5, telemetry=None):
        self.path = Path(path)
        #: EWMA smoothing: weight of the newest observation.
        self.alpha = alpha
        #: Optional :class:`~repro.obs.telemetry.TelemetryBus`: every
        #: :meth:`record` emits a ``stats_update`` reconciling the store's
        #: prediction (the pre-update EWMA) with the measured duration.
        #: The engine routes its own bus here automatically.
        self.telemetry = telemetry
        self._entries = None
        self._dirty = False

    # ------------------------------------------------------------------
    def _load(self) -> dict:
        if self._entries is not None:
            return self._entries
        try:
            with open(self.path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
            if not isinstance(doc, dict) or not isinstance(
                doc.get("entries"), dict
            ):
                raise ValueError("stats document is not a versioned dict")
            entries = {}
            for sig, entry in doc["entries"].items():
                if not isinstance(entry, dict):
                    raise ValueError(f"entry for {sig!r} is not a dict")
                entries[sig] = entry
            self._entries = entries
        except FileNotFoundError:
            self._entries = {}
        except (ValueError, KeyError, TypeError, OSError) as exc:
            # Cold start, mirroring ResultCache.get's corrupt-JSON-as-miss:
            # predictions degrade to the fallback model, nothing fails.
            logger.warning(
                "discarding corrupt run-stats store %s (%s: %s)",
                self.path, type(exc).__name__, exc,
            )
            self._entries = {}
            self._dirty = True  # overwrite the corrupt file on flush
        return self._entries

    # ------------------------------------------------------------------
    def get(self, signature: str):
        """The raw statistics entry for ``signature`` (or ``None``)."""
        return self._load().get(signature)

    def predict(self, signature: str):
        """Predicted execution wall seconds, or ``None`` without history."""
        entry = self._load().get(signature)
        if entry is None:
            return None
        ewma = entry.get("ewma")
        return float(ewma) if ewma is not None else None

    def record(self, signature: str, wall_time, *, cached=False):
        """Fold one completed run into the store.

        ``cached=True`` marks a cache hit; its ``wall_time`` is the
        *original execution's* duration recorded in the cache envelope
        (``None`` for entries written before durations were recorded —
        those only bump the hit counter).
        """
        entries = self._load()
        entry = entries.setdefault(
            signature,
            {"runs": 0, "cached": 0, "ewma": None, "mean": 0.0,
             "total": 0.0, "last": None},
        )
        if cached:
            entry["cached"] = int(entry.get("cached", 0)) + 1
        if wall_time is None:
            self._dirty = True
            return
        wall_time = float(wall_time)
        runs = int(entry.get("runs", 0)) + 1
        entry["runs"] = runs
        entry["total"] = float(entry.get("total", 0.0)) + wall_time
        entry["mean"] = entry["total"] / runs
        entry["last"] = wall_time
        prev = entry.get("ewma")
        entry["ewma"] = (
            wall_time
            if prev is None
            else self.alpha * wall_time + (1.0 - self.alpha) * float(prev)
        )
        self._dirty = True
        if self.telemetry is not None:
            # Predicted (pre-update EWMA) vs measured, for trend/ETA
            # consumers; ``predicted`` is absent on a cold signature.
            self.telemetry.emit(
                "stats_update", sig=signature, actual=wall_time,
                cached=bool(cached),
                predicted=float(prev) if prev is not None else None,
                ewma=entry["ewma"], runs=runs,
            )

    # ------------------------------------------------------------------
    def flush(self):
        """Persist atomically if anything changed since the last flush."""
        if not self._dirty or self._entries is None:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        doc = {"version": self.VERSION, "entries": self._entries}
        fd, tmp = tempfile.mkstemp(
            dir=self.path.parent, prefix=".tmp-stats-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, sort_keys=True)
            os.replace(tmp, self.path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._dirty = False

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._load())

    def __contains__(self, signature: str) -> bool:
        return signature in self._load()

"""Parallel, cached, fault-isolated execution of experiment job graphs.

Every paper artifact is a *job graph*: a flat sweep of independent runs
in the simplest case, a dependency DAG (calibrate → sweep → report) in
the general one.  Both flow through one scheduler with one contract:

* a node is **launched the moment its own predecessors complete** — no
  level barriers, so an unrelated slow node never holds back a ready
  branch (the RushTI model);
* the ready set is ordered **critical-path-first** using predicted
  durations from the persistent :class:`~repro.exec.stats.RunStatsStore`
  (falling back to a conservative cost-model estimate when history is
  cold) — longest remaining chain starts first;
* runs are dispatched across a pool of worker **processes** (``jobs``);
  results come back as serialized dicts and are bit-identical to serial
  execution (the simulator is deterministic and ``RunResult`` round-trips
  losslessly through JSON);
* each run is looked up in / stored to a content-addressed
  :class:`~repro.exec.cache.ResultCache` by its spec fingerprint —
  lookups happen when the node becomes *ready*, so a cached calibrate
  node unblocks its dependents instantly;
* a worker crash or timeout is retried with exponential backoff and,
  after ``retries`` retries, fails *that one run* — never the sweep; its
  transitive dependents finish as ``blocked`` (a distinct terminal
  status, so "skipped because upstream failed" is never reported as a
  failure of the node itself);
* progress (cached / start / ok / retry / failed / blocked, wall-time
  per run) is reported through a callback.

Trace runs (``spec.trace=True``) are live-only: the tracer cannot cross a
process boundary or live in the JSON cache, so they always execute
in-process and bypass the cache.  Profiled runs (``spec.profile=True``)
are *not* live-only — the :class:`~repro.obs.ProfileReport` serializes
with the result, so they flow through the pool and the cache like any
other run (under their own fingerprint, since ``profile`` is part of the
spec).
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import signal
import threading
import time
import traceback
from dataclasses import dataclass, field

from ..core import RunResult, RunSpec, run_simulation
from ..obs.telemetry import QueueEmitter, drain_queue
from .stats import FALLBACK_CONSERVATISM, fallback_cost, spec_signature


class SweepError(RuntimeError):
    """Raised when a sweep finished with failed runs and strictness is on."""


def retry_jitter(fingerprint: str, attempt: int) -> float:
    """Deterministic retry-backoff jitter in ``[0, 1)``.

    Derived from the run's content fingerprint and the attempt number —
    never from wall clock or a process-global RNG — so a retried sweep
    desynchronizes its retries (the point of jitter) while remaining
    bit-reproducible run to run.
    """
    digest = hashlib.sha256(
        f"{fingerprint}:{attempt}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


@dataclass(frozen=True)
class Sweep:
    """An ordered collection of independent runs, optionally labelled."""

    specs: tuple
    name: str = "sweep"
    labels: tuple = None

    def __post_init__(self):
        object.__setattr__(self, "specs", tuple(self.specs))
        if self.labels is not None:
            labels = tuple(self.labels)
            if len(labels) != len(self.specs):
                raise ValueError("labels must parallel specs")
            object.__setattr__(self, "labels", labels)

    def __len__(self):
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    def label(self, index: int) -> str:
        if self.labels is not None:
            return self.labels[index]
        spec = self.specs[index]
        return f"{spec.variant}@{spec.num_nodes}n"


@dataclass
class RunOutcome:
    """What happened to one node of a job graph."""

    index: int
    spec: RunSpec
    fingerprint: str
    label: str
    #: "ok" (executed), "cached" (served from cache), "failed",
    #: "blocked" (never attempted: a predecessor failed or the engine
    #: shut down before launch), or "canceled" (withdrawn through an
    #: :class:`EngineSession` before completing).
    status: str
    #: :class:`RunResult` for run nodes; the builder's JSON value for
    #: pipeline analysis nodes.
    result: object = None
    error: str = None
    attempts: int = 0
    wall_time: float = 0.0
    #: Node name inside its pipeline (== ``label`` for flat sweeps).
    name: str = None
    #: Seconds between "all predecessors done" and first launch.
    wait_time: float = 0.0
    #: Host seconds of the *successful attempt* alone — what the stats
    #: store learns from (``wall_time`` also accumulates failed attempts
    #: and backoff).  ``None`` when the run never succeeded.
    exec_time: float = None
    #: Engine worker (pool slot) that executed the run: ``0..jobs-1``,
    #: ``-1`` for live-only trace runs executed in the engine parent,
    #: ``None`` when nothing executed (cached/blocked outcomes).
    worker_id: int = None
    #: Pool slots the run occupied while executing (a partitioned run
    #: claims ``min(pdes_workers, jobs)``).
    slots: int = 1

    @property
    def ok(self) -> bool:
        return self.status in ("ok", "cached")


@dataclass
class SweepReport:
    """Structured outcome of one job graph (input order preserved)."""

    outcomes: list = field(default_factory=list)
    wall_time: float = 0.0

    @property
    def results(self) -> list:
        """Node results in input order (``None`` for failed/blocked)."""
        return [o.result for o in self.outcomes]

    @property
    def executed(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "ok")

    @property
    def cached(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "cached")

    @property
    def failed(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "failed")

    @property
    def blocked(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "blocked")

    @property
    def completed(self) -> int:
        return self.executed + self.cached

    def raise_failures(self):
        """Raise :class:`SweepError` listing every failed run.

        Blocked nodes are counted but not listed: they carry no error of
        their own — fixing the failed predecessor unblocks them.
        """
        bad = [o for o in self.outcomes if o.status == "failed"]
        if bad:
            head = f"{len(bad)} of {len(self.outcomes)} runs failed"
            if self.blocked:
                head += f" ({self.blocked} blocked downstream)"
            lines = [head + ":"]
            for o in bad:
                first = (o.error or "unknown error").strip().splitlines()
                lines.append(
                    f"  [{o.label}] after {o.attempts} attempt(s): "
                    f"{first[-1] if first else 'unknown error'}"
                )
            raise SweepError("\n".join(lines))

    def summary(self) -> str:
        parts = (
            f"{self.executed} executed, {self.cached} cached, "
            f"{self.failed} failed"
        )
        if self.blocked:
            parts += f", {self.blocked} blocked"
        return (
            f"{self.completed}/{len(self.outcomes)} runs "
            f"({parts}) in {self.wall_time:.2f}s"
        )


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def run_spec_dict(spec_dict: dict) -> dict:
    """Default worker body: execute a serialized spec, return a dict."""
    return run_simulation(RunSpec.from_dict(spec_dict)).to_dict()


def _child_main(conn, runner, spec_dict):
    """Subprocess entry: run and report ("ok", dict) / ("error", tb)."""
    # A forked child inherits the parent's graceful-shutdown signal
    # handlers (SIGTERM -> request_shutdown), which would swallow the
    # very terminate() the engine uses to kill it.  Workers die on
    # signal, only the engine parent drains.
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(sig, signal.SIG_DFL)
        except (ValueError, OSError):  # pragma: no cover - exotic host
            pass
    try:
        conn.send(("ok", runner(spec_dict)))
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except BaseException:
            pass
    finally:
        conn.close()


class _ChildTelemetryRunner:
    """Wrap a pool child's runner with in-worker telemetry spans.

    The child posts ``run_start``/``run_end`` records onto a queue the
    engine parent drains into the stream file (the parent stays the
    single writer for everything it spawned).  Picklable by
    construction: the wrapped runner already had to be.
    """

    __slots__ = ("runner", "queue", "node", "run", "wid")

    def __init__(self, runner, queue, node, run, wid):
        self.runner = runner
        self.queue = queue
        self.node = node
        self.run = run
        self.wid = wid

    def __call__(self, spec_dict):
        emitter = QueueEmitter(
            self.queue, wid=self.wid, run=self.run, node=self.node
        )
        emitter.emit("run_start")
        try:
            result = self.runner(spec_dict)
        except BaseException:
            emitter.emit("run_end", ok=False)
            raise
        emitter.emit("run_end", ok=True)
        return result


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------
class _Pending:
    __slots__ = ("index", "spec", "fingerprint", "label", "name",
                 "priority", "ready_at", "attempts", "not_before",
                 "started", "first_started", "deadline", "proc", "conn",
                 "wall_time", "slots", "wids", "tenant")

    def __init__(self, index, spec, fingerprint, label, name, priority,
                 ready_at, slots=1, tenant=None):
        self.index = index
        self.spec = spec
        self.fingerprint = fingerprint
        self.label = label
        self.name = name
        self.priority = priority
        self.ready_at = ready_at
        self.attempts = 0
        self.not_before = 0.0
        self.started = 0.0
        self.first_started = None
        self.deadline = None
        self.proc = None
        self.conn = None
        self.wall_time = 0.0
        #: Pool slots this run occupies while it executes.  A partitioned
        #: run (``pdes_workers > 1``) spawns that many worker processes,
        #: so the scheduler bin-packs it as that many jobs.
        self.slots = slots
        #: Worker ids claimed while executing (``wids[0]`` names the run's
        #: worker in outcomes and telemetry); ``None`` between attempts.
        self.wids = None
        #: Tenant attribution for serve-session telemetry (``None`` for
        #: plain sweeps).
        self.tenant = tenant

    @property
    def wid(self):
        return self.wids[0] if self.wids else None

    @property
    def wait_time(self):
        if self.first_started is None:
            return 0.0
        return max(0.0, self.first_started - self.ready_at)


class SweepEngine:
    """Executes job graphs; see the module docstring for the contract.

    ``run`` accepts a flat :class:`Sweep` (or iterable of specs) or a
    :class:`~repro.pipeline.PipelineSpec`; both are lowered to the same
    internal :class:`~repro.pipeline.JobGraph`.  All constructor
    parameters are keyword-only.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (the default) executes in-process —
        identical numbers, easier debugging, and results keep live
        attachments.
    cache:
        A :class:`~repro.exec.cache.ResultCache` (or ``None`` to disable).
    timeout:
        Per-run wall-clock limit in seconds (subprocess runs only).
    retries:
        Crash/timeout retries per run before it is marked failed.
        Deterministic Python exceptions are *not* retried.
    backoff:
        Base of the exponential retry backoff (``backoff * 2**attempt``,
        plus up to 50% :func:`retry_jitter` seeded by the run
        fingerprint — never by wall clock, so retried sweeps reproduce).
    progress:
        Optional callback receiving event dicts (``event ∈ {cached,
        start, ok, retry, failed, blocked}``).
    mp_context:
        ``multiprocessing`` start method (default: ``fork`` where
        available, else ``spawn``).
    runner:
        Picklable ``spec_dict -> result_dict`` executed in workers
        (test/instrumentation hook; defaults to :func:`run_spec_dict`).
    stats:
        A :class:`~repro.exec.stats.RunStatsStore` (or ``None``).  Every
        completed run — including cache hits whose original duration
        rides in the cache envelope — updates it; predictions from it
        drive the critical-path-first ordering of the ready set.
    telemetry:
        A :class:`~repro.obs.telemetry.TelemetryBus` (or ``None``,
        the default: fully disabled, zero emission cost).  The engine
        emits every job-lifecycle transition — queued, launched,
        retried, done/failed/blocked, cache hits — with worker ids and
        slot counts, plus ``engine_start``/``engine_stop`` envelopes;
        pool children post ``run_start``/``run_end`` spans through a
        queue the parent drains.  Telemetry is not part of any
        :class:`RunSpec`: fingerprints, cache keys, and results are
        byte-identical with it on or off.
    drain_timeout:
        Seconds a graceful shutdown (:meth:`request_shutdown`, or
        SIGTERM/SIGINT while running on the main thread) waits for
        in-flight subprocess runs before terminating them.
    """

    def __init__(self, *, jobs=1, cache=None, timeout=None, retries=2,
                 backoff=0.25, progress=None, mp_context=None, runner=None,
                 stats=None, telemetry=None, drain_timeout=30.0):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.jobs = jobs
        self.cache = cache
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.progress = progress
        self.runner = runner or run_spec_dict
        self.stats = stats
        self.telemetry = telemetry
        #: Seconds a graceful shutdown waits for in-flight subprocess
        #: runs before terminating them (see :meth:`request_shutdown`).
        self.drain_timeout = drain_timeout
        self._shutdown = False
        if stats is not None and telemetry is not None and getattr(
            stats, "telemetry", None
        ) is None:
            # Route the store's predicted-vs-actual reconciliation into
            # the same stream the engine writes.
            stats.telemetry = telemetry
        if mp_context is None:
            mp_context = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else "spawn"
            )
        self._ctx = multiprocessing.get_context(mp_context)

    # ------------------------------------------------------------------
    def request_shutdown(self):
        """Ask a running sweep to drain gracefully.

        The scheduling loop stops launching new work, waits up to
        ``drain_timeout`` seconds for in-flight subprocess runs to
        finish (terminating and failing whatever is still alive after
        that), marks every not-yet-launched node ``blocked`` with the
        distinct reason ``"engine shutdown"``, emits the terminal
        ``engine_stop`` telemetry record, and returns the partial
        report normally.  Safe to call from any thread or from a signal
        handler; :meth:`run` installs SIGTERM/SIGINT handlers that call
        it when running on the main thread, so an interrupted sweep
        drains instead of orphaning its worker processes.
        """
        self._shutdown = True

    def _install_signal_handlers(self):
        """SIGTERM/SIGINT -> graceful drain (main thread only)."""
        if threading.current_thread() is not threading.main_thread():
            return None
        previous = {}

        def _handler(signum, frame):
            self.request_shutdown()

        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                previous[sig] = signal.signal(sig, _handler)
            except (ValueError, OSError):  # pragma: no cover - platform
                pass
        return previous

    @staticmethod
    def _restore_signal_handlers(previous):
        if not previous:
            return
        for sig, handler in previous.items():
            try:
                signal.signal(sig, handler)
            except (ValueError, OSError):  # pragma: no cover - platform
                pass

    def run(self, sweep) -> SweepReport:
        """Execute a sweep or pipeline; outcomes come back in node order."""
        graph = self._as_graph(sweep)
        self._shutdown = False
        previous = self._install_signal_handlers()
        try:
            return self._run_graph(graph)
        finally:
            self._restore_signal_handlers(previous)
            if self.stats is not None:
                self.stats.flush()

    def session(self, *, aging_rate=0.0) -> "EngineSession":
        """Open an :class:`EngineSession` for incremental job admission."""
        return EngineSession(self, aging_rate=aging_rate)

    @staticmethod
    def _as_graph(sweep):
        # Imported lazily: repro.pipeline layers *on top of* repro.exec,
        # so the module-level dependency must point only one way.
        from ..pipeline.graph import JobGraph
        from ..pipeline.spec import PipelineSpec

        if isinstance(sweep, JobGraph):
            return sweep
        if isinstance(sweep, PipelineSpec):
            return JobGraph.from_pipeline(sweep)
        if not isinstance(sweep, Sweep):
            sweep = Sweep(tuple(sweep))
        return JobGraph.from_sweep(sweep)

    # ------------------------------------------------------------------
    def predict_costs(self, graph) -> list:
        """Predicted host seconds per node, for scheduling.

        Measured history (EWMA per normalized signature) wins; cold
        nodes get the cost-model fallback rescaled by the median
        measured/fallback ratio of the warm nodes (host time and
        simulated work are different units) times
        :data:`~repro.exec.stats.FALLBACK_CONSERVATISM`.  Generator
        nodes have no spec before their predecessors finish, so they
        conservatively assume the most expensive concrete node.
        """
        costs = [None] * len(graph)
        fallbacks, measured = {}, {}
        for i, node in enumerate(graph.nodes):
            if node.spec is None:
                continue
            fallbacks[i] = fallback_cost(node.spec)
            if self.stats is not None:
                pred = self.stats.predict(spec_signature(node.spec))
                if pred is not None:
                    measured[i] = pred
        ratios = sorted(
            measured[i] / fallbacks[i]
            for i in measured
            if fallbacks[i] > 0
        )
        scale = ratios[len(ratios) // 2] if ratios else 1.0
        for i in fallbacks:
            costs[i] = measured.get(
                i, fallbacks[i] * scale * FALLBACK_CONSERVATISM
            )
        known = [c for c in costs if c is not None]
        default = max(known) if known else 1.0
        return [default if c is None else c for c in costs]

    @staticmethod
    def _node_fingerprint(node, dep_fingerprints) -> str:
        """Content address of a generator node's *analysis* value.

        Mixes the builder identity, its parameters, the predecessors'
        result fingerprints, and the package version — so an analysis
        entry is reused exactly when everything it was derived from is.
        """
        from .. import __version__

        blob = json.dumps(
            {
                "analysis": node.generator,
                "params": node.params or {},
                "deps": list(dep_fingerprints),
                "version": __version__,
            },
            sort_keys=True, separators=(",", ":"), allow_nan=False,
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    def _run_graph(self, graph) -> SweepReport:
        t0 = time.monotonic()
        total = len(graph)
        outcomes = [None] * total
        results = {}        # index -> result payload for dependents
        fingerprints = {}   # index -> fingerprint for analysis hashing
        remaining = [len(p) for p in graph.preds]
        state = {"finished": 0}
        costs = self.predict_costs(graph)
        priority = graph.critical_path_priorities(costs)

        launchable = []     # admitted _Pending tasks awaiting a slot
        running = []
        free_wids = list(range(self.jobs))  # pool slots, lowest-first
        tel = self.telemetry
        tel_queue = None
        if tel is not None:
            predicted_makespan = None
            try:
                predicted_makespan = graph.simulate_makespan(
                    costs, workers=self.jobs
                )
            except ValueError:
                pass  # degenerate graph: telemetry must never fail a run
            tel.emit(
                "engine_start", graph=graph.name, jobs=self.jobs,
                total=total, predicted_makespan=predicted_makespan,
            )
            if self.jobs > 1:
                tel_queue = self._ctx.Queue()
        # Cache counters are cumulative per ResultCache instance; the
        # stop record reports this graph's delta so streams holding many
        # engine sessions stay summable.
        cache_hits0 = getattr(self.cache, "hits", 0) or 0
        cache_misses0 = getattr(self.cache, "misses", 0) or 0

        def finish(outcome, payload):
            """Record a terminal outcome and wake/block dependents."""
            index = outcome.index
            outcomes[index] = outcome
            results[index] = payload
            state["finished"] += 1
            if outcome.ok:
                self._record_stats(outcome)
                for s in graph.succs[index]:
                    if outcomes[s] is not None:
                        continue
                    remaining[s] -= 1
                    if remaining[s] == 0:
                        admit(s)
            else:
                cascade_block(index)

        def cascade_block(index):
            """Terminally block every not-yet-finished transitive dependent."""
            stack = list(graph.succs[index])
            while stack:
                s = stack.pop()
                if outcomes[s] is not None:
                    continue
                node = graph.nodes[s]
                blocker = graph.nodes[index].name
                outcome = RunOutcome(
                    index=s, spec=node.spec, fingerprint=None,
                    label=node.label, name=node.name, status="blocked",
                    error=(
                        f"blocked: predecessor {blocker!r} "
                        f"{outcomes[index].status}"
                    ),
                )
                outcomes[s] = outcome
                state["finished"] += 1
                self._emit("blocked", outcome, total)
                if tel is not None:
                    tel.emit("job_blocked", node=node.name, blocker=blocker)
                stack.extend(graph.succs[s])

        def admit(index):
            """A node's predecessors are all done: resolve and enqueue it.

            Cache lookups, generator builds, analysis reductions, and
            live-only trace runs all happen here, synchronously — a
            cached or analytic node unblocks its dependents without ever
            occupying a worker slot.
            """
            node = graph.nodes[index]
            ready_at = time.monotonic()
            spec = node.spec
            if node.builder is not None:
                deps = {
                    graph.nodes[p].name: results[p]
                    for p in graph.preds[index]
                }
                nfp = self._node_fingerprint(
                    node, [fingerprints[p] for p in graph.preds[index]]
                )
                if self.cache is not None:
                    entry = self.cache.get_entry(nfp)
                    if entry is not None and entry.kind == "analysis":
                        fingerprints[index] = nfp
                        outcome = RunOutcome(
                            index=index, spec=None, fingerprint=nfp,
                            label=node.label, name=node.name,
                            status="cached", result=entry.value,
                        )
                        self._emit("cached", outcome, total)
                        if tel is not None:
                            tel.emit("job_cached", node=node.name, run=nfp)
                        finish(outcome, entry.value)
                        return
                try:
                    built = node.builder(dict(node.params or {}), deps)
                except Exception:
                    fingerprints[index] = nfp
                    outcome = RunOutcome(
                        index=index, spec=None, fingerprint=nfp,
                        label=node.label, name=node.name, status="failed",
                        error=traceback.format_exc(), attempts=1,
                        wall_time=time.monotonic() - ready_at,
                    )
                    self._emit("failed", outcome, total)
                    if tel is not None:
                        tel.emit(
                            "job_failed", node=node.name, run=nfp,
                            attempts=1, error=outcome.error,
                        )
                    finish(outcome, None)
                    return
                if not isinstance(built, RunSpec):
                    # Analysis node: the value *is* the result.
                    wall = time.monotonic() - ready_at
                    fingerprints[index] = nfp
                    if self.cache is not None:
                        self.cache.put_value(
                            nfp,
                            {
                                "generator": node.generator,
                                "params": node.params or {},
                                "deps": [
                                    fingerprints[p]
                                    for p in graph.preds[index]
                                ],
                            },
                            built,
                            wall_time=wall,
                        )
                    outcome = RunOutcome(
                        index=index, spec=None, fingerprint=nfp,
                        label=node.label, name=node.name, status="ok",
                        result=built, attempts=1, wall_time=wall,
                    )
                    self._emit("ok", outcome, total)
                    if tel is not None:
                        tel.emit(
                            "job_done", node=node.name, run=nfp,
                            status="ok", attempts=1, wall_time=wall,
                        )
                    finish(outcome, built)
                    return
                spec = built
            fingerprint = spec.fingerprint()
            fingerprints[index] = fingerprint
            if spec.trace:
                # Live-only: executes in the engine parent (worker -1).
                outcome = self._run_inline(
                    index, spec, fingerprint, node.label, cacheable=False,
                    total=total, name=node.name, wid=-1,
                    predicted=costs[index],
                )
                finish(outcome, outcome.result)
                return
            if self.cache is not None:
                entry = self.cache.get_entry(fingerprint)
                if entry is not None and entry.kind == "result":
                    outcome = RunOutcome(
                        index=index, spec=spec, fingerprint=fingerprint,
                        label=node.label, name=node.name, status="cached",
                        result=entry.value,
                    )
                    self._emit("cached", outcome, total)
                    if tel is not None:
                        tel.emit(
                            "job_cached", node=node.name, run=fingerprint,
                        )
                    if self.stats is not None:
                        self.stats.record(
                            spec_signature(spec), entry.wall_time,
                            cached=True,
                        )
                    finish(outcome, entry.value)
                    return
            slots = max(1, min(spec.pdes_workers or 1, self.jobs))
            if tel is not None:
                tel.emit(
                    "job_queued", node=node.name, run=fingerprint,
                    slots=slots, predicted=costs[index],
                )
            launchable.append(_Pending(
                index, spec, fingerprint, node.label, node.name,
                priority[index], ready_at, slots=slots,
            ))

        # Pool-side helpers ------------------------------------------------
        def launch(task):
            parent, child = self._ctx.Pipe(duplex=False)
            # Claim pool slots: a partitioned run takes ``slots`` worker
            # ids and is named by the lowest one.
            task.wids = free_wids[:task.slots]
            del free_wids[:task.slots]
            runner = self.runner
            if tel_queue is not None:
                runner = _ChildTelemetryRunner(
                    runner, tel_queue, task.name or task.label,
                    task.fingerprint, task.wid,
                )
            # Partitioned runs (slots > 1) spawn their own PDES worker
            # processes, which daemonic children may not do — those
            # workers are daemons of the child, so they still die with
            # it; plain runs keep the stronger daemon cleanup guarantee.
            proc = self._ctx.Process(
                target=_child_main,
                args=(child, runner, task.spec.to_dict()),
                daemon=task.slots == 1,
            )
            task.attempts += 1
            task.started = time.monotonic()
            if task.first_started is None:
                task.first_started = task.started
            task.deadline = (
                task.started + self.timeout if self.timeout else None
            )
            task.proc, task.conn = proc, parent
            proc.start()
            child.close()
            running.append(task)
            if tel is not None:
                tel.emit(
                    "job_launched", node=task.name or task.label,
                    run=task.fingerprint, wid=task.wid, slots=task.slots,
                    attempt=task.attempts,
                )
            if task.attempts == 1:
                self._emit(
                    "start",
                    RunOutcome(
                        index=task.index, spec=task.spec,
                        fingerprint=task.fingerprint, label=task.label,
                        name=task.name, status="running",
                        attempts=task.attempts,
                        wait_time=task.wait_time,
                    ),
                    total,
                )

        def release(task):
            """Return a task's claimed worker ids to the free list."""
            if task.wids:
                free_wids.extend(task.wids)
                free_wids.sort()
            task.wids = None

        def finalize(task, status, result=None, error=None,
                     exec_time=None):
            wid = task.wid
            release(task)
            outcome = RunOutcome(
                index=task.index, spec=task.spec,
                fingerprint=task.fingerprint, label=task.label,
                name=task.name, status=status, result=result, error=error,
                attempts=task.attempts, wall_time=task.wall_time,
                wait_time=task.wait_time, exec_time=exec_time,
                worker_id=wid, slots=task.slots,
            )
            self._emit("ok" if status == "ok" else "failed", outcome, total)
            if tel is not None:
                node = task.name or task.label
                if status == "ok":
                    tel.emit(
                        "job_done", node=node, run=task.fingerprint,
                        wid=wid, status=status, attempts=task.attempts,
                        wall_time=task.wall_time, exec_time=exec_time,
                        wait_time=task.wait_time,
                        predicted=costs[task.index],
                    )
                else:
                    tel.emit(
                        "job_failed", node=node, run=task.fingerprint,
                        wid=wid, attempts=task.attempts,
                        wall_time=task.wall_time, error=error,
                    )
            finish(outcome, result)

        def reap(task):
            """Collect one finished/overdue subprocess attempt."""
            msg = None
            if task.conn.poll():
                try:
                    msg = task.conn.recv()
                except (EOFError, OSError):
                    msg = None
            elif task.proc.is_alive():
                if task.deadline is not None and (
                    time.monotonic() > task.deadline
                ):
                    task.proc.terminate()
                    task.proc.join()
                    self._close(task)
                    return _requeue_or_fail(
                        task, f"timed out after {self.timeout}s"
                    )
                return False  # still working
            # Either a message arrived or the process died silently.
            task.proc.join()
            self._close(task)
            attempt_time = time.monotonic() - task.started
            task.wall_time += attempt_time
            if msg is None:
                return _requeue_or_fail(
                    task,
                    f"worker died (exit code {task.proc.exitcode})",
                    charged=True,
                )
            kind, payload = msg
            if kind == "ok":
                result = RunResult.from_dict(payload)
                self._store(
                    task.spec, task.fingerprint, result,
                    wall_time=attempt_time,
                )
                finalize(task, "ok", result=result, exec_time=attempt_time)
            else:
                # Deterministic Python exception: retrying cannot help.
                finalize(task, "failed", error=payload)
            return True

        def _requeue_or_fail(task, reason, charged=False):
            if not charged:
                task.wall_time += time.monotonic() - task.started
            if task.attempts > self.retries:
                finalize(task, "failed", error=reason)
            else:
                release(task)
                if tel is not None:
                    tel.emit(
                        "job_retry", node=task.name or task.label,
                        run=task.fingerprint, attempt=task.attempts,
                        reason=reason,
                    )
                # Exponential backoff with seeded jitter (up to +50%).
                task.not_before = time.monotonic() + (
                    self.backoff
                    * (2 ** (task.attempts - 1))
                    * (1.0 + 0.5 * retry_jitter(
                        task.fingerprint, task.attempts
                    ))
                )
                launchable.append(task)
                self._emit(
                    "retry",
                    RunOutcome(
                        index=task.index, spec=task.spec,
                        fingerprint=task.fingerprint, label=task.label,
                        name=task.name, status="retrying", error=reason,
                        attempts=task.attempts, wall_time=task.wall_time,
                    ),
                    total,
                )
            return True

        # Admit every root (in node order, so flat-sweep cache hits keep
        # their historical event ordering); admission cascades through
        # cached/analytic chains synchronously.
        for index in range(total):
            if remaining[index] == 0 and outcomes[index] is None:
                admit(index)

        def drain_and_block():
            """Graceful shutdown: drain in-flight runs, block the rest.

            In-flight subprocess attempts get up to ``drain_timeout``
            seconds to finish (their results still count and cache);
            whatever survives the deadline is terminated and failed.
            Every node that never launched — queued, backing off, or
            not yet admitted — terminates as ``blocked`` with the
            distinct reason ``"engine shutdown"``.
            """
            deadline = time.monotonic() + max(0.0, self.drain_timeout or 0.0)
            while running:
                if tel_queue is not None:
                    drain_queue(tel_queue, tel)
                for task in list(running):
                    if reap(task):
                        running.remove(task)
                if not running:
                    break
                if time.monotonic() > deadline:
                    for task in list(running):
                        task.proc.terminate()
                        task.proc.join()
                        self._close(task)
                        task.wall_time += time.monotonic() - task.started
                        finalize(
                            task, "failed",
                            error=(
                                "terminated: engine shutdown after "
                                f"{self.drain_timeout}s drain"
                            ),
                        )
                    running.clear()
                    break
                time.sleep(0.01)
            # A run finishing during the drain may have admitted cached
            # or analytic successors (they completed synchronously) and
            # queued runnable ones — those, plus everything else not yet
            # terminal, block here.
            launchable.clear()
            for i in range(total):
                if outcomes[i] is not None:
                    continue
                node = graph.nodes[i]
                outcome = RunOutcome(
                    index=i, spec=node.spec, fingerprint=None,
                    label=node.label, name=node.name, status="blocked",
                    error="blocked: engine shutdown",
                )
                outcomes[i] = outcome
                state["finished"] += 1
                self._emit("blocked", outcome, total)
                if tel is not None:
                    tel.emit(
                        "job_blocked", node=node.name, blocker="<shutdown>",
                    )

        # Main scheduling loop: launch critical-path-first, reap, repeat.
        while state["finished"] < total:
            if self._shutdown:
                drain_and_block()
                break
            if tel_queue is not None:
                drain_queue(tel_queue, tel)
            now = time.monotonic()
            launchable.sort(key=lambda t: (-t.priority, t.index))
            # A partitioned run claims ``slots`` pool slots; narrower
            # tasks may backfill around a wide one that does not fit yet
            # (``not running`` guarantees progress for a task wider than
            # what ever frees up).
            used = sum(t.slots for t in running)
            task = next(
                (t for t in launchable
                 if t.not_before <= now
                 and (used + t.slots <= self.jobs or not running)),
                None,
            )
            if task is not None:
                launchable.remove(task)
                if self.jobs == 1:
                    task.first_started = time.monotonic()
                    outcome = self._run_inline(
                        task.index, task.spec, task.fingerprint,
                        task.label, cacheable=True, total=total,
                        name=task.name, wait_time=task.wait_time,
                        wid=0, predicted=costs[task.index],
                    )
                    finish(outcome, outcome.result)
                else:
                    launch(task)
                continue  # keep launching while slots and ready work last
            for task in list(running):
                if reap(task):
                    running.remove(task)
            if state["finished"] >= total:
                break
            if not running and not launchable:
                raise RuntimeError(
                    f"job graph {graph.name!r}: no runnable work but "
                    f"{total - state['finished']} node(s) unfinished"
                )
            if not running and launchable:
                # Everything runnable is backing off; nap until the
                # soonest retry.
                soonest = min(t.not_before for t in launchable)
                time.sleep(max(0.0, min(0.05, soonest - now)))
            else:
                time.sleep(0.005)

        report = SweepReport(
            outcomes=outcomes, wall_time=time.monotonic() - t0
        )
        if tel is not None:
            if tel_queue is not None:
                # All children are joined: one last drain empties the
                # queue, then the feeder thread can go.
                drain_queue(tel_queue, tel)
                tel_queue.close()
            cache = self.cache
            tel.emit(
                "engine_stop", graph=graph.name,
                reason="shutdown" if self._shutdown else None,
                makespan=report.wall_time, executed=report.executed,
                cached=report.cached, failed=report.failed,
                blocked=report.blocked,
                cache_hits=(
                    None if cache is None
                    else getattr(cache, "hits", 0) - cache_hits0
                ),
                cache_misses=(
                    None if cache is None
                    else getattr(cache, "misses", 0) - cache_misses0
                ),
            )
        return report

    # ------------------------------------------------------------------
    def _record_stats(self, outcome):
        """Fold one executed run node into the duration history."""
        if (
            self.stats is None
            or outcome.status != "ok"
            or outcome.spec is None
        ):
            return
        wall = (
            outcome.exec_time
            if outcome.exec_time is not None
            else outcome.wall_time
        )
        self.stats.record(spec_signature(outcome.spec), wall)

    def _emit(self, event, outcome, total, **extra):
        if self.progress is None:
            return
        payload = {
            "event": event,
            "index": outcome.index,
            "total": total,
            "label": outcome.label,
            "name": outcome.name,
            "fingerprint": outcome.fingerprint,
            "status": outcome.status,
            "attempts": outcome.attempts,
            "wall_time": outcome.wall_time,
            "wait_time": outcome.wait_time,
            "worker_id": outcome.worker_id,
            "slots": outcome.slots,
        }
        payload.update(extra)
        self.progress(payload)

    def _store(self, spec, fingerprint, result, wall_time=None):
        if self.cache is not None:
            self.cache.put(fingerprint, spec, result, wall_time=wall_time)

    # ------------------------------------------------------------------
    def _run_inline(self, index, spec, fingerprint, label, cacheable,
                    total=None, name=None, wait_time=0.0, wid=None,
                    predicted=None):
        tel = self.telemetry
        node = name or label
        if tel is not None:
            tel.emit(
                "job_launched", node=node, run=fingerprint, wid=wid,
                slots=1, attempt=1, predicted=predicted,
            )
        start = time.monotonic()
        try:
            result = run_simulation(spec)
        except Exception:
            outcome = RunOutcome(
                index=index, spec=spec, fingerprint=fingerprint,
                label=label, name=name, status="failed",
                error=traceback.format_exc(), attempts=1,
                wall_time=time.monotonic() - start, wait_time=wait_time,
                worker_id=wid,
            )
            self._emit("failed", outcome, total or 0)
            if tel is not None:
                tel.emit(
                    "job_failed", node=node, run=fingerprint, wid=wid,
                    attempts=1, wall_time=outcome.wall_time,
                    error=outcome.error,
                )
            return outcome
        wall = time.monotonic() - start
        if cacheable:
            self._store(spec, fingerprint, result, wall_time=wall)
        outcome = RunOutcome(
            index=index, spec=spec, fingerprint=fingerprint, label=label,
            name=name, status="ok", result=result, attempts=1,
            wall_time=wall, wait_time=wait_time, exec_time=wall,
            worker_id=wid,
        )
        self._emit("ok", outcome, total or 0)
        if tel is not None:
            tel.emit(
                "job_done", node=node, run=fingerprint, wid=wid,
                status="ok", attempts=1, wall_time=wall, exec_time=wall,
                wait_time=wait_time, predicted=predicted,
            )
        return outcome

    @staticmethod
    def _close(task):
        try:
            task.conn.close()
        except OSError:
            pass


# ----------------------------------------------------------------------
# Incremental admission: EngineSession
# ----------------------------------------------------------------------
@dataclass
class SessionStep:
    """What one :meth:`EngineSession.poll` call advanced."""

    #: Tickets whose first subprocess attempt launched this step.
    started: list = field(default_factory=list)
    #: ``(ticket, RunOutcome)`` pairs that reached a terminal state.
    finished: list = field(default_factory=list)


class EngineSession:
    """Incremental job admission into a live engine.

    :meth:`SweepEngine.run` executes one closed job graph start to
    finish; a session stays open instead: callers :meth:`submit`
    independent specs at any time, :meth:`poll` advances launching and
    reaping without ever blocking on a run, :meth:`cancel` withdraws
    queued work (and best-effort terminates running work), and
    :meth:`drain`/:meth:`close` wind the session down.  The serving
    layer (:mod:`repro.serve`) runs its broker on one of these.

    Two deliberate differences from ``run()``:

    * **Every run executes in a subprocess, even with ``jobs=1``** — a
      poll must never block on a simulation, and a cancel needs a
      process to terminate.
    * **No cache lookups.**  The caller decides its own fast path (the
      serve broker coalesces *before* the session ever sees a spec);
      the session only executes, stores to the cache, and feeds the
      stats store — exactly like a pool run inside ``run()``.

    Ready work is ordered by ``priority + aging_rate * age`` (highest
    first), so a weighted-fair caller can hand tenants different base
    priorities without starving anyone: every queued job's effective
    priority grows linearly with its queue age.

    Thread-safe: submit/cancel/poll may race from different threads.
    """

    def __init__(self, engine: SweepEngine, *, aging_rate=0.0):
        self.engine = engine
        self.aging_rate = aging_rate
        self._lock = threading.RLock()
        self._launchable = []     # _Pending awaiting a slot
        self._running = []
        self._tickets = {}        # ticket -> live _Pending
        self._outcomes = {}       # ticket -> terminal RunOutcome
        self._cancel_requested = set()
        self._free_wids = list(range(engine.jobs))
        self._next_ticket = 0
        self._closed = False
        self._started_t = time.monotonic()
        tel = engine.telemetry
        self._tel_queue = engine._ctx.Queue() if tel is not None else None
        if tel is not None:
            tel.emit(
                "engine_start", graph="session", jobs=engine.jobs, total=0,
            )

    # ------------------------------------------------------------------
    def submit(self, spec, *, name=None, priority=0.0, tenant=None) -> int:
        """Enqueue one spec; returns a ticket for polling/cancelling.

        ``tenant`` is attribution only: it rides on the session's job
        telemetry records so one stream serving many tenants still
        attributes every event — it never affects scheduling beyond the
        caller-chosen ``priority``.
        """
        fingerprint = spec.fingerprint()   # outside the lock: it hashes
        with self._lock:
            if self._closed:
                raise RuntimeError("session is closed")
            ticket = self._next_ticket
            self._next_ticket += 1
            name = name or f"job-{ticket}"
            slots = max(1, min(spec.pdes_workers or 1, self.engine.jobs))
            task = _Pending(
                ticket, spec, fingerprint, name, name, priority,
                time.monotonic(), slots=slots, tenant=tenant,
            )
            self._tickets[ticket] = task
            self._launchable.append(task)
            tel = self.engine.telemetry
            if tel is not None:
                tel.emit(
                    "job_queued", node=name, run=fingerprint, slots=slots,
                    tenant=tenant,
                )
            return ticket

    def outcome(self, ticket):
        """The terminal :class:`RunOutcome`, or ``None`` while live."""
        with self._lock:
            return self._outcomes.get(ticket)

    @property
    def active(self) -> int:
        """Jobs submitted but not yet terminal."""
        with self._lock:
            return len(self._tickets)

    @property
    def busy_slots(self) -> int:
        """Worker slots currently claimed by running jobs."""
        with self._lock:
            return sum(t.slots for t in self._running)

    # ------------------------------------------------------------------
    def cancel(self, ticket) -> bool:
        """Withdraw a job: immediate for queued, best-effort for running.

        Returns ``True`` when the cancel took (or was already pending),
        ``False`` when the job is already terminal or unknown.  A run
        that completes before the terminate lands keeps its result —
        the outcome then reads ``ok``, never ``canceled``.
        """
        with self._lock:
            task = self._tickets.get(ticket)
            if task is None:
                return False
            if task in self._launchable:
                self._launchable.remove(task)
                self._finalize(task, "canceled",
                               error="canceled while queued")
                return True
            self._cancel_requested.add(ticket)
            if task.proc is not None:
                try:
                    task.proc.terminate()
                except (OSError, ValueError):  # pragma: no cover - race
                    pass
            return True

    # ------------------------------------------------------------------
    def poll(self) -> SessionStep:
        """Advance the session one step; never blocks on a run."""
        step = SessionStep()
        with self._lock:
            tel = self.engine.telemetry
            if self._tel_queue is not None and tel is not None:
                drain_queue(self._tel_queue, tel)
            now = time.monotonic()
            self._launchable.sort(
                key=lambda t: (
                    -(t.priority + self.aging_rate * (now - t.ready_at)),
                    t.index,
                )
            )
            while True:
                used = sum(t.slots for t in self._running)
                task = next(
                    (t for t in self._launchable
                     if t.not_before <= now
                     and (used + t.slots <= self.engine.jobs
                          or not self._running)),
                    None,
                )
                if task is None:
                    break
                self._launchable.remove(task)
                self._launch(task)
                if task.attempts == 1:
                    step.started.append(task.index)
            for task in list(self._running):
                outcome = self._reap(task)
                if outcome is not None or task.proc is None:
                    self._running.remove(task)
                    if outcome is not None:
                        step.finished.append((task.index, outcome))
        return step

    def drain(self, timeout=None) -> bool:
        """Poll until every submitted job is terminal (or ``timeout``).

        Returns ``True`` when fully drained.  Jobs still alive at the
        deadline are left running — call :meth:`close` to terminate.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while self.active:
            self.poll()
            if not self.active:
                break
            if deadline is not None and time.monotonic() > deadline:
                return False
            time.sleep(0.01)
        return True

    def close(self):
        """Terminate everything still live; the session ends canceled.

        Queued jobs finish ``canceled`` immediately; running processes
        are terminated and finish ``canceled`` too.  Idempotent.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for task in list(self._launchable):
                self._launchable.remove(task)
                self._finalize(task, "canceled",
                               error="canceled: session closed")
            for task in list(self._running):
                self._cancel_requested.add(task.index)
                try:
                    task.proc.terminate()
                except (OSError, ValueError):  # pragma: no cover - race
                    pass
                task.proc.join()
                SweepEngine._close(task)
                task.wall_time += time.monotonic() - task.started
                self._running.remove(task)
                self._finalize(task, "canceled",
                               error="canceled: session closed")
            tel = self.engine.telemetry
            if self._tel_queue is not None and tel is not None:
                drain_queue(self._tel_queue, tel)
                self._tel_queue.close()
                self._tel_queue = None
            if tel is not None:
                counts = {"ok": 0, "failed": 0, "canceled": 0}
                for outcome in self._outcomes.values():
                    counts[outcome.status] = (
                        counts.get(outcome.status, 0) + 1
                    )
                tel.emit(
                    "engine_stop", graph="session",
                    makespan=time.monotonic() - self._started_t,
                    executed=counts["ok"], cached=0,
                    failed=counts["failed"], blocked=0,
                    canceled=counts["canceled"],
                )

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

    # ------------------------------------------------------------------
    def _launch(self, task):
        engine = self.engine
        parent, child = engine._ctx.Pipe(duplex=False)
        task.wids = self._free_wids[:task.slots]
        del self._free_wids[:task.slots]
        runner = engine.runner
        if self._tel_queue is not None:
            runner = _ChildTelemetryRunner(
                runner, self._tel_queue, task.name, task.fingerprint,
                task.wid,
            )
        proc = engine._ctx.Process(
            target=_child_main,
            args=(child, runner, task.spec.to_dict()),
            daemon=task.slots == 1,
        )
        task.attempts += 1
        task.started = time.monotonic()
        if task.first_started is None:
            task.first_started = task.started
        task.deadline = (
            task.started + engine.timeout if engine.timeout else None
        )
        task.proc, task.conn = proc, parent
        proc.start()
        child.close()
        self._running.append(task)
        tel = engine.telemetry
        if tel is not None:
            tel.emit(
                "job_launched", node=task.name, run=task.fingerprint,
                wid=task.wid, slots=task.slots, attempt=task.attempts,
                tenant=task.tenant,
            )

    def _reap(self, task):
        """One reap step; returns the terminal outcome or ``None``."""
        engine = self.engine
        msg = None
        if task.conn.poll():
            try:
                msg = task.conn.recv()
            except (EOFError, OSError):
                msg = None
        elif task.proc.is_alive():
            canceled = task.index in self._cancel_requested
            overdue = task.deadline is not None and (
                time.monotonic() > task.deadline
            )
            if not canceled and not overdue:
                return None
            task.proc.terminate()
            task.proc.join()
            SweepEngine._close(task)
            task.wall_time += time.monotonic() - task.started
            if canceled:
                return self._finalize(
                    task, "canceled", error="canceled while running",
                )
            return self._retry_or_fail(
                task, f"timed out after {engine.timeout}s",
            )
        task.proc.join()
        SweepEngine._close(task)
        attempt_time = time.monotonic() - task.started
        task.wall_time += attempt_time
        if msg is None:
            if task.index in self._cancel_requested:
                return self._finalize(
                    task, "canceled", error="canceled while running",
                )
            return self._retry_or_fail(
                task, f"worker died (exit code {task.proc.exitcode})",
            )
        kind, payload = msg
        if kind == "ok":
            # A completed result always wins, even over a pending
            # cancel — exactly-once beats promptly-withdrawn.
            result = RunResult.from_dict(payload)
            engine._store(
                task.spec, task.fingerprint, result,
                wall_time=attempt_time,
            )
            if engine.stats is not None:
                engine.stats.record(
                    spec_signature(task.spec), attempt_time,
                )
            return self._finalize(
                task, "ok", result=result, exec_time=attempt_time,
            )
        return self._finalize(task, "failed", error=payload)

    def _retry_or_fail(self, task, reason):
        engine = self.engine
        if task.attempts > engine.retries:
            return self._finalize(task, "failed", error=reason)
        if task.wids:
            self._free_wids.extend(task.wids)
            self._free_wids.sort()
        task.wids = None
        task.proc = task.conn = None
        task.not_before = time.monotonic() + (
            engine.backoff
            * (2 ** (task.attempts - 1))
            * (1.0 + 0.5 * retry_jitter(task.fingerprint, task.attempts))
        )
        self._launchable.append(task)
        tel = engine.telemetry
        if tel is not None:
            tel.emit(
                "job_retry", node=task.name, run=task.fingerprint,
                attempt=task.attempts, reason=reason, tenant=task.tenant,
            )
        return None

    def _finalize(self, task, status, result=None, error=None,
                  exec_time=None):
        wid = task.wid
        if task.wids:
            self._free_wids.extend(task.wids)
            self._free_wids.sort()
        task.wids = None
        outcome = RunOutcome(
            index=task.index, spec=task.spec,
            fingerprint=task.fingerprint, label=task.label,
            name=task.name, status=status, result=result, error=error,
            attempts=task.attempts, wall_time=task.wall_time,
            wait_time=task.wait_time, exec_time=exec_time,
            worker_id=wid, slots=task.slots,
        )
        self._outcomes[task.index] = outcome
        self._tickets.pop(task.index, None)
        self._cancel_requested.discard(task.index)
        tel = self.engine.telemetry
        if tel is not None:
            if status == "failed":
                tel.emit(
                    "job_failed", node=task.name, run=task.fingerprint,
                    wid=wid, attempts=task.attempts,
                    wall_time=task.wall_time, error=error,
                    tenant=task.tenant,
                )
            else:
                tel.emit(
                    "job_done", node=task.name, run=task.fingerprint,
                    wid=wid, status=status, attempts=task.attempts,
                    wall_time=task.wall_time, exec_time=exec_time,
                    wait_time=task.wait_time, tenant=task.tenant,
                )
        return outcome

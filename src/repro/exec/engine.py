"""Parallel, cached, fault-isolated execution of simulation sweeps.

Every paper artifact is a *sweep* of independent deterministic runs, so
the engine's contract is simple:

* runs are dispatched across a pool of worker **processes** (``jobs``);
  results come back as serialized dicts and are bit-identical to serial
  execution (the simulator is deterministic and ``RunResult`` round-trips
  losslessly through JSON);
* each run is looked up in / stored to a content-addressed
  :class:`~repro.exec.cache.ResultCache` by its spec fingerprint;
* a worker crash or timeout is retried with exponential backoff and, after
  ``retries`` retries, fails *that one run* — never the sweep;
* progress (completed / cached / failed, wall-time per run) is reported
  through a callback.

Trace runs (``spec.trace=True``) are live-only: the tracer cannot cross a
process boundary or live in the JSON cache, so they always execute
in-process and bypass the cache.  Profiled runs (``spec.profile=True``)
are *not* live-only — the :class:`~repro.obs.ProfileReport` serializes
with the result, so they flow through the pool and the cache like any
other run (under their own fingerprint, since ``profile`` is part of the
spec).
"""

from __future__ import annotations

import hashlib
import multiprocessing
import time
import traceback
from dataclasses import dataclass, field

from ..core import RunResult, RunSpec, run_simulation


class SweepError(RuntimeError):
    """Raised when a sweep finished with failed runs and strictness is on."""


def retry_jitter(fingerprint: str, attempt: int) -> float:
    """Deterministic retry-backoff jitter in ``[0, 1)``.

    Derived from the run's content fingerprint and the attempt number —
    never from wall clock or a process-global RNG — so a retried sweep
    desynchronizes its retries (the point of jitter) while remaining
    bit-reproducible run to run.
    """
    digest = hashlib.sha256(
        f"{fingerprint}:{attempt}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") / 2.0**64


@dataclass(frozen=True)
class Sweep:
    """An ordered collection of runs, optionally labelled."""

    specs: tuple
    name: str = "sweep"
    labels: tuple = None

    def __post_init__(self):
        object.__setattr__(self, "specs", tuple(self.specs))
        if self.labels is not None:
            labels = tuple(self.labels)
            if len(labels) != len(self.specs):
                raise ValueError("labels must parallel specs")
            object.__setattr__(self, "labels", labels)

    def __len__(self):
        return len(self.specs)

    def __iter__(self):
        return iter(self.specs)

    def label(self, index: int) -> str:
        if self.labels is not None:
            return self.labels[index]
        spec = self.specs[index]
        return f"{spec.variant}@{spec.num_nodes}n"


@dataclass
class RunOutcome:
    """What happened to one run of a sweep."""

    index: int
    spec: RunSpec
    fingerprint: str
    label: str
    #: "ok" (executed), "cached" (served from cache), or "failed".
    status: str
    result: RunResult = None
    error: str = None
    attempts: int = 0
    wall_time: float = 0.0

    @property
    def ok(self) -> bool:
        return self.status in ("ok", "cached")


@dataclass
class SweepReport:
    """Structured outcome of one sweep (input order preserved)."""

    outcomes: list = field(default_factory=list)
    wall_time: float = 0.0

    @property
    def results(self) -> list:
        """Run results in input order (``None`` for failed runs)."""
        return [o.result for o in self.outcomes]

    @property
    def executed(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "ok")

    @property
    def cached(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "cached")

    @property
    def failed(self) -> int:
        return sum(1 for o in self.outcomes if o.status == "failed")

    @property
    def completed(self) -> int:
        return self.executed + self.cached

    def raise_failures(self):
        """Raise :class:`SweepError` listing every failed run."""
        bad = [o for o in self.outcomes if o.status == "failed"]
        if bad:
            lines = [f"{len(bad)} of {len(self.outcomes)} runs failed:"]
            for o in bad:
                first = (o.error or "unknown error").strip().splitlines()
                lines.append(
                    f"  [{o.label}] after {o.attempts} attempt(s): "
                    f"{first[-1] if first else 'unknown error'}"
                )
            raise SweepError("\n".join(lines))

    def summary(self) -> str:
        return (
            f"{self.completed}/{len(self.outcomes)} runs "
            f"({self.executed} executed, {self.cached} cached, "
            f"{self.failed} failed) in {self.wall_time:.2f}s"
        )


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def run_spec_dict(spec_dict: dict) -> dict:
    """Default worker body: execute a serialized spec, return a dict."""
    return run_simulation(RunSpec.from_dict(spec_dict)).to_dict()


def _child_main(conn, runner, spec_dict):
    """Subprocess entry: run and report ("ok", dict) / ("error", tb)."""
    try:
        conn.send(("ok", runner(spec_dict)))
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except BaseException:
            pass
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------
class _Pending:
    __slots__ = ("index", "spec", "fingerprint", "label", "attempts",
                 "not_before", "started", "deadline", "proc", "conn",
                 "wall_time")

    def __init__(self, index, spec, fingerprint, label):
        self.index = index
        self.spec = spec
        self.fingerprint = fingerprint
        self.label = label
        self.attempts = 0
        self.not_before = 0.0
        self.started = 0.0
        self.deadline = None
        self.proc = None
        self.conn = None
        self.wall_time = 0.0


class SweepEngine:
    """Executes :class:`Sweep`s; see the module docstring for the contract.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (the default) executes in-process —
        identical numbers, easier debugging, and results keep live
        attachments.
    cache:
        A :class:`~repro.exec.cache.ResultCache` (or ``None`` to disable).
    timeout:
        Per-run wall-clock limit in seconds (subprocess runs only).
    retries:
        Crash/timeout retries per run before it is marked failed.
        Deterministic Python exceptions are *not* retried.
    backoff:
        Base of the exponential retry backoff (``backoff * 2**attempt``,
        plus up to 50% :func:`retry_jitter` seeded by the run
        fingerprint — never by wall clock, so retried sweeps reproduce).
    progress:
        Optional callback receiving event dicts
        (``event ∈ {cached, start, ok, retry, failed}``).
    mp_context:
        ``multiprocessing`` start method (default: ``fork`` where
        available, else ``spawn``).
    runner:
        Picklable ``spec_dict -> result_dict`` executed in workers
        (test/instrumentation hook; defaults to :func:`run_spec_dict`).
    """

    def __init__(self, jobs=1, cache=None, timeout=None, retries=2,
                 backoff=0.25, progress=None, mp_context=None, runner=None):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.jobs = jobs
        self.cache = cache
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.progress = progress
        self.runner = runner or run_spec_dict
        if mp_context is None:
            mp_context = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else "spawn"
            )
        self._ctx = multiprocessing.get_context(mp_context)

    # ------------------------------------------------------------------
    def run(self, sweep) -> SweepReport:
        """Execute every spec; outcomes come back in input order."""
        if not isinstance(sweep, Sweep):
            sweep = Sweep(tuple(sweep))
        t0 = time.monotonic()
        outcomes = [None] * len(sweep)
        pending = []

        # Phase 1: cache lookups and live-only (trace) runs.
        for index, spec in enumerate(sweep):
            label = sweep.label(index)
            fingerprint = spec.fingerprint()
            if spec.trace:
                outcomes[index] = self._run_inline(
                    index, spec, fingerprint, label, cacheable=False
                )
                continue
            if self.cache is not None:
                hit = self.cache.get(fingerprint)
                if hit is not None:
                    outcomes[index] = RunOutcome(
                        index=index, spec=spec, fingerprint=fingerprint,
                        label=label, status="cached", result=hit,
                    )
                    self._emit("cached", outcomes[index], len(sweep))
                    continue
            pending.append(_Pending(index, spec, fingerprint, label))

        # Phase 2: execute the misses.
        if self.jobs == 1:
            for task in pending:
                outcomes[task.index] = self._run_inline(
                    task.index, task.spec, task.fingerprint, task.label,
                    cacheable=True, total=len(sweep),
                )
        elif pending:
            self._run_pool(pending, outcomes, len(sweep))

        report = SweepReport(
            outcomes=outcomes, wall_time=time.monotonic() - t0
        )
        return report

    # ------------------------------------------------------------------
    def _emit(self, event, outcome, total, **extra):
        if self.progress is None:
            return
        payload = {
            "event": event,
            "index": outcome.index,
            "total": total,
            "label": outcome.label,
            "fingerprint": outcome.fingerprint,
            "status": outcome.status,
            "attempts": outcome.attempts,
            "wall_time": outcome.wall_time,
        }
        payload.update(extra)
        self.progress(payload)

    def _store(self, spec, fingerprint, result):
        if self.cache is not None:
            self.cache.put(fingerprint, spec, result)

    # ------------------------------------------------------------------
    def _run_inline(self, index, spec, fingerprint, label, cacheable,
                    total=None):
        start = time.monotonic()
        try:
            result = run_simulation(spec)
        except Exception:
            outcome = RunOutcome(
                index=index, spec=spec, fingerprint=fingerprint,
                label=label, status="failed",
                error=traceback.format_exc(), attempts=1,
                wall_time=time.monotonic() - start,
            )
            self._emit("failed", outcome, total or 0)
            return outcome
        if cacheable:
            self._store(spec, fingerprint, result)
        outcome = RunOutcome(
            index=index, spec=spec, fingerprint=fingerprint, label=label,
            status="ok", result=result, attempts=1,
            wall_time=time.monotonic() - start,
        )
        self._emit("ok", outcome, total or 0)
        return outcome

    # ------------------------------------------------------------------
    # Process-pool scheduler: one process per attempt, no shared pool to
    # break — a dying worker can only ever take its own run down.
    # ------------------------------------------------------------------
    def _run_pool(self, pending, outcomes, total):
        waiting = list(pending)
        running = []

        def launch(task):
            parent, child = self._ctx.Pipe(duplex=False)
            proc = self._ctx.Process(
                target=_child_main,
                args=(child, self.runner, task.spec.to_dict()),
                daemon=True,
            )
            task.attempts += 1
            task.started = time.monotonic()
            task.deadline = (
                task.started + self.timeout if self.timeout else None
            )
            task.proc, task.conn = proc, parent
            proc.start()
            child.close()
            running.append(task)
            if task.attempts == 1:
                self._emit(
                    "start",
                    RunOutcome(
                        index=task.index, spec=task.spec,
                        fingerprint=task.fingerprint, label=task.label,
                        status="running", attempts=task.attempts,
                    ),
                    total,
                )

        def finalize(task, status, result=None, error=None):
            task.wall_time += time.monotonic() - task.started
            outcome = RunOutcome(
                index=task.index, spec=task.spec,
                fingerprint=task.fingerprint, label=task.label,
                status=status, result=result, error=error,
                attempts=task.attempts, wall_time=task.wall_time,
            )
            outcomes[task.index] = outcome
            self._emit("ok" if status == "ok" else "failed", outcome, total)

        def reap(task):
            """Collect one finished/overdue subprocess attempt."""
            msg = None
            if task.conn.poll():
                try:
                    msg = task.conn.recv()
                except (EOFError, OSError):
                    msg = None
            elif task.proc.is_alive():
                if task.deadline is not None and (
                    time.monotonic() > task.deadline
                ):
                    task.proc.terminate()
                    task.proc.join()
                    self._close(task)
                    return _requeue_or_fail(
                        task, f"timed out after {self.timeout}s"
                    )
                return False  # still working
            # Either a message arrived or the process died silently.
            task.proc.join()
            self._close(task)
            if msg is None:
                return _requeue_or_fail(
                    task, f"worker died (exit code {task.proc.exitcode})"
                )
            kind, payload = msg
            if kind == "ok":
                result = RunResult.from_dict(payload)
                self._store(task.spec, task.fingerprint, result)
                finalize(task, "ok", result=result)
            else:
                # Deterministic Python exception: retrying cannot help.
                finalize(task, "failed", error=payload)
            return True

        def _requeue_or_fail(task, reason):
            task.wall_time += time.monotonic() - task.started
            if task.attempts > self.retries:
                outcome = RunOutcome(
                    index=task.index, spec=task.spec,
                    fingerprint=task.fingerprint, label=task.label,
                    status="failed", error=reason, attempts=task.attempts,
                    wall_time=task.wall_time,
                )
                outcomes[task.index] = outcome
                self._emit("failed", outcome, total)
            else:
                # Exponential backoff with seeded jitter (up to +50%).
                task.not_before = time.monotonic() + (
                    self.backoff
                    * (2 ** (task.attempts - 1))
                    * (1.0 + 0.5 * retry_jitter(
                        task.fingerprint, task.attempts
                    ))
                )
                waiting.append(task)
                self._emit(
                    "retry",
                    RunOutcome(
                        index=task.index, spec=task.spec,
                        fingerprint=task.fingerprint, label=task.label,
                        status="retrying", error=reason,
                        attempts=task.attempts, wall_time=task.wall_time,
                    ),
                    total,
                )
            return True

        while waiting or running:
            now = time.monotonic()
            for task in [t for t in waiting if t.not_before <= now]:
                if len(running) >= self.jobs:
                    break
                waiting.remove(task)
                launch(task)
            for task in list(running):
                done = reap(task)
                if done:
                    running.remove(task)
            if waiting or running:
                time.sleep(0.005)

    @staticmethod
    def _close(task):
        try:
            task.conn.close()
        except OSError:
            pass

"""Content-addressed on-disk result cache.

Layout: ``<root>/<fp[:2]>/<fp>.json`` where ``fp`` is the run's
:meth:`~repro.core.RunSpec.fingerprint` (sha256 over the fully-resolved
spec plus the package version).  Each entry is a self-describing JSON
envelope::

    {"fingerprint": ..., "version": ..., "spec": ..., "result": ...}

Invalidation is automatic by construction: any change to any spec field,
to the machine description, or to the package version changes the
fingerprint, so stale entries are simply never looked up again.  Corrupt
or mismatched entries are treated as misses and removed.
"""

from __future__ import annotations

import json
import logging
import os
import tempfile
from pathlib import Path

from ..core import RunResult, RunSpec

logger = logging.getLogger(__name__)


class ResultCache:
    """Maps run fingerprints to serialized :class:`RunResult` entries."""

    def __init__(self, root):
        self.root = Path(root)

    def path(self, fingerprint: str) -> Path:
        return self.root / fingerprint[:2] / f"{fingerprint}.json"

    # ------------------------------------------------------------------
    def get(self, fingerprint: str):
        """The cached :class:`RunResult`, or ``None`` on a miss.

        A corrupt, unreadable, or mismatched entry is deleted and reported
        as a miss — one bad file must never poison a sweep.
        """
        path = self.path(fingerprint)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                envelope = json.load(fh)
            if not isinstance(envelope, dict):
                raise ValueError(
                    f"cache envelope is {type(envelope).__name__}, not dict"
                )
            if envelope.get("fingerprint") != fingerprint:
                raise ValueError("fingerprint mismatch")
            return RunResult.from_dict(envelope["result"])
        except FileNotFoundError:
            return None
        except (
            ValueError,  # includes json.JSONDecodeError
            KeyError,
            TypeError,
            AttributeError,
            OSError,
        ) as exc:
            logger.warning(
                "discarding corrupt cache entry %s (%s: %s)",
                path,
                type(exc).__name__,
                exc,
            )
            try:
                os.unlink(path)
            except OSError:
                pass
            return None

    def put(self, fingerprint: str, spec: RunSpec, result: RunResult):
        """Atomically store one result (write-to-temp + rename)."""
        from .. import __version__

        path = self.path(fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        envelope = {
            "fingerprint": fingerprint,
            "version": __version__,
            "spec": spec.to_dict(),
            "result": result.to_dict(),
        }
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(envelope, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    def __contains__(self, fingerprint: str) -> bool:
        return self.path(fingerprint).is_file()

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self):
        for entry in list(self.root.glob("*/*.json")):
            try:
                os.unlink(entry)
            except OSError:
                pass

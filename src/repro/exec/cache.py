"""Content-addressed on-disk result cache.

Layout: ``<root>/<fp[:2]>/<fp>.json`` where ``fp`` is the run's
:meth:`~repro.core.RunSpec.fingerprint` (sha256 over the fully-resolved
spec plus the package version).  Each entry is a self-describing JSON
envelope::

    {"fingerprint": ..., "version": ..., "spec": ..., "result": ...,
     "wall_time": ...}

``wall_time`` records how long the original *execution* took on the host;
a cache hit feeds it back into the :class:`~repro.exec.stats.RunStatsStore`
so served-from-cache runs still contribute duration history ("updated
from every completed run, including cached ones").  Entries written
before the field existed simply read back as ``wall_time=None``.

Pipeline *analysis* nodes (builders that reduce predecessor results to a
plain JSON value instead of launching a run) store under the same layout
with ``"kind": "analysis"`` and a ``value`` payload instead of
``spec``/``result``; their fingerprint is derived from the builder, its
parameters, and the predecessors' fingerprints.

Invalidation is automatic by construction: any change to any spec field,
to the machine description, or to the package version changes the
fingerprint, so stale entries are simply never looked up again.  Corrupt
or mismatched entries are treated as misses and removed.
"""

from __future__ import annotations

import json
import logging
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

from ..core import RunResult, RunSpec

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class CacheEntry:
    """One decoded cache envelope: the payload plus its metadata."""

    #: ``"result"`` (a run) or ``"analysis"`` (a pipeline reduce node).
    kind: str
    #: :class:`RunResult` for runs, the stored JSON value for analyses.
    value: object
    #: Host wall seconds of the original execution (``None`` for entries
    #: written before durations were recorded).
    wall_time: float = None


class ResultCache:
    """Maps run fingerprints to serialized :class:`RunResult` entries.

    ``hits``/``misses`` count :meth:`get_entry` lookups over this
    instance's lifetime; the sweep engine folds them into its
    ``engine_stop`` telemetry record.  They are observability counters
    only — nothing on disk depends on them.
    """

    def __init__(self, root):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def path(self, fingerprint: str) -> Path:
        return self.root / fingerprint[:2] / f"{fingerprint}.json"

    # ------------------------------------------------------------------
    def get(self, fingerprint: str):
        """The cached :class:`RunResult`, or ``None`` on a miss.

        A corrupt, unreadable, or mismatched entry is deleted and reported
        as a miss — one bad file must never poison a sweep.  Analysis
        entries are not run results and read as a miss here; use
        :meth:`get_entry` for kind-aware lookups.
        """
        entry = self.get_entry(fingerprint)
        if entry is None or entry.kind != "result":
            return None
        return entry.value

    def get_entry(self, fingerprint: str):
        """The decoded :class:`CacheEntry`, or ``None`` on a miss."""
        path = self.path(fingerprint)
        inode = None
        try:
            with open(path, "r", encoding="utf-8") as fh:
                inode = os.fstat(fh.fileno()).st_ino
                envelope = json.load(fh)
            if not isinstance(envelope, dict):
                raise ValueError(
                    f"cache envelope is {type(envelope).__name__}, not dict"
                )
            if envelope.get("fingerprint") != fingerprint:
                raise ValueError("fingerprint mismatch")
            wall_time = envelope.get("wall_time")
            kind = envelope.get("kind", "result")
            if kind == "analysis":
                self.hits += 1
                return CacheEntry(
                    kind="analysis",
                    value=envelope["value"],
                    wall_time=wall_time,
                )
            if kind != "result":
                raise ValueError(f"unknown cache entry kind {kind!r}")
            entry = CacheEntry(
                kind="result",
                value=RunResult.from_dict(envelope["result"]),
                wall_time=wall_time,
            )
            self.hits += 1
            return entry
        except FileNotFoundError:
            self.misses += 1
            return None
        except (
            ValueError,  # includes json.JSONDecodeError
            KeyError,
            TypeError,
            AttributeError,
            OSError,
        ) as exc:
            logger.warning(
                "discarding corrupt cache entry %s (%s: %s)",
                path,
                type(exc).__name__,
                exc,
            )
            # Inode-guarded unlink: another process may have atomically
            # republished a good entry since we opened the corrupt one —
            # only remove the exact file we read.
            try:
                if inode is not None and os.stat(path).st_ino == inode:
                    os.unlink(path)
            except OSError:
                pass
            self.misses += 1
            return None

    def put(self, fingerprint: str, spec: RunSpec, result: RunResult,
            *, wall_time=None):
        """Atomically store one result (write-to-temp + rename)."""
        envelope = {
            "spec": spec.to_dict(),
            "result": result.to_dict(),
        }
        self._write(fingerprint, envelope, wall_time)

    def put_value(self, fingerprint: str, meta: dict, value, *,
                  wall_time=None):
        """Atomically store one pipeline-analysis value.

        ``meta`` describes how the value was produced (builder name,
        parameters, predecessor fingerprints) — the same role the spec
        plays in a result envelope.
        """
        envelope = {
            "kind": "analysis",
            "meta": dict(meta),
            "value": value,
        }
        self._write(fingerprint, envelope, wall_time)

    def _write(self, fingerprint: str, envelope: dict, wall_time):
        from .. import __version__

        path = self.path(fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        envelope = dict(envelope)
        envelope["fingerprint"] = fingerprint
        envelope["version"] = __version__
        if wall_time is not None:
            envelope["wall_time"] = float(wall_time)
        # The ".part" suffix keeps in-progress writes out of every
        # "*/*.json" glob (``__len__``, ``clear``), and the fsync before
        # the atomic replace means a published entry is never half a
        # file — concurrent writer processes racing on one fingerprint
        # each publish a complete envelope and last-replace wins.
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".part"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(envelope, fh)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    def __contains__(self, fingerprint: str) -> bool:
        return self.path(fingerprint).is_file()

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self):
        # ".tmp-*.part" files are abandoned in-progress writes (a writer
        # that died between mkstemp and replace); sweep them too.
        for pattern in ("*/*.json", "*/.tmp-*.part"):
            for entry in list(self.root.glob(pattern)):
                try:
                    os.unlink(entry)
                except OSError:
                    pass

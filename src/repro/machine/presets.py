"""Machine presets used across examples, tests, and benchmarks."""

from __future__ import annotations

from dataclasses import dataclass, field

from .costmodel import CostSpec
from .network import NetworkSpec
from .topology import Machine, NodeSpec


@dataclass(frozen=True)
class MachineSpec:
    """Bundle of node hardware, network, and cost-model parameters."""

    node: NodeSpec = field(default_factory=NodeSpec)
    network: NetworkSpec = field(default_factory=NetworkSpec)
    cost: CostSpec = field(default_factory=CostSpec)
    name: str = "custom"

    def machine(self, num_nodes: int, ranks_per_node: int) -> Machine:
        """Instantiate a concrete cluster with a rank placement."""
        return Machine(
            node=self.node,
            num_nodes=num_nodes,
            ranks_per_node=ranks_per_node,
        )


def marenostrum4() -> MachineSpec:
    """A MareNostrum4-like machine: 2×24-core Xeon 8160 nodes @ 2.10 GHz.

    Used for the rank-configuration study (Table I), the communication-task
    sweep (Table II), and the trace analyses (Figs 1–3).
    """
    return MachineSpec(
        node=NodeSpec(
            cores_per_node=48,
            sockets_per_node=2,
            core_ghz=2.10,
            memory_gib=96.0,
        ),
        network=NetworkSpec(),
        cost=CostSpec(),
        name="marenostrum4",
    )


def marenostrum4_scaled(cores_per_node: int = 8) -> MachineSpec:
    """A reduced-core rendition of MareNostrum4 for the scaling sweeps.

    Simulating 256 × 48-core nodes event-by-event is impractical in pure
    Python, so the weak/strong-scaling figures run on nodes with fewer cores
    (default 8, two NUMA domains).  All ratios that set the scaling *shape*
    (compute per rank vs message cost, serial fractions, NUMA penalty) are
    preserved; EXPERIMENTS.md records the scaling factor.
    """
    if cores_per_node % 2:
        raise ValueError("scaled preset needs an even core count (2 sockets)")
    return MachineSpec(
        node=NodeSpec(
            cores_per_node=cores_per_node,
            sockets_per_node=2,
            core_ghz=2.10,
            memory_gib=96.0,
        ),
        network=NetworkSpec(),
        cost=CostSpec(),
        name=f"marenostrum4_scaled_{cores_per_node}c",
    )


def laptop() -> MachineSpec:
    """A tiny 4-core single-socket machine for quick functional tests."""
    return MachineSpec(
        node=NodeSpec(
            cores_per_node=4,
            sockets_per_node=1,
            core_ghz=3.0,
            memory_gib=16.0,
        ),
        network=NetworkSpec(),
        cost=CostSpec(),
        name="laptop",
    )


#: Name → factory registry used wherever a machine is selected by name
#: (CLI ``--preset``, serialized :class:`~repro.core.RunSpec`s).
PRESETS = {
    "laptop": laptop,
    "marenostrum4": marenostrum4,
    "marenostrum4_scaled": marenostrum4_scaled,
}


def get_preset(name: str):
    """The preset factory registered under ``name``."""
    try:
        return PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown machine preset {name!r}; choose from {sorted(PRESETS)}"
        ) from None

"""``repro.machine`` — cluster topology, network, and compute cost models.

This package substitutes for the paper's MareNostrum4 testbed: a parametric
machine description whose ratios (compute vs copy vs message cost, NUMA
penalty, locality IPC boost, runtime overheads) reproduce the performance
effects the paper analyzes.
"""

from .costmodel import STENCIL_FLOPS_PER_CELL, VAR_BYTES, CostSpec
from .network import NetworkSpec
from .presets import (
    PRESETS,
    MachineSpec,
    get_preset,
    laptop,
    marenostrum4,
    marenostrum4_scaled,
)
from .topology import CoreId, Machine, NodeSpec, RankPlacement

__all__ = [
    "CoreId",
    "CostSpec",
    "Machine",
    "MachineSpec",
    "NetworkSpec",
    "NodeSpec",
    "PRESETS",
    "RankPlacement",
    "STENCIL_FLOPS_PER_CELL",
    "VAR_BYTES",
    "get_preset",
    "laptop",
    "marenostrum4",
    "marenostrum4_scaled",
]

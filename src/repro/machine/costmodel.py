"""Compute-side cost model.

Charges simulated CPU time for the work the mini-app performs: stencil
sweeps, face pack/unpack copies, intra-process ghost copies, checksum
reductions, block split/consolidate copies, refinement control work, and
runtime overheads (task spawn/dispatch, fork-join regions).

The absolute numbers are calibrated to a MareNostrum4-like node; what the
reproduction relies on are the *ratios* (compute vs copy vs message costs,
NUMA and locality factors), which set the shape of every experiment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

#: Bytes per grid variable (double precision).
VAR_BYTES = 8

#: Floating-point operations per cell per variable for the 7-point stencil
#: (six additions plus one multiply-by-1/7).
STENCIL_FLOPS_PER_CELL = 7.0


@dataclass(frozen=True)
class CostSpec:
    """Tunable parameters of the compute cost model."""

    #: Effective stencil throughput of one core in FLOP/s (memory bound,
    #: far below peak; Xeon 8160 cores sustain a few GFLOP/s on stencils).
    stencil_flops_per_sec: float = 2.0e9
    #: Effective single-core copy bandwidth for pack/unpack/ghost copies.
    copy_bandwidth: float = 1.0e10
    #: Effective single-core reduction bandwidth for checksums.
    reduce_bandwidth: float = 7.0e9
    #: Multiplicative IPC boost when a task runs right after a task that
    #: touched the same block on the same core (immediate-successor reuse;
    #: the paper credits this for a significant IPC increase).
    locality_ipc_boost: float = 1.60
    #: Compute slowdown when a rank's threads span NUMA domains.
    numa_penalty: float = 1.45
    #: Runtime cost, charged to the creating thread, of instantiating one
    #: task (dependency registration).
    task_spawn_overhead: float = 3.0e-7
    #: Runtime cost, charged to the executing core, of dispatching a task.
    task_dispatch_overhead: float = 6.0e-7
    #: Cost of opening/closing one fork-join parallel region (per thread
    #: barrier round); multiplied by log2(nthreads).
    forkjoin_region_overhead: float = 2.2e-6
    #: Serial control work per block during a refinement stage (marking,
    #: connectivity updates) — the poorly-parallelizable part.
    refine_control_per_block: float = 2.8e-6
    #: Control work per refine/coarsen structural change (octree surgery).
    refine_change_overhead: float = 9.0e-6
    #: Fraction of refinement control work that the taskified version
    #: removes from the critical path (the paper reports ~80%).
    taskified_refine_factor: float = 0.2
    #: System-noise amplitude: each CPU charge is stretched by up to this
    #: fraction (uniform, deterministic per rank).  Bulk-synchronous codes
    #: amplify noise with scale; task pools absorb it (the paper observes
    #: noise-induced gaps in its own traces, Section V-B).
    noise_amplitude: float = 0.05
    #: Expected OS-noise spikes (daemon preemptions) per CPU-second of
    #: work — rate-normalized so every variant receives the same expected
    #: noise per unit of work regardless of task granularity.
    noise_spike_rate: float = 25.0
    #: Duration of one noise spike.
    noise_spike_time: float = 1.5e-4

    # ------------------------------------------------------------------
    # Stencil
    # ------------------------------------------------------------------
    def stencil_flops(
        self, cells: int, nvars: int, flops_per_cell=STENCIL_FLOPS_PER_CELL
    ) -> float:
        """Total FLOPs of one stencil application on ``cells`` × ``nvars``.

        ``flops_per_cell`` follows the stencil width: 7 for the 7-point
        average, 27 for the 27-point one.
        """
        return cells * nvars * flops_per_cell

    def stencil_time(
        self, cells: int, nvars: int, *, locality: bool = False,
        numa: bool = False, flops_per_cell=STENCIL_FLOPS_PER_CELL,
    ) -> float:
        """Time of one stencil task over a block's interior."""
        rate = self.stencil_flops_per_sec
        if locality:
            rate *= self.locality_ipc_boost
        if numa:
            rate /= self.numa_penalty
        return self.stencil_flops(cells, nvars, flops_per_cell) / rate

    # ------------------------------------------------------------------
    # Copies
    # ------------------------------------------------------------------
    def copy_time(self, nbytes: int, *, numa: bool = False) -> float:
        """Time to copy ``nbytes`` (pack/unpack/ghost/split/consolidate)."""
        bw = self.copy_bandwidth
        if numa:
            bw /= self.numa_penalty
        return nbytes / bw

    def checksum_time(self, nbytes: int, *, numa: bool = False) -> float:
        """Time of a local checksum reduction over ``nbytes``."""
        bw = self.reduce_bandwidth
        if numa:
            bw /= self.numa_penalty
        return nbytes / bw

    # ------------------------------------------------------------------
    # Runtime overheads
    # ------------------------------------------------------------------
    def forkjoin_overhead(self, nthreads: int) -> float:
        """Cost of one parallel region open+close with ``nthreads``."""
        if nthreads <= 1:
            return 0.0
        return self.forkjoin_region_overhead * math.ceil(math.log2(nthreads))

    # ------------------------------------------------------------------
    def with_overrides(self, **kwargs) -> "CostSpec":
        """Return a copy with selected parameters replaced (ablations)."""
        return replace(self, **kwargs)


_LCG_MULT = 6364136223846793005
_LCG_INC = 1442695040888963407
_LCG_MASK = (1 << 64) - 1


class NoiseModel:
    """Deterministic per-rank system-noise generator.

    Stretches CPU charges by a bounded uniform factor and injects rare
    OS-noise spikes, using a per-rank LCG so runs are exactly repeatable.
    The spike probability is proportional to the charged time, making the
    expected noise per CPU-second identical across variants — what differs
    is how each programming model *amplifies* it.
    """

    __slots__ = ("spec", "_state", "_amp", "_spike_rate", "_spike_time")

    def __init__(self, spec: CostSpec, rank: int):
        self.spec = spec
        self._state = (rank * 2654435761 + 0x9E3779B97F4A7C15) & _LCG_MASK
        # Scalars copied out of the (frozen) spec: stretch() runs once per
        # CPU charge, i.e. at least once per task.
        self._amp = spec.noise_amplitude
        self._spike_rate = spec.noise_spike_rate
        self._spike_time = spec.noise_spike_time

    def _uniform(self) -> float:
        self._state = (self._state * _LCG_MULT + _LCG_INC) & _LCG_MASK
        return self._state / 2.0**64

    def stretch(self, seconds: float) -> float:
        """Return ``seconds`` with this rank's next noise sample applied.

        Inlines the LCG draws of :meth:`_uniform` (identical state
        updates, so the per-rank noise stream is unchanged).
        """
        if seconds <= 0:
            return seconds
        extra = 0.0
        state = self._state
        if self._amp > 0:
            state = (state * _LCG_MULT + _LCG_INC) & _LCG_MASK
            extra += seconds * self._amp * (state / 2.0**64)
        if self._spike_rate > 0:
            p = seconds * self._spike_rate
            if p > 1.0:
                p = 1.0
            state = (state * _LCG_MULT + _LCG_INC) & _LCG_MASK
            if state / 2.0**64 < p:
                extra += self._spike_time
        self._state = state
        return seconds + extra

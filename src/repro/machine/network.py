"""Interconnect performance model.

A simple but expressive LogGP-flavoured model:

* point-to-point transit time  =  latency + size / bandwidth, with distinct
  (latency, bandwidth) pairs for intra-node (shared memory) and inter-node
  (fabric) paths;
* per-message *CPU* overheads on the sender and receiver sides (posting,
  matching, completion) — these are what make "one message per face"
  configurations expensive (paper Table II, column *all*);
* collectives cost a tree-depth multiple of the point-to-point cost and act
  as a synchronization across all participants.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class NetworkSpec:
    """Parameters of the interconnect model (times in seconds, bytes/s)."""

    #: One-way latency between different nodes (fabric).
    latency_inter: float = 1.6e-6
    #: One-way latency inside a node (shared-memory transport).
    latency_intra: float = 4.0e-7
    #: Fabric bandwidth per message stream (bytes/s).
    bandwidth_inter: float = 11.0e9
    #: Shared-memory copy bandwidth for intra-node messages (bytes/s).
    bandwidth_intra: float = 35.0e9
    #: Sender-side CPU time to post one message.
    send_overhead: float = 6.0e-7
    #: Receiver-side CPU time to match/complete one message.
    recv_overhead: float = 6.0e-7
    #: Extra per-byte CPU cost at each side (pinning, copies).
    byte_overhead: float = 1.0e-11
    #: Base latency of a collective "round" (per tree level).
    collective_round: float = 2.5e-6
    #: Extra one-way inter-node latency per log2(nodes) level — models
    #: fat-tree hop count and congestion growing with machine size.
    hop_latency: float = 8.0e-7
    #: Fixed per-message injection gap at the sender (message-rate limit).
    injection_gap: float = 2.5e-7
    #: Cost per posted/unexpected queue entry scanned during MPI matching —
    #: long match queues are the classic penalty of one-message-per-face
    #: communication patterns.
    match_scan_cost: float = 6.0e-8

    def injection_time(self, nbytes: int, same_node: bool) -> float:
        """Time a message occupies the sender's injection port."""
        bw = self.bandwidth_intra if same_node else self.bandwidth_inter
        return self.injection_gap + nbytes / bw

    def __post_init__(self):
        for name in (
            "latency_inter",
            "latency_intra",
            "bandwidth_inter",
            "bandwidth_intra",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    # ------------------------------------------------------------------
    def scaled_to(self, num_nodes: int) -> "NetworkSpec":
        """Network as seen by a ``num_nodes`` job (hop/congestion term).

        Effective inter-node latency grows by :attr:`hop_latency` per
        fat-tree level; intra-node paths are unaffected.
        """
        import dataclasses

        if num_nodes <= 1:
            return self
        extra = self.hop_latency * math.log2(num_nodes)
        return dataclasses.replace(
            self, latency_inter=self.latency_inter + extra
        )

    def transit_time(self, nbytes: int, same_node: bool) -> float:
        """Wire time for a message of ``nbytes`` (excludes CPU overheads)."""
        if nbytes < 0:
            raise ValueError("message size must be >= 0")
        if same_node:
            return self.latency_intra + nbytes / self.bandwidth_intra
        return self.latency_inter + nbytes / self.bandwidth_inter

    def send_cpu_time(self, nbytes: int) -> float:
        """CPU time charged to the sender for posting a message."""
        return self.send_overhead + nbytes * self.byte_overhead

    def recv_cpu_time(self, nbytes: int) -> float:
        """CPU time charged to the receiver for matching a message."""
        return self.recv_overhead + nbytes * self.byte_overhead

    def collective_time(self, nbytes: int, nranks: int) -> float:
        """Time of a tree-based collective over ``nranks`` participants.

        Models allreduce/bcast/barrier-style collectives as
        ``ceil(log2(P))`` rounds of (round latency + payload transfer).
        """
        if nranks <= 0:
            raise ValueError("nranks must be positive")
        if nranks == 1:
            return self.collective_round
        rounds = math.ceil(math.log2(nranks))
        per_round = self.collective_round + nbytes / self.bandwidth_inter
        return rounds * per_round

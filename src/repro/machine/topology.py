"""Cluster topology: nodes, sockets (NUMA domains), cores, rank placement.

Models a MareNostrum4-like machine: ``num_nodes`` identical nodes, each with
``sockets_per_node`` NUMA domains and ``cores_per_node`` cores in total.
MPI ranks are placed consecutively, filling adjacent cores, matching the
paper's "consecutive ranks and threads of the same rank in adjacent cores at
the same NUMA domain" policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class NodeSpec:
    """Hardware description of one compute node."""

    #: Total cores per node (MareNostrum4: 48).
    cores_per_node: int = 48
    #: NUMA domains (sockets) per node (MareNostrum4: 2).
    sockets_per_node: int = 2
    #: Core clock in GHz (Xeon Platinum 8160: 2.10).
    core_ghz: float = 2.10
    #: Main memory per node in GiB (for feasibility checks only).
    memory_gib: float = 96.0

    def __post_init__(self):
        if self.cores_per_node <= 0:
            raise ValueError("cores_per_node must be positive")
        if self.sockets_per_node <= 0:
            raise ValueError("sockets_per_node must be positive")
        if self.cores_per_node % self.sockets_per_node:
            raise ValueError(
                "cores_per_node must be divisible by sockets_per_node"
            )

    @property
    def cores_per_socket(self) -> int:
        return self.cores_per_node // self.sockets_per_node


@dataclass(frozen=True)
class CoreId:
    """Globally unique identifier of a core: (node, index within node)."""

    node: int
    local: int

    @property
    def key(self):
        return (self.node, self.local)


@dataclass
class RankPlacement:
    """Placement of one MPI rank: its node and the cores it owns."""

    rank: int
    node: int
    cores: tuple  # tuple[CoreId, ...]
    socket_span: int  # how many NUMA domains the rank's cores cross

    @property
    def num_cores(self) -> int:
        return len(self.cores)

    @property
    def spans_numa(self) -> bool:
        """True when the rank's threads straddle more than one NUMA domain."""
        return self.socket_span > 1


@dataclass
class Machine:
    """A cluster of identical nodes with a deterministic rank placement.

    Parameters
    ----------
    node:
        Per-node hardware description.
    num_nodes:
        Number of compute nodes.
    ranks_per_node:
        MPI ranks placed on each node.  Cores are divided evenly; ranks are
        laid out consecutively so a rank's cores are adjacent.
    """

    node: NodeSpec
    num_nodes: int
    ranks_per_node: int
    placements: list = field(init=False)

    def __post_init__(self):
        if self.num_nodes <= 0:
            raise ValueError("num_nodes must be positive")
        if self.ranks_per_node <= 0:
            raise ValueError("ranks_per_node must be positive")
        if self.node.cores_per_node % self.ranks_per_node:
            raise ValueError(
                f"{self.node.cores_per_node} cores/node not divisible by "
                f"{self.ranks_per_node} ranks/node"
            )
        self.placements = self._place()

    # ------------------------------------------------------------------
    @property
    def num_ranks(self) -> int:
        return self.num_nodes * self.ranks_per_node

    @property
    def cores_per_rank(self) -> int:
        return self.node.cores_per_node // self.ranks_per_node

    @property
    def total_cores(self) -> int:
        return self.num_nodes * self.node.cores_per_node

    def _place(self):
        placements = []
        cps = self.node.cores_per_socket
        for rank in range(self.num_ranks):
            node = rank // self.ranks_per_node
            local0 = (rank % self.ranks_per_node) * self.cores_per_rank
            cores = tuple(
                CoreId(node, local0 + i) for i in range(self.cores_per_rank)
            )
            first_socket = local0 // cps
            last_socket = (local0 + self.cores_per_rank - 1) // cps
            placements.append(
                RankPlacement(
                    rank=rank,
                    node=node,
                    cores=cores,
                    socket_span=last_socket - first_socket + 1,
                )
            )
        return placements

    # ------------------------------------------------------------------
    def placement(self, rank: int) -> RankPlacement:
        return self.placements[rank]

    def node_of(self, rank: int) -> int:
        return self.placements[rank].node

    def same_node(self, rank_a: int, rank_b: int) -> bool:
        """Whether two ranks share a node (intra-node communication)."""
        return self.node_of(rank_a) == self.node_of(rank_b)

    def ranks_on_node(self, node: int):
        lo = node * self.ranks_per_node
        return range(lo, lo + self.ranks_per_node)

"""repro — data-flow parallelization for AMR applications, reproduced.

A from-scratch Python reproduction of *"Towards Data-Flow Parallelization
for Adaptive Mesh Refinement Applications"* (Sala, Rico, Beltran — IEEE
CLUSTER 2020): the miniAMR proxy application, an OmpSs-2-like tasking
runtime, a simulated MPI library, the Task-Aware MPI (TAMPI) layer, and a
deterministic discrete-event cluster simulator to run them on.

Quickstart::

    from repro import AmrConfig, RunSpec, run_simulation, sphere

    cfg = AmrConfig(
        npx=2, npy=2, npz=1, nx=8, ny=8, nz=8, num_vars=8,
        num_tsteps=4, stages_per_ts=4,
        objects=(sphere(center=(0.4, 0.4, 0.4), radius=0.2),),
    )
    spec = RunSpec(
        config=cfg, machine="marenostrum4", variant="tampi_dataflow",
        num_nodes=1, ranks_per_node=4,
    )
    result = run_simulation(spec)
    print(result.total_time, result.gflops)
"""

from . import amr, core, faults, machine, mpi, simx, tampi, tasking, trace
from .amr import AmrConfig, ObjectSpec, Shape, sphere
from .core import CommStats, RunResult, RunSpec, RuntimeStats, run_simulation
from .faults import FaultPlan, FaultStats, noise_plan, straggler_plan
from .machine import (
    PRESETS,
    CostSpec,
    MachineSpec,
    NetworkSpec,
    NodeSpec,
    get_preset,
    laptop,
    marenostrum4,
    marenostrum4_scaled,
)

__version__ = "1.0.0"

from . import exec as exec_  # noqa: E402  (needs __version__ for fingerprints)
from . import tune, verify  # noqa: E402
from .exec import ResultCache, Sweep, SweepEngine, SweepReport
from .tune import TuneReport, TuneSpec, run_tune
from .verify import AccessRaceError, AccessWitness, GoldenStore, fuzz_sweep

__all__ = [
    "AccessRaceError",
    "AccessWitness",
    "AmrConfig",
    "CommStats",
    "CostSpec",
    "FaultPlan",
    "FaultStats",
    "GoldenStore",
    "MachineSpec",
    "NetworkSpec",
    "NodeSpec",
    "ObjectSpec",
    "PRESETS",
    "ResultCache",
    "RunResult",
    "RunSpec",
    "RuntimeStats",
    "Shape",
    "Sweep",
    "SweepEngine",
    "SweepReport",
    "TuneReport",
    "TuneSpec",
    "amr",
    "core",
    "faults",
    "fuzz_sweep",
    "noise_plan",
    "straggler_plan",
    "get_preset",
    "laptop",
    "machine",
    "marenostrum4",
    "marenostrum4_scaled",
    "mpi",
    "run_simulation",
    "run_tune",
    "simx",
    "sphere",
    "tampi",
    "tasking",
    "trace",
    "tune",
    "verify",
    "__version__",
]

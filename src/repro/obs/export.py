"""Exporters for profiled runs: Chrome trace JSON, metrics dumps, and
ASCII summaries.

* :func:`chrome_trace_events` / :func:`write_chrome_trace` — the
  trace-event JSON format that Perfetto / ``chrome://tracing`` load
  (``ph: "X"`` complete events, microsecond timestamps, one process per
  rank, one thread per core) — our stand-in for the paper's Paraver
  timelines (Figs 1–3).
* :func:`metrics_json` / :func:`metrics_csv` — the registry dump.
* :func:`ascii_summary` — a terminal-friendly top-N view of one
  :class:`~repro.obs.report.ProfileReport`.
* :func:`compare_reports` — two reports side by side: phase times,
  overlap fraction, critical-path composition, idle-gap taxonomy.
"""

from __future__ import annotations

import json

from .attribution import BLOCKERS, COMM_BLOCKED


def _us(seconds: float) -> float:
    return seconds * 1e6


def chrome_trace_events(profiler, variant="") -> list:
    """The run as a list of Chrome trace-event dicts.

    Tasks become ``X`` (complete) events with ``pid`` = rank and ``tid`` =
    core + 1; MPI calls and inline main-thread work go on ``tid`` 0.
    Metadata events name the processes and threads.
    """
    events = []
    ranks = set(profiler.ranks())
    ranks.update(profiler.inline)
    cores_seen = {}
    for rec in profiler.executed_tasks():
        events.append({
            "name": rec.label,
            "cat": "task",
            "ph": "X",
            "ts": _us(rec.t_start),
            "dur": _us(rec.exec_time),
            "pid": rec.rank,
            "tid": rec.core + 1,
            "args": {"phase": rec.phase, "tid": rec.tid},
        })
        if rec.release_pending > 0:
            events.append({
                "name": f"{rec.label}:release",
                "cat": "tampi",
                "ph": "X",
                "ts": _us(rec.t_end),
                "dur": _us(rec.release_pending),
                "pid": rec.rank,
                "tid": rec.core + 1,
                "args": {"phase": rec.phase},
            })
        cores_seen.setdefault(rec.rank, set()).add(rec.core)
    for call in profiler.mpi_calls:
        events.append({
            "name": call.name,
            "cat": "mpi",
            "ph": "X",
            "ts": _us(call.t0),
            "dur": _us(call.duration),
            "pid": call.rank,
            "tid": 0,
            "args": {},
        })
    for rank, spans in profiler.inline.items():
        for t0, t1 in spans:
            events.append({
                "name": "inline",
                "cat": "app",
                "ph": "X",
                "ts": _us(t0),
                "dur": _us(t1 - t0),
                "pid": rank,
                "tid": 0,
                "args": {},
            })

    meta = []
    prefix = f"{variant} " if variant else ""
    for rank in sorted(ranks):
        meta.append({
            "name": "process_name", "ph": "M", "pid": rank, "tid": 0,
            "args": {"name": f"{prefix}rank {rank}"},
        })
        meta.append({
            "name": "thread_name", "ph": "M", "pid": rank, "tid": 0,
            "args": {"name": "main (MPI)"},
        })
        for core in sorted(cores_seen.get(rank, ())):
            meta.append({
                "name": "thread_name", "ph": "M", "pid": rank,
                "tid": core + 1, "args": {"name": f"core {core}"},
            })
    return meta + events


def write_chrome_trace(profiler, path, variant="") -> int:
    """Write Perfetto-loadable trace JSON; returns the event count."""
    events = chrome_trace_events(profiler, variant=variant)
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    with open(path, "w") as fh:
        json.dump(payload, fh)
    return len(events)


# ----------------------------------------------------------------------
# Metrics dumps
# ----------------------------------------------------------------------
def metrics_json(report) -> str:
    """A report's metrics dump as pretty JSON text."""
    return json.dumps(report.metrics, indent=2, sort_keys=True)


def metrics_csv(report) -> str:
    """A report's metrics dump as CSV text."""
    return report.metrics_registry().to_csv()


# ----------------------------------------------------------------------
# ASCII rendering
# ----------------------------------------------------------------------
def _bar(fraction, width=24) -> str:
    filled = int(round(max(0.0, min(1.0, fraction)) * width))
    return "#" * filled + "." * (width - filled)


def _fmt_seconds(value) -> str:
    return f"{value:10.4f} s"


def ascii_summary(report, top=8) -> str:
    """One report as a terminal summary (top-N phases, idle, CP)."""
    lines = [
        f"== profile: {report.variant} "
        f"({report.num_nodes} nodes x {report.ranks_per_node} ranks, "
        f"{report.cores_per_rank} task cores/rank) ==",
        f"makespan        {_fmt_seconds(report.makespan)}",
        f"executed tasks  {report.tasks:10d}",
        f"p2p messages    {report.messages:10d}",
        f"busy fraction   {report.busy_fraction:10.3f}  "
        f"[{_bar(report.busy_fraction)}]",
        f"overlap (stencil x comm) {report.overlap_fraction:6.3f}",
        f"comm-blocked idle        {report.comm_blocked_fraction:6.3f}",
    ]

    task_time = report.phase_summary.task_time_by_phase
    if task_time:
        lines.append("-- task time by phase (top %d) --" % top)
        total = sum(task_time.values()) or 1.0
        ranked = sorted(task_time.items(), key=lambda kv: -kv[1])[:top]
        for phase, t in ranked:
            lines.append(
                f"  {phase:<18}{_fmt_seconds(t)}  [{_bar(t / total)}]"
            )

    mpi_time = report.phase_summary.mpi_time_by_call
    if mpi_time:
        lines.append("-- MPI time by call (top %d) --" % top)
        total = sum(mpi_time.values()) or 1.0
        ranked = sorted(mpi_time.items(), key=lambda kv: -kv[1])[:top]
        for name, t in ranked:
            lines.append(
                f"  {name:<18}{_fmt_seconds(t)}  [{_bar(t / total)}]"
            )

    cp = report.critical_path
    if cp.get("tasks"):
        lines.append(
            f"-- critical path: {cp['length']:.4f} s over "
            f"{cp['tasks']} tasks --"
        )
        length = cp["length"] or 1.0
        for phase, t in sorted(
            cp.get("composition", {}).items(), key=lambda kv: -kv[1]
        )[:top]:
            lines.append(
                f"  {phase:<18}{_fmt_seconds(t)}  [{_bar(t / length)}]"
            )

    idle = report.idle
    if idle.get("by_blocker"):
        lines.append(
            f"-- idle gaps: {idle['idle_seconds']:.4f} core-s in "
            f"{idle['gap_count']} gaps (max {idle['max_gap']:.4f} s) --"
        )
        core_seconds = idle.get("core_seconds") or 1.0
        for blocker in BLOCKERS:
            t = idle["by_blocker"].get(blocker)
            if t is None:
                continue
            tag = "*" if blocker in COMM_BLOCKED else " "
            lines.append(
                f" {tag}{blocker:<18}{_fmt_seconds(t)}  "
                f"[{_bar(t / core_seconds)}]"
            )
        lines.append("  (* counted as comm-blocked)")

    if report.faults:
        injected = report.faults.get("injected", {})
        observed = report.faults.get("observed", {})
        lines.append("-- injected faults (vs observed idle) --")
        lines.append(
            f"  injected CPU      {injected.get('injected_cpu_seconds', 0.0):.6f} s "
            f"({injected.get('cpu_noise_events', 0)} events, "
            f"{injected.get('cpu_bursts', 0)} bursts)"
        )
        lines.append(
            f"  injected network  "
            f"{injected.get('injected_network_seconds', 0.0):.6f} s "
            f"({injected.get('messages_delayed', 0)} delayed, "
            f"{injected.get('messages_lost', 0)} lost)"
        )
        lines.append(
            f"  observed idle     "
            f"fault_noise {observed.get('fault_noise', 0.0):.6f} s, "
            f"fault_retry {observed.get('fault_retry', 0.0):.6f} s"
        )
    return "\n".join(lines) + "\n"


def pipeline_summary(report) -> str:
    """Per-node scheduling table for a pipeline run.

    Takes a :class:`~repro.pipeline.PipelineReport` and renders, per
    node, when it became ready vs when it ran: ``wait`` is time spent
    ready-but-not-started (queueing behind workers or backoff), ``exec``
    the successful attempt alone, ``wall`` the attempt including retries.
    Cached and analysis nodes show ``-`` where no execution happened.
    """
    def cell(value, fmt="{:.4f}"):
        return fmt.format(value) if value is not None else "-"

    name_w = max((len(o.name or o.label) for o in report.sweep.outcomes),
                 default=4)
    name_w = max(name_w, 4)
    lines = [
        f"== pipeline: {report.pipeline.name} ==",
        f"  {'node':<{name_w}}  {'status':<7}  {'wait(s)':>9}  "
        f"{'exec(s)':>9}  {'wall(s)':>9}  {'att':>3}",
    ]
    for out in report.sweep.outcomes:
        lines.append(
            f"  {(out.name or out.label):<{name_w}}  {out.status:<7}  "
            f"{cell(out.wait_time):>9}  "
            f"{cell(out.exec_time):>9}  "
            f"{cell(out.wall_time):>9}  {out.attempts:>3}"
        )
    lines.append(f"  {report.sweep.summary()}")
    return "\n".join(lines) + "\n"


def compare_reports(a, b, top=6) -> str:
    """Two reports side by side — the Fig 2 vs Fig 3 contrast in text.

    Sectioned keys (phases, MPI calls, idle blockers, critical-path
    composition) are compared over the *union* of both reports' keys;
    a key one side never recorded renders as ``n/a``, not a fabricated
    zero — variants with disjoint phase sets compare cleanly.
    """
    wa = max(len(a.variant), 14)
    wb = max(len(b.variant), 14)

    def row(label, va, vb):
        return f"  {label:<26}{va:>{wa}}  {vb:>{wb}}"

    def frow(label, va, vb, fmt="{:.4f}"):
        return row(label, fmt.format(va), fmt.format(vb))

    def drow(label, da, db, key, fmt="{:.4f}"):
        """A row over two dicts: a side missing ``key`` shows n/a."""
        return row(
            label,
            fmt.format(da[key]) if key in da else "n/a",
            fmt.format(db[key]) if key in db else "n/a",
        )

    lines = [
        "== variant comparison ==",
        row("", a.variant, b.variant),
        frow("makespan (s)", a.makespan, b.makespan),
        frow("busy fraction", a.busy_fraction, b.busy_fraction),
        frow("overlap fraction", a.overlap_fraction, b.overlap_fraction),
        frow(
            "comm-blocked idle",
            a.comm_blocked_fraction,
            b.comm_blocked_fraction,
        ),
        frow(
            "critical path (s)",
            a.critical_path_length,
            b.critical_path_length,
        ),
        row("executed tasks", str(a.tasks), str(b.tasks)),
    ]

    phases = sorted(
        set(a.phase_summary.phase_times) | set(b.phase_summary.phase_times)
    )
    if phases:
        lines.append("-- phase wall time (rank 0, s) --")
        for phase in phases:
            lines.append(drow(
                phase,
                a.phase_summary.phase_times,
                b.phase_summary.phase_times,
                phase,
            ))

    calls = set(a.phase_summary.mpi_time_by_call)
    calls |= set(b.phase_summary.mpi_time_by_call)
    if calls:
        lines.append("-- MPI time by call (top %d, s) --" % top)
        ranked = sorted(
            calls,
            key=lambda c: -(
                a.phase_summary.mpi_time_by_call.get(c, 0.0)
                + b.phase_summary.mpi_time_by_call.get(c, 0.0)
            ),
        )[:top]
        for call in ranked:
            lines.append(drow(
                call,
                a.phase_summary.mpi_time_by_call,
                b.phase_summary.mpi_time_by_call,
                call,
            ))

    lines.append("-- idle by blocker (core-s) --")
    blockers = [
        name for name in BLOCKERS
        if name in a.idle.get("by_blocker", {})
        or name in b.idle.get("by_blocker", {})
    ]
    for blocker in blockers:
        lines.append(drow(
            blocker,
            a.idle.get("by_blocker", {}),
            b.idle.get("by_blocker", {}),
            blocker,
        ))

    cps = sorted(
        set(a.critical_path.get("composition", {}))
        | set(b.critical_path.get("composition", {}))
    )
    if cps:
        lines.append("-- critical-path composition (s) --")
        for phase in cps:
            lines.append(drow(
                phase,
                a.critical_path.get("composition", {}),
                b.critical_path.get("composition", {}),
                phase,
            ))
    return "\n".join(lines) + "\n"

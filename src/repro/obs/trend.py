"""Perf-trend analytics over the committed ``BENCH_*.json`` history.

``benchmarks/`` records one JSON document per benchmark in
``benchmarks/results/BENCH_<name>.json`` and commits it, so git holds
the metric history.  This module diffs the working-tree documents
against a baseline — the committed ``HEAD`` version by default, or any
directory of the same files — into a per-metric delta table and flags
regressions.

Metric direction is inferred from the flattened key path (the same
heuristic a human applies reading the file): names containing
``seconds``/``overhead``/``wall``/``stall`` are *lower-is-better*;
``per_sec``/``speedup``/``gflops``/``throughput`` are
*higher-is-better*; anything else is reported but never flagged.
"""

from __future__ import annotations

import json
import subprocess
from pathlib import Path

#: Key-path substrings marking a metric where smaller is better.
LOWER_BETTER = (
    "seconds", "overhead", "wall", "stall", "time", "imbalance",
)

#: Key-path substrings marking a metric where larger is better.
HIGHER_BETTER = (
    "per_sec", "speedup", "gflops", "throughput", "efficiency",
    "events_per", "hit_rate",
)

#: Key-path substrings that are configuration, not measurements.
IGNORED = (
    "quick", "host_cores", "attempts", "pairs", "block", "tsteps",
    "ranks", "met", "requires", "min_speedup", "at_nodes", "budget",
    "version", "nodes",
)

#: Relative change below which a delta is noise, not a trend.
DEFAULT_THRESHOLD = 0.10


def metric_direction(path: str):
    """``"lower"``, ``"higher"``, or ``None`` (don't flag) for a key path."""
    lowered = path.lower()
    for frag in IGNORED:
        if frag in lowered:
            return None
    for frag in HIGHER_BETTER:   # checked first: "events_per_sec" etc.
        if frag in lowered:
            return "higher"
    for frag in LOWER_BETTER:
        if frag in lowered:
            return "lower"
    return None


def flatten_metrics(doc, prefix="") -> dict:
    """Numeric leaves of a benchmark document as ``{dotted.path: value}``."""
    flat = {}
    if isinstance(doc, dict):
        for key in sorted(doc):
            flat.update(flatten_metrics(doc[key], f"{prefix}{key}."))
    elif isinstance(doc, bool):
        pass  # bool is an int subclass; never a metric
    elif isinstance(doc, (int, float)):
        flat[prefix[:-1]] = float(doc)
    return flat


def load_committed(path, rev="HEAD"):
    """The committed version of ``path`` (repo-relative ok), or ``None``."""
    path = Path(path)
    try:
        root = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            cwd=path.parent if path.parent.is_dir() else ".",
            capture_output=True, text=True, check=True,
        ).stdout.strip()
        rel = path.resolve().relative_to(Path(root))
        out = subprocess.run(
            ["git", "show", f"{rev}:{rel.as_posix()}"],
            cwd=root, capture_output=True, text=True, check=True,
        ).stdout
        return json.loads(out)
    except (subprocess.CalledProcessError, OSError, ValueError,
            FileNotFoundError):
        return None


def bench_files(results_dir) -> list:
    return sorted(Path(results_dir).glob("BENCH_*.json"))


def diff_metrics(baseline: dict, current: dict,
                 threshold=DEFAULT_THRESHOLD) -> list:
    """Per-metric deltas between two flattened metric maps.

    Returns rows ``(path, base, cur, rel_delta, verdict)`` over the key
    union; a missing side reads as ``None`` with verdict ``new``/
    ``gone``.  ``verdict`` is ``regression`` / ``improvement`` when the
    relative change exceeds ``threshold`` in a direction the key's name
    makes meaningful, else ``ok``.
    """
    rows = []
    for path in sorted(set(baseline) | set(current)):
        base = baseline.get(path)
        cur = current.get(path)
        if base is None:
            rows.append((path, None, cur, None, "new"))
            continue
        if cur is None:
            rows.append((path, base, None, None, "gone"))
            continue
        if base == 0:
            rel = 0.0 if cur == 0 else float("inf")
        else:
            rel = (cur - base) / abs(base)
        direction = metric_direction(path)
        verdict = "ok"
        if direction is not None and abs(rel) > threshold:
            worse = rel > 0 if direction == "lower" else rel < 0
            verdict = "regression" if worse else "improvement"
        rows.append((path, base, cur, rel, verdict))
    return rows


def trend_table(results_dir, *, baseline_dir=None, rev="HEAD",
                threshold=DEFAULT_THRESHOLD, show_all=False):
    """(report_text, regression_count) for a benchmark results directory.

    ``baseline_dir`` compares against another directory of BENCH files;
    otherwise the committed ``rev`` version of each file is the
    baseline (files without history are reported as all-new).
    """

    def fmt(value):
        if value is None:
            return "n/a"
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"

    lines = []
    regressions = 0
    if baseline_dir is not None:
        baseline_dir = Path(baseline_dir)
        # A missing or empty baseline directory is an invalid-argument
        # error (CLI exit 2), not a quiet "everything is new" pass: a
        # typo'd --baseline-dir must never mask a regression.
        if not baseline_dir.is_dir():
            raise ValueError(
                f"--baseline-dir {baseline_dir} is not a directory"
            )
        if not bench_files(baseline_dir):
            raise ValueError(
                f"--baseline-dir {baseline_dir} has no BENCH_*.json files"
            )
    files = bench_files(results_dir)
    if not files:
        return f"no BENCH_*.json files under {results_dir}\n", 0
    for path in files:
        with open(path, "r", encoding="utf-8") as fh:
            current_doc = json.load(fh)
        if baseline_dir is not None:
            base_path = Path(baseline_dir) / path.name
            if base_path.is_file():
                with open(base_path, "r", encoding="utf-8") as fh:
                    baseline_doc = json.load(fh)
            else:
                baseline_doc = None
        else:
            baseline_doc = load_committed(path, rev=rev)
        current = flatten_metrics(current_doc)
        baseline = (
            flatten_metrics(baseline_doc) if baseline_doc is not None
            else {}
        )
        rows = diff_metrics(baseline, current, threshold=threshold)
        flagged = [r for r in rows if r[4] in ("regression", "improvement")]
        regressions += sum(1 for r in rows if r[4] == "regression")
        lines.append(f"== {path.name} ==")
        if baseline_doc is None:
            lines.append("  (no baseline: all metrics new)")
            continue
        shown = rows if show_all else flagged
        if not shown:
            lines.append(
                f"  {len(rows)} metric(s), no change beyond "
                f"{threshold:.0%}"
            )
        for mpath, base, cur, rel, verdict in shown:
            delta = "n/a" if rel is None else f"{rel:+.1%}"
            mark = {"regression": "!!", "improvement": "++"}.get(
                verdict, "  "
            )
            lines.append(
                f"  {mark} {mpath:<58} {fmt(base):>12} -> "
                f"{fmt(cur):>12}  {delta:>8}  {verdict}"
            )
    lines.append(
        f"-- {regressions} regression(s) beyond {threshold:.0%} --"
    )
    return "\n".join(lines) + "\n", regressions

"""``EngineReport`` — aggregate one telemetry stream into engine insight.

The per-run :class:`~repro.obs.ProfileReport` answers "where did *this
simulation* spend its time"; this module answers the layer above: how
well the :class:`~repro.exec.SweepEngine` used its worker slots, how
long jobs queued, what the cache saved, what crashed and was retried,
how efficient each PDES partition's windows were, and how the predicted
makespan compared with the achieved one.

Input is a telemetry JSONL stream (see :mod:`repro.obs.telemetry` and
DESIGN.md §10).  Outputs:

* :meth:`EngineReport.ascii_summary` — terminal rendering;
* :meth:`EngineReport.chrome_trace_events` — the engine-level Chrome
  trace: one lane per engine worker (the complement of the per-run
  trace's one-lane-per-core view), loadable in Perfetto;
* :meth:`EngineReport.normalized` — a timestamp- and
  assignment-insensitive dict, identical across two runs of the same
  graph (used by determinism tests and safe to diff).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from .telemetry import iter_records


def _us(seconds: float) -> float:
    return seconds * 1e6


def _bar(fraction, width=24) -> str:
    filled = int(round(max(0.0, min(1.0, fraction)) * width))
    return "#" * filled + "." * (width - filled)


@dataclass
class JobLedger:
    """Everything the stream said about one job-graph node."""

    node: str
    run: str = None
    status: str = None          # ok / failed / blocked / cached
    attempts: int = 0
    wid: int = None
    slots: int = 1
    queued_t: float = None
    first_launch_t: float = None
    done_t: float = None
    predicted: float = None
    wall_time: float = None
    exec_time: float = None
    wait_time: float = None
    blocker: str = None
    retries: list = field(default_factory=list)   # (t, attempt, reason)
    #: Executed attempt spans for the trace: (wid, t_start, t_end, ok).
    spans: list = field(default_factory=list)

    @property
    def queue_wait(self):
        if self.queued_t is None or self.first_launch_t is None:
            return None
        return max(0.0, self.first_launch_t - self.queued_t)


@dataclass
class PdesLedger:
    """Window/stall accounting of one partitioned run."""

    run: str
    workers: int = None
    windows: int = None
    lookahead: float = None
    stall: float = None
    elapsed: float = None
    #: partition wid -> [windows, dur_total, stall_total, batches_total]
    partitions: dict = field(default_factory=dict)

    @property
    def window_efficiency(self):
        """1 - (barrier stall / elapsed), summed over workers."""
        if not self.elapsed or self.stall is None:
            return None
        return max(0.0, 1.0 - self.stall / self.elapsed)


class EngineReport:
    """Aggregated view of one engine telemetry stream."""

    def __init__(self, records):
        self.records = list(records)
        self.graph = None
        self.jobs = None
        self.total = None
        self.predicted_makespan = None
        self.makespan = None
        self.executed = self.cached = self.failed = self.blocked = None
        self.cache_hits = None
        self.cache_misses = None
        self.t0 = None
        self.t_end = None
        self.ledgers = {}           # node -> JobLedger
        self.pdes = {}              # run fingerprint -> PdesLedger
        self.stats_updates = []     # (sig, predicted, actual, cached)
        self._aggregate()

    @classmethod
    def from_file(cls, path, *, validate=True):
        return cls(iter_records(path, validate=validate))

    # ------------------------------------------------------------------
    def _ledger(self, record) -> JobLedger:
        node = record.get("node", "?")
        ledger = self.ledgers.get(node)
        if ledger is None:
            ledger = self.ledgers[node] = JobLedger(node=node)
        if record.get("run") is not None:
            ledger.run = record["run"]
        return ledger

    def _aggregate(self):
        open_spans = {}  # node -> (wid, t_start)
        for r in self.records:
            t = r["t"]
            if self.t0 is None or t < self.t0:
                self.t0 = t
            if self.t_end is None or t > self.t_end:
                self.t_end = t
            rtype = r["type"]
            # One stream may hold several engine sessions (e.g. a cold
            # and a warm invocation appending to the same file): scalar
            # session fields take the latest value, durations and
            # counters accumulate, so utilization fractions stay <= 1.
            if rtype == "engine_start":
                self.graph = r["graph"]
                self.jobs = r["jobs"]
                self.total = r["total"]
                if r.get("predicted_makespan") is not None:
                    self.predicted_makespan = (
                        (self.predicted_makespan or 0.0)
                        + r["predicted_makespan"]
                    )
            elif rtype == "engine_stop":
                self.makespan = (self.makespan or 0.0) + r["makespan"]
                self.executed = (self.executed or 0) + r["executed"]
                self.cached = (self.cached or 0) + r["cached"]
                self.failed = (self.failed or 0) + r["failed"]
                self.blocked = (self.blocked or 0) + r["blocked"]
                if r.get("cache_hits") is not None:
                    self.cache_hits = (
                        (self.cache_hits or 0) + r["cache_hits"]
                    )
                if r.get("cache_misses") is not None:
                    self.cache_misses = (
                        (self.cache_misses or 0) + r["cache_misses"]
                    )
            elif rtype == "job_queued":
                ledger = self._ledger(r)
                ledger.queued_t = t
                ledger.predicted = r.get("predicted")
                ledger.slots = r.get("slots", 1)
            elif rtype == "job_launched":
                ledger = self._ledger(r)
                ledger.attempts = max(ledger.attempts, r["attempt"])
                ledger.wid = r["wid"]
                ledger.slots = r.get("slots", ledger.slots)
                if ledger.first_launch_t is None:
                    ledger.first_launch_t = t
                if r.get("predicted") is not None:
                    ledger.predicted = r["predicted"]
                open_spans[ledger.node] = (r["wid"], t)
            elif rtype == "job_retry":
                ledger = self._ledger(r)
                ledger.attempts = max(ledger.attempts, r["attempt"])
                ledger.retries.append(
                    (t, r["attempt"], r.get("reason", ""))
                )
                start = open_spans.pop(ledger.node, None)
                if start is not None:
                    ledger.spans.append((start[0], start[1], t, False))
            elif rtype in ("job_done", "job_failed"):
                ledger = self._ledger(r)
                ok = rtype == "job_done"
                ledger.status = r["status"] if ok else "failed"
                ledger.attempts = max(ledger.attempts, r["attempts"])
                ledger.done_t = t
                ledger.wall_time = r.get("wall_time")
                ledger.exec_time = r.get("exec_time")
                ledger.wait_time = r.get("wait_time")
                if r.get("wid") is not None:
                    ledger.wid = r["wid"]
                if r.get("predicted") is not None:
                    ledger.predicted = r["predicted"]
                start = open_spans.pop(ledger.node, None)
                if start is not None:
                    ledger.spans.append((start[0], start[1], t, ok))
            elif rtype == "job_blocked":
                ledger = self._ledger(r)
                ledger.status = "blocked"
                ledger.blocker = r["blocker"]
            elif rtype == "job_cached":
                ledger = self._ledger(r)
                ledger.status = "cached"
            elif rtype == "stats_update":
                self.stats_updates.append((
                    r["sig"], r.get("predicted"), r["actual"],
                    bool(r.get("cached")),
                ))
            elif rtype == "pdes_run":
                run = r.get("run", "?")
                entry = self.pdes.setdefault(run, PdesLedger(run=run))
                entry.workers = r["workers"]
                entry.windows = r["windows"]
                entry.lookahead = r["lookahead"]
                entry.stall = r["stall"]
                entry.elapsed = r["elapsed"]
            elif rtype == "pdes_window":
                run = r.get("run", "?")
                entry = self.pdes.setdefault(run, PdesLedger(run=run))
                part = entry.partitions.setdefault(
                    r["wid"], [0, 0.0, 0.0, 0]
                )
                part[0] += 1
                part[1] += r["dur"]
                part[2] += r["stall"]
                part[3] += r["batches"]
        if self.makespan is None and self.t0 is not None:
            self.makespan = self.t_end - self.t0
        if self.executed is None:
            by = self.status_counts()
            self.executed = by.get("ok", 0)
            self.cached = by.get("cached", 0)
            self.failed = by.get("failed", 0)
            self.blocked = by.get("blocked", 0)

    # ------------------------------------------------------------------
    def status_counts(self) -> dict:
        counts = {}
        for ledger in self.ledgers.values():
            key = ledger.status or "unknown"
            counts[key] = counts.get(key, 0) + 1
        return counts

    def worker_busy(self) -> dict:
        """wid -> busy wall seconds (executed attempt spans)."""
        busy = {}
        for ledger in self.ledgers.values():
            for wid, start, end, _ok in ledger.spans:
                busy[wid] = busy.get(wid, 0.0) + (end - start)
        return busy

    def worker_runs(self) -> dict:
        """wid -> attempts executed on that worker."""
        runs = {}
        for ledger in self.ledgers.values():
            for wid, _s, _e, _ok in ledger.spans:
                runs[wid] = runs.get(wid, 0) + 1
        return runs

    def slot_occupancy(self) -> float:
        """Mean fraction of the pool busy over the makespan."""
        if not self.makespan or not self.jobs:
            return 0.0
        slot_seconds = 0.0
        for ledger in self.ledgers.values():
            for _wid, start, end, _ok in ledger.spans:
                slot_seconds += (end - start) * (ledger.slots or 1)
        return slot_seconds / (self.makespan * self.jobs)

    def queue_waits(self) -> list:
        waits = [
            ledger.queue_wait for ledger in self.ledgers.values()
            if ledger.queue_wait is not None
        ]
        return sorted(waits)

    def queue_wait_histogram(self, buckets=(0.001, 0.01, 0.1, 1.0, 10.0)):
        """[(upper_bound_or_inf, count), ...] over per-node queue waits."""
        counts = [0] * (len(buckets) + 1)
        for wait in self.queue_waits():
            for i, bound in enumerate(buckets):
                if wait < bound:
                    counts[i] += 1
                    break
            else:
                counts[-1] += 1
        bounds = list(buckets) + [float("inf")]
        return list(zip(bounds, counts))

    def cache_hit_rate(self):
        """Engine-level hit fraction (``None`` when nothing was looked up)."""
        hits, misses = self.cache_hits, self.cache_misses
        if hits is None or misses is None:
            by = self.status_counts()
            hits = by.get("cached", 0)
            misses = by.get("ok", 0) + by.get("failed", 0)
        total = hits + misses
        return hits / total if total else None

    def retry_ledger(self) -> list:
        """Every retry: (node, attempt, reason), stream order."""
        entries = []
        for ledger in self.ledgers.values():
            for t, attempt, reason in ledger.retries:
                entries.append((t, ledger.node, attempt, reason))
        entries.sort()
        return [(node, attempt, reason)
                for _t, node, attempt, reason in entries]

    # ------------------------------------------------------------------
    def normalized(self) -> dict:
        """Timestamp- and worker-assignment-insensitive digest.

        Two runs of the same graph with the same outcome produce the
        same dict, regardless of scheduling interleavings: no clocks, no
        worker ids, no completion order.
        """
        nodes = {}
        for name in sorted(self.ledgers):
            ledger = self.ledgers[name]
            nodes[name] = {
                "status": ledger.status,
                "attempts": ledger.attempts,
                "slots": ledger.slots,
                "run": ledger.run,
                "blocker": ledger.blocker,
            }
        pdes = {}
        for run in sorted(self.pdes):
            entry = self.pdes[run]
            pdes[run] = {
                "workers": entry.workers,
                "windows": entry.windows,
                "partition_windows": {
                    str(w): entry.partitions[w][0]
                    for w in sorted(entry.partitions)
                },
            }
        return {
            "graph": self.graph,
            "jobs": self.jobs,
            "total": self.total,
            "executed": self.executed,
            "cached": self.cached,
            "failed": self.failed,
            "blocked": self.blocked,
            "nodes": nodes,
            "pdes": pdes,
        }

    # ------------------------------------------------------------------
    def chrome_trace_events(self) -> list:
        """The engine timeline as Chrome trace events: one lane per worker.

        ``pid`` 0 is the engine; ``tid`` is the worker id + 1 (lane 0
        holds engine-scope instants; live-only parent runs, wid -1, land
        there too).  Same schema as the per-run exporter: every event
        has ``name``/``ph``/``pid``/``tid``; ``X`` spans add
        ``ts``/``dur`` in microseconds.
        """
        t0 = self.t0 or 0.0
        events = []
        lanes = set()
        for ledger in self.ledgers.values():
            for wid, start, end, ok in ledger.spans:
                tid = (wid if wid is not None and wid >= 0 else -1) + 1
                lanes.add(tid)
                events.append({
                    "name": ledger.node,
                    "cat": "job",
                    "ph": "X",
                    "ts": _us(start - t0),
                    "dur": _us(end - start),
                    "pid": 0,
                    "tid": tid,
                    "args": {
                        "ok": ok,
                        "slots": ledger.slots,
                        "run": ledger.run,
                    },
                })
            for t, attempt, reason in ledger.retries:
                events.append({
                    "name": f"{ledger.node}:retry",
                    "cat": "retry",
                    "ph": "i",
                    "ts": _us(t - t0),
                    "s": "g",
                    "pid": 0,
                    "tid": 0,
                    "args": {"attempt": attempt, "reason": reason},
                })
            if ledger.status == "cached":
                events.append({
                    "name": f"{ledger.node}:cached",
                    "cat": "cache",
                    "ph": "i",
                    "ts": 0.0 if self.t0 is None else _us(
                        (ledger.done_t or self.t0) - t0
                    ),
                    "s": "g",
                    "pid": 0,
                    "tid": 0,
                    "args": {},
                })
        meta = [
            {
                "name": "process_name", "ph": "M", "pid": 0, "tid": 0,
                "args": {"name": f"engine {self.graph or ''}".strip()},
            },
            {
                "name": "thread_name", "ph": "M", "pid": 0, "tid": 0,
                "args": {"name": "engine"},
            },
        ]
        for tid in sorted(lanes):
            label = "parent (live)" if tid == 0 else f"worker {tid - 1}"
            meta.append({
                "name": "thread_name", "ph": "M", "pid": 0, "tid": tid,
                "args": {"name": label},
            })
        return meta + events

    def write_chrome_trace(self, path) -> int:
        events = self.chrome_trace_events()
        payload = {"traceEvents": events, "displayTimeUnit": "ms"}
        with open(path, "w") as fh:
            json.dump(payload, fh)
        return len(events)

    # ------------------------------------------------------------------
    def ascii_summary(self) -> str:
        lines = [
            f"== engine: {self.graph or '?'} "
            f"({self.jobs or '?'} workers, {self.total or 0} nodes) ==",
        ]
        if self.makespan is not None:
            row = f"makespan        {self.makespan:10.3f} s"
            if self.predicted_makespan:
                ratio = self.makespan / self.predicted_makespan
                row += (
                    f"  (predicted {self.predicted_makespan:.3f} s, "
                    f"x{ratio:.2f})"
                )
            lines.append(row)
        lines.append(
            f"outcomes        {self.executed or 0} executed, "
            f"{self.cached or 0} cached, {self.failed or 0} failed, "
            f"{self.blocked or 0} blocked"
        )
        rate = self.cache_hit_rate()
        if rate is not None:
            hits = self.cache_hits
            misses = self.cache_misses
            detail = (
                f" ({hits} hits / {misses} misses)"
                if hits is not None and misses is not None
                else ""
            )
            lines.append(f"cache hit rate  {rate:10.3f}{detail}")
        lines.append(
            f"slot occupancy  {self.slot_occupancy():10.3f}  "
            f"[{_bar(self.slot_occupancy())}]"
        )

        busy = self.worker_busy()
        if busy and self.makespan:
            runs = self.worker_runs()
            lines.append("-- worker utilization --")
            for wid in sorted(busy):
                frac = busy[wid] / self.makespan
                label = "parent" if wid == -1 else f"w{wid}"
                lines.append(
                    f"  {label:<8}{busy[wid]:9.3f} s  "
                    f"{frac:6.1%}  [{_bar(frac)}]  "
                    f"{runs.get(wid, 0)} attempt(s)"
                )

        waits = self.queue_waits()
        if waits:
            p50 = waits[len(waits) // 2]
            lines.append(
                f"-- queue wait: n={len(waits)} p50={p50:.4f}s "
                f"max={waits[-1]:.4f}s --"
            )
            for bound, count in self.queue_wait_histogram():
                if count == 0:
                    continue
                label = "inf" if bound == float("inf") else f"{bound:g}s"
                lines.append(f"  < {label:<8}{count:4d}")

        retries = self.retry_ledger()
        if retries:
            lines.append(f"-- retries/crashes ({len(retries)}) --")
            for node, attempt, reason in retries:
                lines.append(f"  {node}: attempt {attempt}: {reason}")

        if self.pdes:
            lines.append("-- PDES window efficiency --")
            for run in sorted(self.pdes):
                entry = self.pdes[run]
                eff = entry.window_efficiency
                eff_s = f"{eff:.3f}" if eff is not None else "n/a"
                lines.append(
                    f"  {run[:12]}: {entry.workers or '?'} workers, "
                    f"{entry.windows or '?'} windows, efficiency {eff_s}"
                )
                for wid in sorted(entry.partitions):
                    windows, dur, stall, batches = entry.partitions[wid]
                    frac = stall / dur if dur else 0.0
                    lines.append(
                        f"    p{wid}: {windows} windows, "
                        f"stall {frac:6.1%}, {batches} batches"
                    )

        if self.stats_updates:
            with_pred = [
                (pred, actual)
                for _sig, pred, actual, cached in self.stats_updates
                if pred is not None and not cached
            ]
            lines.append(
                f"-- stats updates: {len(self.stats_updates)} "
                f"({len(with_pred)} with prior prediction) --"
            )
            if with_pred:
                err = [abs(a - p) / a for p, a in with_pred if a > 0]
                if err:
                    mean_err = sum(err) / len(err)
                    lines.append(
                        f"  mean |predicted-actual|/actual: {mean_err:.2%}"
                    )
        return "\n".join(lines) + "\n"

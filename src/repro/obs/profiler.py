"""The run profiler: executed-task-graph and communication recording.

One :class:`Profiler` is threaded through a simulated run (driver →
kernel, tasking runtime, TAMPI, simulated MPI) when
``RunSpec(profile=True)``.  It records, with one guarded call per event:

* a :class:`TaskRecord` per executed task — spawn/ready/start/end/complete
  timestamps, the executing (rank, core), and the *executed* dependency
  edges (predecessor task ids), which is exactly the DAG the
  critical-path engine of :mod:`repro.obs.attribution` walks;
* per-task TAMPI release-pending intervals (body finished but bound MPI
  requests still in flight — the window ``TAMPI_Iwait`` hides);
* per-rank MPI call intervals (name, duration) and per-message network
  in-flight intervals (used to classify idle gaps as network-blocked);
* a :class:`~repro.obs.metrics.MetricsRegistry` of runtime counters:
  ready-queue depth, task wait→run latency, steal/pop decisions, TAMPI
  binds, MPI wait time by call, message sizes, kernel events processed.

Every hook is a no-op branch when no profiler is installed, so profiling
off costs one ``is None`` test per event site.  With profiling *on*, the
hooks stay cheap by deferring: they only append records and bump plain
dict counters; the labelled :class:`MetricsRegistry` series are
materialized once from those records by :meth:`Profiler.finalize_metrics`
(called when the report is built), so per-event cost is a few attribute
writes rather than a registry lookup.
"""

from __future__ import annotations

from .metrics import MetricsRegistry

#: MPI call names whose duration is "the caller sat blocked" time.
BLOCKING_MPI_CALLS = frozenset(("Wait", "Waitany", "Waitall", "Recv"))


class TaskRecord:
    """The executed lifecycle of one task (all times simulated seconds)."""

    __slots__ = (
        "tid", "rank", "core", "label", "phase",
        "t_spawn", "t_ready", "t_start", "t_end", "t_complete",
        "preds", "bound_requests",
    )

    def __init__(self, tid, rank, label, phase, t_spawn):
        self.tid = tid
        self.rank = rank
        self.core = None
        self.label = label
        self.phase = phase
        self.t_spawn = t_spawn
        self.t_ready = None
        self.t_start = None
        self.t_end = None
        self.t_complete = None
        #: Executed-DAG predecessors (task ids whose completion this task
        #: waited on).
        self.preds = []
        #: Number of MPI requests bound via TAMPI.
        self.bound_requests = 0

    @property
    def exec_time(self):
        """Body execution span (0.0 when the task never ran)."""
        if self.t_start is None or self.t_end is None:
            return 0.0
        return self.t_end - self.t_start

    @property
    def release_pending(self):
        """Seconds between body end and dependency release (TAMPI window)."""
        if self.t_end is None or self.t_complete is None:
            return 0.0
        return max(self.t_complete - self.t_end, 0.0)

    def to_dict(self) -> dict:
        return {
            "tid": self.tid,
            "rank": self.rank,
            "core": self.core,
            "label": self.label,
            "phase": self.phase,
            "t_spawn": self.t_spawn,
            "t_ready": self.t_ready,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "t_complete": self.t_complete,
            "preds": list(self.preds),
            "bound_requests": self.bound_requests,
        }


class MpiCall:
    """One MPI call interval on a rank."""

    __slots__ = ("rank", "name", "t0", "t1")

    def __init__(self, rank, name, t0, t1):
        self.rank = rank
        self.name = name
        self.t0 = t0
        self.t1 = t1

    @property
    def duration(self):
        return self.t1 - self.t0


class Message:
    """One point-to-point message's in-flight interval (world ranks)."""

    __slots__ = ("src", "dst", "t_post", "t_arrive", "nbytes")

    def __init__(self, src, dst, t_post, t_arrive, nbytes):
        self.src = src
        self.dst = dst
        self.t_post = t_post
        self.t_arrive = t_arrive
        self.nbytes = nbytes


class Profiler:
    """Collects the records above during one simulated run."""

    def __init__(self):
        self.metrics = MetricsRegistry()
        self.tasks = {}  # tid -> TaskRecord
        self.mpi_calls = []  # MpiCall
        self.messages = []  # Message
        #: Per-rank inline (untasked, main-thread) busy intervals.
        self.inline = {}  # rank -> [(t0, t1), ...]
        #: Per-rank injected-CPU-fault intervals (the extra tail the
        #: fault injector appended to a charge).
        self.fault_cpu_intervals = {}  # rank -> [(t0, t1), ...]
        #: Injected message-delay intervals, attributed to both endpoints.
        self.fault_delay_intervals = []  # (src, dst, t0, t1)
        #: Per-rank count of currently-pending TAMPI releases.
        self._pending_releases = {}
        # Hot-path accumulators, folded into ``metrics`` by
        # :meth:`finalize_metrics` (plain dict/list ops only).
        self._peak_pending = {}  # rank -> peak pending releases
        self._depth_samples = []  # ready-queue depth at each ready event
        self._pops = {}  # (rank, stolen) -> count
        self._iwait = {}  # (rank, outcome) -> count
        self._edges = []  # (tid, successor list at completion)
        self._finalized = False

    # ------------------------------------------------------------------
    # Tasking-runtime hooks (called from repro.tasking.runtime)
    # ------------------------------------------------------------------
    def task_spawned(self, task, rank, now):
        self.tasks[task.tid] = TaskRecord(
            task.tid, rank, task.label, task.phase, now
        )

    def task_ready(self, task, now, queue_depth=None):
        rec = self.tasks.get(task.tid)
        if rec is not None and rec.t_ready is None:
            rec.t_ready = now
        if queue_depth is not None:
            self._depth_samples.append(queue_depth)

    def task_ran(self, task, core, t0, t1):
        """One task body executed on ``core`` over ``[t0, t1]``."""
        rec = self.tasks.get(task.tid)
        if rec is not None:
            rec.core = core
            rec.t_start = t0
            rec.t_end = t1

    def task_completed(self, task, now):
        rec = self.tasks.get(task.tid)
        if rec is None:
            return
        rec.t_complete = now
        # Defer executed-DAG edge recording: successors only accrue while
        # a predecessor is incomplete (deps.register skips completed
        # preds), so the list referenced here is final — walking it per
        # completion would pay the whole edge count in the hot path.
        self._edges.append((task.tid, task.successors))

    def pop_decision(self, rank, stolen):
        key = (rank, stolen)
        self._pops[key] = self._pops.get(key, 0) + 1

    # ------------------------------------------------------------------
    # TAMPI hooks (called from repro.tasking.runtime's request binding
    # and repro.tampi.tampi)
    # ------------------------------------------------------------------
    def request_bound(self, task, rank, now):
        rec = self.tasks.get(task.tid)
        if rec is not None:
            rec.bound_requests += 1
        pending = self._pending_releases.get(rank, 0) + 1
        self._pending_releases[rank] = pending
        if pending > self._peak_pending.get(rank, 0):
            self._peak_pending[rank] = pending

    def request_released(self, task, rank, now):
        pending = max(self._pending_releases.get(rank, 0) - 1, 0)
        self._pending_releases[rank] = pending

    def iwait_outcome(self, rank, outcome):
        """One ``TAMPI_Iwait`` call: ``outcome`` is bound or immediate."""
        key = (rank, outcome)
        self._iwait[key] = self._iwait.get(key, 0) + 1

    # ------------------------------------------------------------------
    # Simulated-MPI hooks (called from repro.mpi.comm)
    # ------------------------------------------------------------------
    def mpi_call(self, rank, name, t0, t1):
        self.mpi_calls.append(MpiCall(rank, name, t0, t1))

    def message_posted(self, src, dst, t_post, t_arrive, nbytes):
        self.messages.append(Message(src, dst, t_post, t_arrive, nbytes))

    # ------------------------------------------------------------------
    # Fault-injector hooks (called from repro.faults.injectors)
    # ------------------------------------------------------------------
    def fault_cpu(self, rank, t0, t1):
        """Injected CPU-fault tail ``[t0, t1]`` on ``rank`` (evidence for
        the ``fault_noise`` idle-gap blocker class)."""
        if t1 > t0:
            self.fault_cpu_intervals.setdefault(rank, []).append((t0, t1))

    def fault_delay(self, src, dst, t0, t1):
        """Injected extra in-flight window of one message (evidence for
        the ``fault_retry`` idle-gap blocker class on both endpoints)."""
        if t1 > t0:
            self.fault_delay_intervals.append((src, dst, t0, t1))

    # ------------------------------------------------------------------
    # Application hooks (called from repro.core.app)
    # ------------------------------------------------------------------
    def inline_busy(self, rank, t0, t1):
        """Record untasked main-thread work (refine control, ACK protocol)
        so idle-gap attribution doesn't misread it as starvation."""
        if t1 > t0:
            self.inline.setdefault(rank, []).append((t0, t1))

    # ------------------------------------------------------------------
    # Metrics materialization
    # ------------------------------------------------------------------
    def finalize_metrics(self) -> "MetricsRegistry":
        """Fold the raw records into the labelled metrics registry.

        Idempotent; called once when the :class:`~repro.obs.ProfileReport`
        is built.  Doing this here — instead of per event — is what keeps
        the profiling hooks cheap enough to leave enabled on real runs.
        ``tampi.pending_releases`` is the per-rank *peak* of concurrently
        pending releases.
        """
        if self._finalized:
            return self.metrics
        self._finalized = True
        m = self.metrics

        # Group in plain dicts first, then touch each labelled series
        # once — per-sample label canonicalization would dominate.
        spawned = {}
        bound = {}
        wait_by_phase = {}
        exec_by_phase = {}
        for rec in self.tasks.values():
            spawned[rec.rank] = spawned.get(rec.rank, 0) + 1
            if rec.bound_requests:
                bound[rec.rank] = bound.get(rec.rank, 0) + rec.bound_requests
            if rec.t_start is None:
                continue
            if rec.t_ready is not None:
                wait_by_phase.setdefault(rec.phase, []).append(
                    rec.t_start - rec.t_ready
                )
            if rec.t_end is not None:
                exec_by_phase.setdefault(rec.phase, []).append(
                    rec.t_end - rec.t_start
                )
        for rank, n in sorted(spawned.items()):
            m.inc("runtime.tasks_spawned", n, rank=rank)
        for rank, n in sorted(bound.items()):
            m.inc("tampi.requests_bound", n, rank=rank)
        for phase, values in sorted(wait_by_phase.items()):
            m.histogram("runtime.wait_to_run", phase=phase).observe_many(
                values
            )
        for phase, values in sorted(exec_by_phase.items()):
            m.histogram("runtime.exec_time", phase=phase).observe_many(
                values
            )

        m.histogram("runtime.ready_depth").observe_many(self._depth_samples)
        for (rank, stolen), n in sorted(self._pops.items()):
            m.inc(
                "runtime.pops", n,
                rank=rank, kind="steal" if stolen else "local",
            )
        for (rank, outcome), n in sorted(self._iwait.items()):
            m.inc("tampi.iwait", n, rank=rank, outcome=outcome)
        for rank, peak in sorted(self._peak_pending.items()):
            m.set_gauge("tampi.pending_releases", peak, rank=rank)

        calls_by_name = {}
        wait_by_name = {}
        for call in self.mpi_calls:
            name = call.name
            calls_by_name[name] = calls_by_name.get(name, 0) + 1
            if name in BLOCKING_MPI_CALLS:
                wait_by_name.setdefault(name, []).append(call.t1 - call.t0)
        for name, n in sorted(calls_by_name.items()):
            m.inc("mpi.calls", n, call=name)
        for name, values in sorted(wait_by_name.items()):
            m.histogram("mpi.wait_time", call=name).observe_many(values)
        m.histogram("mpi.message_bytes").observe_many(
            [msg.nbytes for msg in self.messages]
        )
        # Guarded so clean runs' metric sets are unchanged by faults
        # existing as a feature.
        if self.fault_cpu_intervals:
            m.histogram("faults.cpu_extra").observe_many(
                [
                    t1 - t0
                    for spans in self.fault_cpu_intervals.values()
                    for (t0, t1) in spans
                ]
            )
        if self.fault_delay_intervals:
            m.histogram("faults.message_extra").observe_many(
                [t1 - t0 for (_s, _d, t0, t1) in self.fault_delay_intervals]
            )
        return m

    def absorb(self, other, tid_offset):
        """Fold another worker's profiler into this one.

        The partitioned kernel (:mod:`repro.simx.parallel`) runs one
        profiler per worker; each numbers its tasks from 0, so ``other``'s
        task ids (and its recorded ``preds``) are remapped by
        ``tid_offset`` before merging.  ``other`` must have had
        :meth:`materialize_edges` called (its deferred edge log still
        references live Task objects, which do not cross workers);
        everything else merges structurally — per-rank collections are
        disjoint across workers, counters add, peaks max.
        """
        if other._edges:
            raise ValueError(
                "materialize_edges() the source profiler before absorbing"
            )
        if self._finalized or other._finalized:
            raise ValueError("cannot absorb into/from a finalized profiler")
        for rec in other.tasks.values():
            rec.tid += tid_offset
            rec.preds = [p + tid_offset for p in rec.preds]
            self.tasks[rec.tid] = rec
        self.mpi_calls.extend(other.mpi_calls)
        self.messages.extend(other.messages)
        for rank, spans in other.inline.items():
            self.inline.setdefault(rank, []).extend(spans)
        for rank, spans in other.fault_cpu_intervals.items():
            self.fault_cpu_intervals.setdefault(rank, []).extend(spans)
        self.fault_delay_intervals.extend(other.fault_delay_intervals)
        for rank, peak in other._peak_pending.items():
            if peak > self._peak_pending.get(rank, 0):
                self._peak_pending[rank] = peak
        self._depth_samples.extend(other._depth_samples)
        for key, n in other._pops.items():
            self._pops[key] = self._pops.get(key, 0) + n
        for key, n in other._iwait.items():
            self._iwait[key] = self._iwait.get(key, 0) + n
        # The only series materialized before finalize_metrics() is the
        # kernel's processed-event counter (folded by env.flush_metrics).
        self.metrics.absorb(other.metrics)

    def materialize_edges(self):
        """Resolve deferred completion edges into ``TaskRecord.preds``.

        Idempotent (the deferred log is drained); every consumer of
        ``preds`` — the critical-path engine first of all — calls this
        before reading.  Unrecorded successors (sync markers) are
        skipped.
        """
        edges, self._edges = self._edges, []
        tasks = self.tasks
        for tid, succs in edges:
            for succ in succs:
                srec = tasks.get(succ.tid)
                if srec is not None:
                    srec.preds.append(tid)

    # ------------------------------------------------------------------
    # Convenience views
    # ------------------------------------------------------------------
    def executed_tasks(self) -> list:
        """Records of tasks that actually ran, in start order."""
        return sorted(
            (r for r in self.tasks.values() if r.t_start is not None),
            key=lambda r: (r.t_start, r.tid),
        )

    def ranks(self) -> list:
        ranks = {r.rank for r in self.tasks.values()}
        ranks.update(c.rank for c in self.mpi_calls)
        return sorted(ranks)

"""``repro.obs.telemetry`` — the engine-wide structured telemetry bus.

Everything *above* a single run — the :class:`~repro.exec.SweepEngine`
scheduling jobs, pipeline nodes changing state, the
:class:`~repro.exec.cache.ResultCache` hitting or missing, the
:class:`~repro.exec.stats.RunStatsStore` reconciling predictions with
measurements, and the partitioned-PDES workers flushing time windows —
emits into one append-only JSONL stream.  The per-run
:class:`~repro.obs.ProfileReport` explains *one* simulation; this stream
explains the fleet that executed it.

Design rules (see DESIGN.md §10 for the full schema):

* **One record per line, one line per write.**  Every record is a single
  compact-JSON line written with one ``os.write`` to an ``O_APPEND`` file
  descriptor, so concurrent emitters — the engine parent, its pool
  children (via a queue the parent drains), and PDES worker grandchildren
  (attached through the ``REPRO_TELEMETRY`` environment variable) —
  interleave *whole lines*, never bytes.  Records are kept far below the
  POSIX atomic-append bound (long fields are truncated).
* **Monotonic clock, one domain.**  ``t`` is ``time.monotonic()`` of the
  emitting process: on the platforms we target this is CLOCK_MONOTONIC,
  system-wide, so records from different processes on one host share a
  timeline.  Absolute values are meaningless across hosts/reboots;
  consumers normalize to the stream's ``engine_start`` (or earliest)
  record.
* **Zero-cost and fingerprint-neutral when disabled.**  Telemetry is
  *not* a :class:`~repro.core.RunSpec` field: enabling it cannot change
  a fingerprint, a cache key, or a golden.  Every emission site guards on
  ``bus is None`` (one attribute test), and with no ``REPRO_TELEMETRY``
  set and no bus passed, nothing is ever opened or written.
* **Identity on every record.**  Records carry the run fingerprint
  (``run``), the job-graph node name (``node``), and the engine worker id
  (``wid``) whenever the emitter knows them, so one stream serving many
  sweeps still attributes every event.
"""

from __future__ import annotations

import json
import os
import time

#: Environment variable carrying the telemetry JSONL path.  Child
#: processes inherit it, which is how PDES workers (grandchildren of the
#: sweep engine) find the stream without any spec plumbing.
TELEMETRY_ENV = "REPRO_TELEMETRY"

#: Hard cap on one serialized record; far below the POSIX atomic-append
#: guarantee (PIPE_BUF, >= 4096).  Long free-text fields are truncated at
#: emission instead (see :data:`TRUNCATE_FIELDS`).
MAX_RECORD_BYTES = 4096

#: Free-text fields truncated to keep records under the atomic bound.
TRUNCATE_FIELDS = {"reason": 200, "error": 200}

#: Fields stamped on every record by the bus itself.
BASE_FIELDS = ("type", "t", "pid")

#: record type -> fields required beyond :data:`BASE_FIELDS`.  Context
#: fields (``run``, ``node``, ``wid``) are listed where the emitter
#: always knows them; elsewhere they are optional but recommended.
RECORD_TYPES = {
    # -- engine lifecycle ------------------------------------------------
    "engine_start": ("graph", "jobs", "total"),
    "engine_stop": ("graph", "makespan", "executed", "cached", "failed",
                    "blocked"),
    # -- job-graph node lifecycle (pipeline nodes and sweep runs alike) --
    "job_queued": ("node",),
    "job_launched": ("node", "wid", "slots", "attempt"),
    "job_retry": ("node", "attempt", "reason"),
    "job_done": ("node", "status", "attempts", "wall_time"),
    "job_failed": ("node", "attempts"),
    "job_blocked": ("node", "blocker"),
    "job_cached": ("node", "run"),
    # -- in-worker run spans (queued to the parent, drained to the file) -
    "run_start": ("node", "wid", "run"),
    "run_end": ("node", "wid", "run", "ok"),
    # -- stats store: prediction vs measurement --------------------------
    "stats_update": ("sig", "actual", "cached"),
    # -- partitioned-PDES kernel -----------------------------------------
    "pdes_window": ("run", "wid", "window", "dur", "stall", "batches"),
    "pdes_run": ("run", "workers", "windows", "lookahead", "stall",
                 "elapsed"),
    # -- design-space exploration (repro.tune) ---------------------------
    "tune_start": ("tune", "strategy", "objective", "budget", "space",
                   "feasible"),
    "tune_round": ("tune", "round", "tier", "evaluated"),
    "tune_prune": ("tune", "candidate", "reason"),
    "tune_stop": ("tune", "evaluations", "pruned", "best"),
    # -- serve layer (repro.serve broker; ``tenant`` rides on job records
    # too, as an optional context field) ---------------------------------
    "serve_start": ("addr",),
    "serve_stop": ("reason",),
    "serve_submit": ("job", "tenant", "mode"),   # new | coalesced | cached
    "serve_done": ("job", "tenant", "state"),
    "serve_cancel": ("job", "tenant"),
    "serve_reject": ("tenant", "code"),
}


class TelemetryError(ValueError):
    """A telemetry record or stream violates the schema."""


def validate_record(record) -> dict:
    """Check one decoded record against the schema; returns it.

    Raises :class:`TelemetryError` naming the first violated rule.
    """
    if not isinstance(record, dict):
        raise TelemetryError(f"record is {type(record).__name__}, not dict")
    for field in BASE_FIELDS:
        if field not in record:
            raise TelemetryError(f"record missing base field {field!r}")
    rtype = record["type"]
    if rtype not in RECORD_TYPES:
        raise TelemetryError(f"unknown record type {rtype!r}")
    if not isinstance(record["t"], (int, float)):
        raise TelemetryError(f"t must be a number, got {record['t']!r}")
    if not isinstance(record["pid"], int):
        raise TelemetryError(f"pid must be an int, got {record['pid']!r}")
    missing = [f for f in RECORD_TYPES[rtype] if f not in record]
    if missing:
        raise TelemetryError(f"{rtype} record missing fields {missing}")
    return record


def iter_records(path, *, validate=True):
    """Yield decoded records from a telemetry JSONL file in order.

    With ``validate`` (the default) every line must parse and pass
    :func:`validate_record` — a torn or corrupt line raises
    :class:`TelemetryError` with its line number.
    """
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                raise TelemetryError(
                    f"{path}:{lineno}: corrupt JSONL line ({exc})"
                ) from None
            if validate:
                try:
                    validate_record(record)
                except TelemetryError as exc:
                    raise TelemetryError(
                        f"{path}:{lineno}: {exc}"
                    ) from None
            yield record


def read_records(path, *, validate=True) -> list:
    """All records of a telemetry file as a list (see :func:`iter_records`)."""
    return list(iter_records(path, validate=validate))


def validate_file(path) -> int:
    """Schema-validate a whole stream; returns the record count."""
    return sum(1 for _ in iter_records(path, validate=True))


# ----------------------------------------------------------------------
# Emitters
# ----------------------------------------------------------------------
class _EmitterBase:
    """Context stamping and record shaping shared by every emitter."""

    __slots__ = ("wid", "run", "node")

    def __init__(self, wid=None, run=None, node=None):
        self.wid = wid
        self.run = run
        self.node = node

    def _record(self, rtype, fields) -> dict:
        record = {"type": rtype, "t": time.monotonic(), "pid": os.getpid()}
        if self.wid is not None:
            record["wid"] = self.wid
        if self.run is not None:
            record["run"] = self.run
        if self.node is not None:
            record["node"] = self.node
        for key, value in fields.items():
            if value is None:
                continue
            limit = TRUNCATE_FIELDS.get(key)
            if limit is not None and isinstance(value, str):
                value = value[:limit]
            record[key] = value
        return record

    def emit(self, rtype, **fields):
        self.write_record(self._record(rtype, fields))

    def write_record(self, record):  # pragma: no cover - interface
        raise NotImplementedError


class TelemetryBus(_EmitterBase):
    """A line-atomic JSONL writer bound to one stream file.

    Any number of processes may hold a bus on the same path: each record
    is one ``os.write`` to an ``O_APPEND`` descriptor, so lines never
    tear.  Construction is the only filesystem cost; a disabled stack
    simply never constructs one.
    """

    __slots__ = ("path", "_fd")

    def __init__(self, path, *, wid=None, run=None, node=None):
        super().__init__(wid=wid, run=run, node=node)
        self.path = str(path)
        self._fd = os.open(
            self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )

    @classmethod
    def from_env(cls, *, wid=None, run=None, node=None):
        """A bus attached to ``$REPRO_TELEMETRY``, or ``None`` when unset.

        The one-line enablement check for emitters living in worker
        processes (PDES partitions, pool children): the environment is
        inherited, a spec field is not — and must not be, because
        telemetry may never move a fingerprint.
        """
        path = os.environ.get(TELEMETRY_ENV)
        if not path:
            return None
        try:
            return cls(path, wid=wid, run=run, node=node)
        except OSError:
            return None  # an unwritable stream must never fail a run

    def write_record(self, record):
        line = json.dumps(
            record, separators=(",", ":"), sort_keys=True, default=str
        )
        data = (line + "\n").encode("utf-8")
        if len(data) > MAX_RECORD_BYTES:
            # Oversized records lose atomicity; drop payload, keep shape.
            record = {
                "type": record["type"], "t": record["t"],
                "pid": record["pid"], "truncated": True,
            }
            data = (json.dumps(record, separators=(",", ":"),
                               sort_keys=True) + "\n").encode("utf-8")
        try:
            os.write(self._fd, data)
        except OSError:
            pass  # telemetry is best-effort; never fail the workload

    def close(self):
        if self._fd is not None:
            try:
                os.close(self._fd)
            except OSError:
                pass
            self._fd = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


class QueueEmitter(_EmitterBase):
    """Emit records onto a ``multiprocessing`` queue instead of a file.

    The sweep engine hands one of these to each pool child; the parent
    drains the queue into its own :class:`TelemetryBus` between
    scheduling steps.  Children therefore never touch the stream file —
    the parent is the single writer for everything it spawned directly
    (PDES grandchildren attach via the environment instead, because a
    queue cannot cross their extra process boundary cheaply).
    """

    __slots__ = ("queue",)

    def __init__(self, queue, *, wid=None, run=None, node=None):
        super().__init__(wid=wid, run=run, node=node)
        self.queue = queue

    def write_record(self, record):
        try:
            self.queue.put(record)
        except Exception:
            pass  # a closed queue must never fail the run


def drain_queue(queue, bus) -> int:
    """Move every currently-queued record onto ``bus``; returns the count.

    Non-blocking: used by the engine's scheduling loop and once more
    after the last child has been joined.
    """
    import queue as queue_mod

    moved = 0
    while True:
        try:
            record = queue.get_nowait()
        except (queue_mod.Empty, OSError, EOFError):
            return moved
        bus.write_record(record)
        moved += 1

"""Low-overhead metrics primitives: counters, gauges, histograms.

A :class:`MetricsRegistry` is the numeric backbone of ``repro.obs``: every
instrumented layer (the simulation kernel, the tasking runtime, TAMPI, the
simulated MPI) records into one shared registry through cheap
``inc``/``set_gauge``/``observe`` calls.  Series are keyed by a metric name
plus a sorted label tuple (``phase``, ``variant``, ``rank``, ``call`` ...),
so one registry holds e.g. the ready-queue-depth distribution of every
rank without the layers coordinating.

Everything is plain Python floats/ints and serializes losslessly to JSON
(:meth:`MetricsRegistry.to_dict` / :meth:`from_dict`), so a registry can
ride inside a :class:`~repro.obs.ProfileReport` through the result cache.
Histograms keep count/sum/min/max plus power-of-two magnitude buckets —
enough for latency/size distributions at a few dozen bytes per series.
"""

from __future__ import annotations

import math

import numpy

#: Series kinds (the ``type`` field of a serialized series).
COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"


def _label_key(labels: dict) -> tuple:
    """Canonical (sorted, hashable) form of a label set."""
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _bucket(value: float) -> int:
    """Power-of-two magnitude bucket of a non-negative value.

    Bucket ``b`` holds values in ``[2**(b-1), 2**b)``; zero and negatives
    land in bucket 0.  Magnitude buckets keep histograms tiny while still
    separating a 3-microsecond wait from a 3-millisecond one.
    """
    if value <= 0:
        return 0
    # frexp(v) = (m, e) with m in [0.5, 1), so e == floor(log2(v)) + 1
    # exactly — no rounding edge at powers of two.
    return max(math.frexp(value)[1], 0)


class _Series:
    """One (name, labels) time series."""

    __slots__ = ("kind", "count", "total", "vmin", "vmax", "buckets")

    def __init__(self, kind):
        self.kind = kind
        self.count = 0
        self.total = 0.0
        self.vmin = None
        self.vmax = None
        self.buckets = {}  # magnitude bucket -> count (histograms only)

    # ------------------------------------------------------------------
    def add(self, value):
        self.count += 1
        self.total += value

    def set(self, value):
        self.count += 1
        self.total = value
        self.vmax = value if self.vmax is None else max(self.vmax, value)

    def observe(self, value):
        self.count += 1
        self.total += value
        self.vmin = value if self.vmin is None else min(self.vmin, value)
        self.vmax = value if self.vmax is None else max(self.vmax, value)
        b = _bucket(value)
        self.buckets[b] = self.buckets.get(b, 0) + 1

    def observe_many(self, values):
        """Bulk-record samples; same result as ``observe`` per value,
        but vectorized — this is what keeps report building cheap when
        a run folds thousands of task latencies into the registry."""
        n = len(values)
        if n == 0:
            return
        arr = numpy.asarray(values, dtype=float)
        self.count += n
        self.total += float(arr.sum())
        vmin = float(arr.min())
        vmax = float(arr.max())
        self.vmin = vmin if self.vmin is None else min(self.vmin, vmin)
        self.vmax = vmax if self.vmax is None else max(self.vmax, vmax)
        buckets = self.buckets
        if vmin <= 0:
            positive = arr[arr > 0]
            zeros = n - positive.size
            if zeros:
                buckets[0] = buckets.get(0, 0) + zeros
            arr = positive
        if arr.size:
            exps = numpy.maximum(numpy.frexp(arr)[1], 0)
            for b, c in zip(*numpy.unique(exps, return_counts=True)):
                b = int(b)
                buckets[b] = buckets.get(b, 0) + int(c)


class MetricsRegistry:
    """Labelled counters, gauges, and histograms (see module docstring)."""

    def __init__(self):
        self._series = {}  # (name, label_key) -> _Series

    # ------------------------------------------------------------------
    def _get(self, name, labels, kind) -> _Series:
        key = (name, _label_key(labels))
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _Series(kind)
        return series

    # ------------------------------------------------------------------
    # Recording (the hot-path API: one dict lookup + arithmetic)
    # ------------------------------------------------------------------
    def inc(self, name, value=1, **labels):
        """Add ``value`` to a monotonically-increasing counter."""
        self._get(name, labels, COUNTER).add(value)

    def set_gauge(self, name, value, **labels):
        """Set a gauge to its latest value (peak kept in ``vmax``)."""
        self._get(name, labels, GAUGE).set(value)

    def observe(self, name, value, **labels):
        """Record one sample into a histogram."""
        self._get(name, labels, HISTOGRAM).observe(value)

    def counter(self, name, **labels) -> _Series:
        """Pre-resolved counter handle for hot loops.

        Resolves the series once; the caller then does ``handle.add(n)``
        per event, skipping the name/label canonicalization of
        :meth:`inc`.  The series appears in dumps immediately (count 0).
        """
        return self._get(name, labels, COUNTER)

    def histogram(self, name, **labels) -> _Series:
        """Pre-resolved histogram handle (``handle.observe(v)`` per
        sample) for bulk recording — same contract as :meth:`counter`."""
        return self._get(name, labels, HISTOGRAM)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def __len__(self):
        return len(self._series)

    def value(self, name, **labels):
        """Counter total / gauge last value (``0`` for unknown series)."""
        series = self._series.get((name, _label_key(labels)))
        return series.total if series is not None else 0

    def count(self, name, **labels):
        """Number of recorded samples (``0`` for unknown series)."""
        series = self._series.get((name, _label_key(labels)))
        return series.count if series is not None else 0

    def mean(self, name, **labels):
        """Mean of a histogram's samples (``0.0`` when empty)."""
        series = self._series.get((name, _label_key(labels)))
        if series is None or series.count == 0:
            return 0.0
        return series.total / series.count

    def names(self) -> list:
        return sorted({name for name, _k in self._series})

    # ------------------------------------------------------------------
    # Merging
    # ------------------------------------------------------------------
    def absorb(self, other: "MetricsRegistry"):
        """Fold another registry's series into this one.

        Counters/histograms add (counts, totals, buckets; min/max
        combine); gauges keep the larger last-value and peak, matching
        how per-worker peaks of a partitioned run should aggregate.
        """
        for key, src in other._series.items():
            dst = self._series.get(key)
            if dst is None:
                dst = self._series[key] = _Series(src.kind)
            elif dst.kind != src.kind:
                raise ValueError(
                    f"series kind mismatch for {key}: "
                    f"{dst.kind} vs {src.kind}"
                )
            if src.kind == GAUGE:
                dst.count += src.count
                dst.total = max(dst.total, src.total)
            else:
                dst.count += src.count
                dst.total += src.total
            if src.vmin is not None:
                dst.vmin = (
                    src.vmin if dst.vmin is None else min(dst.vmin, src.vmin)
                )
            if src.vmax is not None:
                dst.vmax = (
                    src.vmax if dst.vmax is None else max(dst.vmax, src.vmax)
                )
            for b, n in src.buckets.items():
                dst.buckets[b] = dst.buckets.get(b, 0) + n

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> list:
        """Deterministic JSON-compatible dump (sorted by name, labels)."""
        out = []
        for (name, label_key), s in sorted(
            self._series.items(), key=lambda kv: kv[0]
        ):
            entry = {
                "name": name,
                "labels": [list(pair) for pair in label_key],
                "type": s.kind,
                "count": s.count,
                "total": s.total,
            }
            if s.vmin is not None:
                entry["min"] = s.vmin
            if s.vmax is not None:
                entry["max"] = s.vmax
            if s.buckets:
                entry["buckets"] = [
                    [b, n] for b, n in sorted(s.buckets.items())
                ]
            out.append(entry)
        return out

    @classmethod
    def from_dict(cls, data: list) -> "MetricsRegistry":
        reg = cls()
        for entry in data:
            labels = tuple(tuple(pair) for pair in entry.get("labels", []))
            series = _Series(entry["type"])
            series.count = entry["count"]
            series.total = entry["total"]
            series.vmin = entry.get("min")
            series.vmax = entry.get("max")
            series.buckets = {
                int(b): int(n) for b, n in entry.get("buckets", [])
            }
            reg._series[(entry["name"], labels)] = series
        return reg

    def to_csv(self) -> str:
        """The dump as CSV text (one row per series)."""
        lines = ["name,labels,type,count,total,min,max"]
        for entry in self.to_dict():
            labels = ";".join(f"{k}={v}" for k, v in entry["labels"])
            lines.append(
                f"{entry['name']},{labels},{entry['type']},"
                f"{entry['count']},{entry['total']},"
                f"{entry.get('min', '')},{entry.get('max', '')}"
            )
        return "\n".join(lines) + "\n"

"""``repro.obs`` — the observability subsystem.

Metrics registry, run profiler, critical-path / idle-gap attribution,
serializable profile reports, and exporters (Chrome trace JSON, CSV,
ASCII summaries).  Enabled per run via ``RunSpec(profile=True)``; every
hook in the instrumented layers is a no-op when profiling is off.

Above the single run sits the engine-wide telemetry layer: the
:class:`TelemetryBus` JSONL stream every engine actor emits into
(enabled via the ``REPRO_TELEMETRY`` environment or the engine's
``telemetry=`` parameter — never via the spec, so fingerprints are
untouched), the :class:`EngineReport` aggregator with ASCII and
Chrome-trace exporters, the live ``top`` view (:mod:`repro.obs.live`),
and the benchmark trend table (:mod:`repro.obs.trend`).
"""

from .attribution import (
    BLOCKERS,
    COMM_BLOCKED,
    comm_blocked_fraction,
    critical_path,
    idle_gaps,
    merge_intervals,
    overlap_length,
    phase_overlap_fraction,
)
from .engine_report import EngineReport
from .export import (
    ascii_summary,
    chrome_trace_events,
    compare_reports,
    metrics_csv,
    metrics_json,
    pipeline_summary,
    write_chrome_trace,
)
from .metrics import MetricsRegistry
from .profiler import Profiler, TaskRecord
from .report import PhaseSummary, ProfileReport, build_profile_report
from .telemetry import (
    TELEMETRY_ENV,
    QueueEmitter,
    TelemetryBus,
    TelemetryError,
    drain_queue,
    iter_records,
    read_records,
    validate_file,
    validate_record,
)

__all__ = [
    "BLOCKERS",
    "COMM_BLOCKED",
    "EngineReport",
    "MetricsRegistry",
    "PhaseSummary",
    "ProfileReport",
    "Profiler",
    "QueueEmitter",
    "TELEMETRY_ENV",
    "TaskRecord",
    "TelemetryBus",
    "TelemetryError",
    "ascii_summary",
    "build_profile_report",
    "chrome_trace_events",
    "comm_blocked_fraction",
    "compare_reports",
    "critical_path",
    "drain_queue",
    "idle_gaps",
    "iter_records",
    "merge_intervals",
    "metrics_csv",
    "metrics_json",
    "overlap_length",
    "phase_overlap_fraction",
    "pipeline_summary",
    "read_records",
    "validate_file",
    "validate_record",
    "write_chrome_trace",
]

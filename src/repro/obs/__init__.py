"""``repro.obs`` — the observability subsystem.

Metrics registry, run profiler, critical-path / idle-gap attribution,
serializable profile reports, and exporters (Chrome trace JSON, CSV,
ASCII summaries).  Enabled per run via ``RunSpec(profile=True)``; every
hook in the instrumented layers is a no-op when profiling is off.
"""

from .attribution import (
    BLOCKERS,
    COMM_BLOCKED,
    comm_blocked_fraction,
    critical_path,
    idle_gaps,
    merge_intervals,
    overlap_length,
    phase_overlap_fraction,
)
from .export import (
    ascii_summary,
    chrome_trace_events,
    compare_reports,
    metrics_csv,
    metrics_json,
    pipeline_summary,
    write_chrome_trace,
)
from .metrics import MetricsRegistry
from .profiler import Profiler, TaskRecord
from .report import PhaseSummary, ProfileReport, build_profile_report

__all__ = [
    "BLOCKERS",
    "COMM_BLOCKED",
    "MetricsRegistry",
    "PhaseSummary",
    "ProfileReport",
    "Profiler",
    "TaskRecord",
    "ascii_summary",
    "build_profile_report",
    "chrome_trace_events",
    "comm_blocked_fraction",
    "compare_reports",
    "critical_path",
    "idle_gaps",
    "merge_intervals",
    "metrics_csv",
    "metrics_json",
    "overlap_length",
    "phase_overlap_fraction",
    "pipeline_summary",
    "write_chrome_trace",
]

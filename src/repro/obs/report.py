"""Serializable profiling artifacts: :class:`ProfileReport` and
:class:`PhaseSummary`.

Both are plain-data containers with strict JSON round-trips (no numpy,
no integer dict keys), so they ride inside
:class:`~repro.core.results.RunResult` through the process pool, the
on-disk :class:`~repro.exec.ResultCache`, and sweeps — the evidence a
run produces is no longer discarded with the live tracer.

* :class:`PhaseSummary` is the compact always-affordable summary (phase
  wall times, MPI time by call, task time by phase) derived from the
  tracer; it is attached whenever a run traces or profiles.
* :class:`ProfileReport` is the full product of ``RunSpec(profile=True)``:
  the phase summary plus the critical path, the classified idle-gap
  taxonomy, the cross-phase overlap fraction, and the metrics registry
  dump.  :func:`repro.obs.export.compare_reports` renders two of them
  side by side — the quantitative form of the paper's Fig 2 vs Fig 3
  contrast.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .attribution import (
    comm_blocked_fraction,
    critical_path,
    idle_gaps,
    phase_overlap_fraction,
)
from .metrics import MetricsRegistry


def _summarize_events(tracer):
    """One pass over the trace: phase / MPI-call / task-phase times.

    Same quantities as :func:`repro.trace.analysis.phase_time` (rank 0,
    the paper's methodology), :func:`~repro.trace.analysis.mpi_time_by_call`
    and :func:`~repro.trace.analysis.task_time_by_phase`, fused into a
    single scan so building a report stays cheap on large traces.
    """
    phase_times = {}
    mpi_times = {}
    task_times = {}
    for e in tracer.events:
        kind = e.kind
        if kind == "task":
            task_times[e.phase] = (
                task_times.get(e.phase, 0.0) + (e.t1 - e.t0)
            )
        elif kind == "mpi":
            mpi_times[e.name] = mpi_times.get(e.name, 0.0) + (e.t1 - e.t0)
        elif e.rank == 0:  # phase span
            phase_times[e.name] = (
                phase_times.get(e.name, 0.0) + (e.t1 - e.t0)
            )
    return (
        dict(sorted(phase_times.items())),
        dict(sorted(mpi_times.items())),
        dict(sorted(task_times.items())),
    )


@dataclass
class PhaseSummary:
    """Compact trace-derived summary that serializes with the result."""

    #: Rank-0 wall seconds per phase (timestep, refine, ...).
    phase_times: dict = field(default_factory=dict)
    #: Seconds per MPI call name, all ranks (Waitany dominance in Fig 2).
    mpi_time_by_call: dict = field(default_factory=dict)
    #: Task execution seconds per phase tag (stencil, pack, ...).
    task_time_by_phase: dict = field(default_factory=dict)
    #: Events the tracer kept / dropped (ring-buffer mode).
    events: int = 0
    dropped_events: int = 0

    @classmethod
    def from_tracer(cls, tracer) -> "PhaseSummary":
        phase_times, mpi_times, task_times = _summarize_events(tracer)
        return cls(
            phase_times=phase_times,
            mpi_time_by_call=mpi_times,
            task_time_by_phase=task_times,
            events=len(tracer.events),
            dropped_events=getattr(tracer, "dropped_events", 0),
        )

    def to_dict(self) -> dict:
        return {
            "phase_times": dict(self.phase_times),
            "mpi_time_by_call": dict(self.mpi_time_by_call),
            "task_time_by_phase": dict(self.task_time_by_phase),
            "events": self.events,
            "dropped_events": self.dropped_events,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PhaseSummary":
        return cls(
            phase_times=dict(data.get("phase_times", {})),
            mpi_time_by_call=dict(data.get("mpi_time_by_call", {})),
            task_time_by_phase=dict(data.get("task_time_by_phase", {})),
            events=data.get("events", 0),
            dropped_events=data.get("dropped_events", 0),
        )


@dataclass
class ProfileReport:
    """Everything a profiled run learned about itself (JSON-stable)."""

    variant: str
    num_nodes: int
    ranks_per_node: int
    #: Simulated makespan (seconds).
    makespan: float
    #: Task-executing cores per rank.
    cores_per_rank: int
    #: Number of executed tasks across all ranks.
    tasks: int
    #: Point-to-point messages recorded.
    messages: int
    phase_summary: PhaseSummary = field(default_factory=PhaseSummary)
    #: Fraction of stencil-task time overlapped by communication tasks.
    overlap_fraction: float = 0.0
    #: Fraction of core-time blocked on communication (mpi_wait +
    #: tampi_release + network idle).
    comm_blocked_fraction: float = 0.0
    #: :func:`repro.obs.attribution.critical_path` output.
    critical_path: dict = field(default_factory=dict)
    #: :func:`repro.obs.attribution.idle_gaps` output.
    idle: dict = field(default_factory=dict)
    #: :meth:`MetricsRegistry.to_dict` dump.
    metrics: list = field(default_factory=list)
    #: Injected-vs-observed fault accounting (empty on clean runs and
    #: omitted from :meth:`to_dict`, keeping existing reports stable):
    #: the injector's :class:`~repro.faults.FaultStats` ledger under
    #: ``"injected"`` plus the observed ``fault_noise``/``fault_retry``
    #: idle seconds under ``"observed"``.
    faults: dict = field(default_factory=dict)
    #: Partitioned-kernel accounting (empty on serial runs and omitted
    #: from :meth:`to_dict`, keeping existing reports stable): worker
    #: count, window count, lookahead, and per-worker wall-clock
    #: ``stall_wall_seconds`` (time spent blocked at window barriers —
    #: the new idle blocker of partitioned runs) next to
    #: ``elapsed_wall_seconds``.
    pdes: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def critical_path_length(self) -> float:
        return self.critical_path.get("length", 0.0)

    @property
    def busy_fraction(self) -> float:
        return self.idle.get("busy_fraction", 0.0)

    def metrics_registry(self) -> MetricsRegistry:
        """The metrics dump rehydrated into a queryable registry."""
        return MetricsRegistry.from_dict(self.metrics)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        d = {
            "variant": self.variant,
            "num_nodes": self.num_nodes,
            "ranks_per_node": self.ranks_per_node,
            "makespan": self.makespan,
            "cores_per_rank": self.cores_per_rank,
            "tasks": self.tasks,
            "messages": self.messages,
            "phase_summary": self.phase_summary.to_dict(),
            "overlap_fraction": self.overlap_fraction,
            "comm_blocked_fraction": self.comm_blocked_fraction,
            "critical_path": dict(self.critical_path),
            "idle": dict(self.idle),
            "metrics": list(self.metrics),
        }
        if self.faults:
            d["faults"] = dict(self.faults)
        if self.pdes:
            d["pdes"] = dict(self.pdes)
        return d

    @classmethod
    def from_dict(cls, data: dict) -> "ProfileReport":
        return cls(
            variant=data["variant"],
            num_nodes=data["num_nodes"],
            ranks_per_node=data["ranks_per_node"],
            makespan=data["makespan"],
            cores_per_rank=data["cores_per_rank"],
            tasks=data["tasks"],
            messages=data["messages"],
            phase_summary=PhaseSummary.from_dict(
                data.get("phase_summary", {})
            ),
            overlap_fraction=data.get("overlap_fraction", 0.0),
            comm_blocked_fraction=data.get("comm_blocked_fraction", 0.0),
            critical_path=dict(data.get("critical_path", {})),
            idle=dict(data.get("idle", {})),
            metrics=list(data.get("metrics", [])),
            faults=dict(data.get("faults", {})),
            pdes=dict(data.get("pdes", {})),
        )


def build_profile_report(
    profiler, rs, num_ranks, cores_per_rank, makespan, tracer=None,
    fault_injector=None, pdes=None,
) -> ProfileReport:
    """Assemble a :class:`ProfileReport` from one finished run.

    ``rs`` is the *resolved* :class:`~repro.core.RunSpec`; ``tracer`` is
    the run's tracer (profiled runs always carry one internally, even
    when ``rs.trace`` is off).  ``fault_injector`` is the run's
    :class:`~repro.faults.FaultInjector` when its fault plan was active —
    its ledger is embedded next to the observed fault-blocker idle
    seconds so injected and observed delay can be reconciled.  ``pdes``
    is the partitioned-run accounting dict of
    :func:`repro.simx.parallel.run_partitioned`, absent on serial runs.
    """
    cores_by_rank = {rank: cores_per_rank for rank in range(num_ranks)}
    idle = idle_gaps(profiler, cores_by_rank, makespan)
    faults = {}
    if fault_injector is not None:
        by_blocker = idle.get("by_blocker", {})
        faults = {
            "injected": fault_injector.stats.to_dict(),
            "observed": {
                "fault_noise": by_blocker.get("fault_noise", 0.0),
                "fault_retry": by_blocker.get("fault_retry", 0.0),
            },
        }
    executed = sum(
        1 for r in profiler.tasks.values() if r.t_start is not None
    )
    return ProfileReport(
        variant=rs.variant,
        num_nodes=rs.num_nodes,
        ranks_per_node=rs.ranks_per_node,
        makespan=makespan,
        cores_per_rank=cores_per_rank,
        tasks=executed,
        messages=len(profiler.messages),
        phase_summary=(
            PhaseSummary.from_tracer(tracer)
            if tracer is not None
            else PhaseSummary()
        ),
        overlap_fraction=phase_overlap_fraction(profiler),
        comm_blocked_fraction=comm_blocked_fraction(idle),
        critical_path=critical_path(profiler),
        idle=idle,
        metrics=profiler.finalize_metrics().to_dict(),
        faults=faults,
        pdes=dict(pdes) if pdes else {},
    )

"""Critical-path and idle-gap attribution over the executed task graph.

This module turns a :class:`~repro.obs.profiler.Profiler`'s records into
the two numbers that *explain* a run's makespan:

* :func:`critical_path` — the longest weighted chain through the executed
  dependency DAG, where a task's weight is its execution span plus its
  TAMPI release-pending window.  Because a successor can only start after
  its predecessors complete, chain tasks never overlap in time, so the
  path length is provably ≤ the makespan and ≥ the heaviest single task —
  the invariants the test suite asserts.  The composition (seconds per
  phase, plus the release-pending share) says *what* bounds the run.

* :func:`idle_gaps` — every core-idle interval, classified by what the
  core was blocked on at the time (priority order on overlap ties):

  - ``mpi_wait``: the thread sat inside a blocking MPI completion call
    (``Wait``/``Waitany``/``Waitall``/``Recv`` — Fig 2's windows);
  - ``collective``: the thread sat inside a collective;
  - ``tampi_release``: some finished task was still holding its
    dependencies for an in-flight MPI request (the window TAMPI hides
    from the application but not from the timeline);
  - ``network``: a message involving this rank was in flight;
  - ``dependency``: spawned tasks existed whose predecessors had not
    completed (graph-shape starvation);
  - ``no_ready_work``: nothing outstanding — true starvation;
  - ``fault_retry`` / ``fault_noise``: the gap lines up with delay
    injected by an active :class:`~repro.faults.FaultPlan` (message
    retransmission/jitter/degradation, or CPU noise/straggler slowdown);
    these take priority on coverage ties — the injected fault is the
    root cause of the wait it manifests as.

  A rank's main thread also does untasked work (refinement control, the
  exchange ACK protocol); those inline charges are recorded by the
  profiler and count as busy time on core 0.  Ranks that execute no
  tasks at all (the MPI-only variant) have no core timeline to read gaps
  from; their blocked time is taken directly from the blocking-MPI and
  collective call intervals, which keeps the taxonomy comparable across
  variants.
"""

from __future__ import annotations

from collections import defaultdict

from .profiler import BLOCKING_MPI_CALLS

#: MPI collective trace names (RankComm traces ``kind.capitalize()``).
COLLECTIVE_CALLS = frozenset(
    ("Barrier", "Allreduce", "Reduce", "Bcast", "Gather", "Scatter",
     "Reduce_scatter", "Allgather", "Alltoall", "Dup", "Split")
)

#: Idle-gap blocker categories (classification priority order).  The
#: fault classes come first: an injected delay is the *root cause* of any
#: gap it covers as well as an MPI wait does, so on coverage ties the
#: fault wins (strictly larger coverage still wins regardless of order).
#: ``fault_retry`` is time lost to injected message delays (loss
#: retransmissions, jitter, degradation windows); ``fault_noise`` is time
#: lost waiting behind injected CPU noise/bursts/straggler slowdown
#: anywhere in the run.  Both are empty — and unobservable — on clean
#: runs, so the taxonomy of existing reports is unchanged.
BLOCKERS = ("fault_retry", "fault_noise", "mpi_wait", "collective",
            "tampi_release", "network", "dependency", "no_ready_work")

#: Categories counted as "blocked on communication" for cross-variant
#: comparison (collectives are structural and excluded; ``dependency``
#: and ``no_ready_work`` are scheduling, not communication;
#: ``fault_retry`` is injected *communication* delay and counts).
COMM_BLOCKED = ("mpi_wait", "tampi_release", "network", "fault_retry")


def merge_intervals(intervals) -> list:
    """Union of (start, end) intervals as a sorted, disjoint list."""
    merged = []
    for lo, hi in sorted(intervals):
        if hi <= lo:
            continue
        if merged and lo <= merged[-1][1]:
            merged[-1][1] = max(merged[-1][1], hi)
        else:
            merged.append([lo, hi])
    return [(lo, hi) for lo, hi in merged]


def overlap_length(gap, intervals) -> float:
    """Seconds of ``gap`` covered by a merged interval list."""
    g0, g1 = gap
    covered = 0.0
    for lo, hi in intervals:
        if lo >= g1:
            break
        if hi > g0:
            covered += min(hi, g1) - max(lo, g0)
    return covered


# ----------------------------------------------------------------------
# Critical path
# ----------------------------------------------------------------------
def critical_path(profiler) -> dict:
    """The makespan-bounding chain of the executed task DAG.

    Returns ``{"length", "tasks", "composition", "task_labels"}`` where
    ``composition`` maps phase names (plus ``"tampi_release"``) to the
    seconds they contribute along the path.  Empty runs (no executed
    tasks) return a zero-length path.
    """
    profiler.materialize_edges()
    records = profiler.executed_tasks()
    if not records:
        return {
            "length": 0.0, "tasks": 0, "composition": {}, "task_labels": []
        }

    by_tid = {r.tid: r for r in records}
    # Dependencies only ever point from earlier-completing to
    # later-starting tasks, so completion order is a topological order.
    order = sorted(records, key=lambda r: (r.t_complete, r.tid))
    length = {}
    back = {}
    for rec in order:
        best, best_pred = 0.0, None
        for pid in rec.preds:
            plen = length.get(pid)
            if plen is not None and plen > best:
                best, best_pred = plen, pid
        weight = rec.exec_time + rec.release_pending
        length[rec.tid] = best + weight
        back[rec.tid] = best_pred

    end_tid = max(length, key=lambda tid: (length[tid], tid))
    chain = []
    tid = end_tid
    while tid is not None:
        chain.append(by_tid[tid])
        tid = back[tid]
    chain.reverse()

    composition = defaultdict(float)
    for rec in chain:
        composition[rec.phase or rec.label] += rec.exec_time
        pending = rec.release_pending
        if pending > 0:
            composition["tampi_release"] += pending
    return {
        "length": length[end_tid],
        "tasks": len(chain),
        "composition": dict(sorted(composition.items())),
        "task_labels": [rec.label for rec in chain],
    }


# ----------------------------------------------------------------------
# Idle-gap taxonomy
# ----------------------------------------------------------------------
def _evidence_intervals(profiler):
    """Per-rank merged interval lists for each blocker evidence source."""
    tampi = defaultdict(list)
    dep = defaultdict(list)
    for rec in profiler.tasks.values():
        if rec.t_end is not None and rec.release_pending > 0:
            tampi[rec.rank].append((rec.t_end, rec.t_complete))
        # Spawned but not yet ready: some predecessor still running.
        ready = rec.t_ready if rec.t_ready is not None else rec.t_complete
        if ready is not None and ready > rec.t_spawn:
            dep[rec.rank].append((rec.t_spawn, ready))
    net = defaultdict(list)
    for msg in profiler.messages:
        net[msg.src].append((msg.t_post, msg.t_arrive))
        if msg.dst != msg.src:
            net[msg.dst].append((msg.t_post, msg.t_arrive))
    blocking = defaultdict(list)
    coll = defaultdict(list)
    for call in profiler.mpi_calls:
        if call.duration <= 0:
            continue
        if call.name in BLOCKING_MPI_CALLS:
            blocking[call.rank].append((call.t0, call.t1))
        elif call.name in COLLECTIVE_CALLS:
            coll[call.rank].append((call.t0, call.t1))
    # Injected message delays block both endpoints; injected CPU faults
    # are merged *globally* — a gap anywhere in the run that lines up
    # with injected noise (on any rank: a slow sender, a slow sibling
    # core) is root-caused to the fault, not to the wait it manifests as.
    fretry = defaultdict(list)
    for src, dst, t0, t1 in profiler.fault_delay_intervals:
        fretry[src].append((t0, t1))
        if dst != src:
            fretry[dst].append((t0, t1))
    fnoise = merge_intervals(
        [
            span
            for spans in profiler.fault_cpu_intervals.values()
            for span in spans
        ]
    )
    merge = merge_intervals
    return (
        tuple(
            {r: merge(v) for r, v in src.items()}
            for src in (blocking, coll, tampi, net, dep, fretry)
        )
        + (fnoise,)
    )


def _classify(gap, evidence) -> str:
    """The blocker covering most of the gap (priority order on ties)."""
    best, best_cover = "no_ready_work", 0.0
    for name, intervals in evidence:
        cover = overlap_length(gap, intervals)
        if cover > best_cover:
            best, best_cover = name, cover
    return best


def idle_gaps(profiler, cores_by_rank, makespan) -> dict:
    """Classified core-idle time (see module docstring).

    ``cores_by_rank`` maps rank → number of task-executing cores.
    Returns ``{"core_seconds", "busy_seconds", "idle_seconds",
    "busy_fraction", "by_blocker", "gap_count", "max_gap", "per_rank"}``;
    ``per_rank`` is a list (JSON-safe — no integer dict keys) of
    ``{"rank", "cores", "busy", "by_blocker"}`` rows.
    """
    busy_by_core = defaultdict(list)
    ranks_with_tasks = set()
    for rec in profiler.tasks.values():
        if rec.t_start is None:
            continue
        ranks_with_tasks.add(rec.rank)
        busy_by_core[(rec.rank, rec.core)].append((rec.t_start, rec.t_end))

    blocking, coll, tampi, net, dep, fretry, fnoise = _evidence_intervals(
        profiler
    )

    by_blocker = defaultdict(float)
    per_rank = []
    core_seconds = 0.0
    busy_seconds = 0.0
    gap_count = 0
    max_gap = 0.0

    for rank in sorted(cores_by_rank):
        ncores = cores_by_rank[rank]
        row = {"rank": rank, "cores": ncores, "busy": 0.0, "by_blocker": {}}
        core_seconds += ncores * makespan
        if rank in ranks_with_tasks and makespan > 0:
            evidence = (
                ("fault_retry", fretry.get(rank, ())),
                ("fault_noise", fnoise),
                ("mpi_wait", blocking.get(rank, ())),
                ("collective", coll.get(rank, ())),
                ("tampi_release", tampi.get(rank, ())),
                ("network", net.get(rank, ())),
                ("dependency", dep.get(rank, ())),
            )
            inline = profiler.inline.get(rank, ())
            for core in range(ncores):
                spans = list(busy_by_core.get((rank, core), ()))
                if core == 0:
                    # The main thread's untasked work (refinement control,
                    # ACK protocol, pack loops) is busy, not idle.
                    spans.extend(inline)
                merged = merge_intervals(spans)
                busy = sum(hi - lo for lo, hi in merged)
                busy_seconds += busy
                row["busy"] += busy
                cursor = 0.0
                for lo, hi in merged + [(makespan, makespan)]:
                    if lo > cursor:
                        span = lo - cursor
                        blocker = _classify((cursor, lo), evidence)
                        by_blocker[blocker] += span
                        row["by_blocker"][blocker] = (
                            row["by_blocker"].get(blocker, 0.0) + span
                        )
                        gap_count += 1
                        max_gap = max(max_gap, span)
                    cursor = max(cursor, hi)
        else:
            # No task timeline (MPI-only): blocked time is read directly
            # from the rank's blocking / collective MPI call intervals.
            waits = blocking.get(rank, ())
            colls = coll.get(rank, ())
            wait_total = sum(hi - lo for lo, hi in waits)
            coll_total = sum(hi - lo for lo, hi in colls)
            busy = max(ncores * makespan - wait_total - coll_total, 0.0)
            busy_seconds += busy
            row["busy"] = busy
            # The share of blocked waits lined up with injected message
            # delays is root-caused to the fault (so MPI-only runs
            # reconcile against the injected ledger too).
            retry_total = sum(
                overlap_length((lo, hi), fretry.get(rank, ()))
                for lo, hi in waits
            )
            wait_total -= retry_total
            if retry_total > 0:
                by_blocker["fault_retry"] += retry_total
                row["by_blocker"]["fault_retry"] = retry_total
            if wait_total > 0:
                by_blocker["mpi_wait"] += wait_total
                row["by_blocker"]["mpi_wait"] = wait_total
            if waits:
                gap_count += len(waits)
                max_gap = max(max_gap, max(hi - lo for lo, hi in waits))
            if coll_total > 0:
                by_blocker["collective"] += coll_total
                row["by_blocker"]["collective"] = coll_total
                gap_count += len(colls)
                max_gap = max(max_gap, max(hi - lo for lo, hi in colls))
        row["by_blocker"] = dict(sorted(row["by_blocker"].items()))
        per_rank.append(row)

    idle_seconds = max(core_seconds - busy_seconds, 0.0)
    return {
        "core_seconds": core_seconds,
        "busy_seconds": busy_seconds,
        "idle_seconds": idle_seconds,
        "busy_fraction": (
            busy_seconds / core_seconds if core_seconds > 0 else 0.0
        ),
        "by_blocker": dict(sorted(by_blocker.items())),
        "gap_count": gap_count,
        "max_gap": max_gap,
        "per_rank": per_rank,
    }


def comm_blocked_fraction(idle: dict) -> float:
    """Fraction of core-time blocked on communication (cross-variant)."""
    core_seconds = idle.get("core_seconds", 0.0)
    if core_seconds <= 0:
        return 0.0
    blocked = sum(
        idle.get("by_blocker", {}).get(name, 0.0) for name in COMM_BLOCKED
    )
    return blocked / core_seconds


# ----------------------------------------------------------------------
# Cross-phase overlap
# ----------------------------------------------------------------------
#: Communication-side phases for the overlap statistic.
COMM_PHASES = frozenset(
    ("pack", "unpack", "send", "recv", "intra",
     "exchange-pack", "exchange-unpack", "exchange-send", "exchange-recv")
)


def phase_overlap_fraction(profiler, compute_phase="stencil") -> float:
    """Fraction of compute-task time overlapped by communication tasks.

    The quantitative form of Fig 3's "tasks from different phases are
    overlapping": per rank, the union of ``compute_phase`` task intervals
    intersected with the union of communication-phase task intervals,
    summed over ranks and normalized by total compute time.  A variant
    with no tasks (MPI-only) scores 0.0 by construction — its compute
    and communication alternate by definition.
    """
    compute = defaultdict(list)
    comm = defaultdict(list)
    for rec in profiler.tasks.values():
        if rec.t_start is None:
            continue
        if rec.phase == compute_phase:
            compute[rec.rank].append((rec.t_start, rec.t_end))
        elif rec.phase in COMM_PHASES:
            comm[rec.rank].append((rec.t_start, rec.t_end))

    total = 0.0
    overlapped = 0.0
    for rank, spans in compute.items():
        a = merge_intervals(spans)
        b = merge_intervals(comm.get(rank, ()))
        total += sum(hi - lo for lo, hi in a)
        for span in a:
            overlapped += overlap_length(span, b)
    if total <= 0:
        return 0.0
    return overlapped / total

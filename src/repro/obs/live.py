"""Live ``top``-style view of a running sweep/pipeline telemetry stream.

Reads the telemetry JSONL (possibly still being appended to), folds it
into an :class:`~repro.obs.engine_report.EngineReport`, and renders an
in-place terminal snapshot: what each worker is running now, what is
queued, what finished, and an ETA.

Clock domain: telemetry ``t`` values are ``time.monotonic()`` of the
emitting host.  A follower on the *same* host shares that clock, so
"running for Xs" is exact; a snapshot of a finished stream falls back to
the last record's timestamp as "now".

ETA comes from the engine's own predictions (the ``predicted`` field the
engine stamps on ``job_queued``/``job_done`` records, sourced from the
:class:`~repro.exec.stats.RunStatsStore`): remaining predicted work,
minus progress on currently-running jobs, divided by the worker count.
"""

from __future__ import annotations

import json
import os
import time

from .engine_report import EngineReport
from .telemetry import TelemetryError, iter_records


def read_stream(path) -> EngineReport:
    """An :class:`EngineReport` over the stream as it stands right now.

    ``path`` is a local JSONL file, or an ``http(s)://`` serve-server
    URL — then the stream is fetched from its ``/v1/telemetry``
    endpoint, which is what lets ``top --follow`` watch a remote
    :mod:`repro.serve` instance.  Tolerant of a final line still being
    written: a corrupt *last* line is dropped; corruption earlier in
    the file still raises.
    """
    if isinstance(path, str) and path.startswith(("http://", "https://")):
        return EngineReport(_fetch_remote_records(path))
    records = []
    try:
        for record in iter_records(path, validate=False):
            records.append(record)
    except TelemetryError:
        pass  # a writer mid-append; everything before it parsed fine
    return EngineReport(records)


def _fetch_remote_records(url) -> list:
    """Telemetry records from a serve server's ``/v1/telemetry``."""
    import json
    import urllib.error
    import urllib.request

    endpoint = url.rstrip("/")
    if not endpoint.endswith("/v1/telemetry"):
        endpoint += "/v1/telemetry"
    try:
        with urllib.request.urlopen(endpoint, timeout=10.0) as response:
            raw = response.read().decode("utf-8")
    except urllib.error.URLError as exc:
        raise ValueError(
            f"cannot fetch telemetry from {endpoint}: "
            f"{getattr(exc, 'reason', exc)}"
        ) from None
    records = []
    for line in raw.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except ValueError:
            continue  # torn final line of a live stream
    return records


class TailReader:
    """Incremental follower of a live telemetry JSONL file.

    ``follow`` used to re-read the whole stream every frame through a
    single open position, which made each frame O(file) *and* — worse —
    kept serving records from a stale inode after the stream was
    compacted or rotated (:meth:`TelemetryBus` and log shippers replace
    the file via ``os.replace``): the view silently froze on the old
    generation.  The reader instead keeps the byte offset of the last
    *complete* record and, on every :meth:`poll`:

    * reads only the bytes appended since the previous poll;
    * detects **replacement** (the path's ``(st_dev, st_ino)`` no longer
      matches the open handle's) and **in-place truncation** (the file
      shrank below the committed offset) and reopens from the start of
      the new generation, discarding state from the old one;
    * leaves a torn final line buffered until its newline arrives, so a
      writer mid-append never produces a half-parsed record and a
      reopen never lands mid-line.

    A missing file (the writer is between ``unlink`` and ``replace``,
    or has not started yet) is an empty poll, not an error.
    ``records`` accumulates every complete record of the current file
    generation, ready for :class:`EngineReport`.
    """

    def __init__(self, path):
        self.path = os.fspath(path)
        self.records = []
        self._fh = None
        self._id = None     # (st_dev, st_ino) of the open handle
        self._offset = 0    # bytes consumed up to the last complete line
        self._buf = b""     # torn trailing fragment awaiting its newline

    # ------------------------------------------------------------------
    def _reset(self):
        if self._fh is not None:
            self._fh.close()
        self._fh = None
        self._id = None
        self._offset = 0
        self._buf = b""
        self.records = []

    def _reopen(self):
        """Open the current generation of the file, or stay closed."""
        try:
            fh = open(self.path, "rb")
        except OSError:
            return
        st = os.fstat(fh.fileno())
        self._fh = fh
        self._id = (st.st_dev, st.st_ino)

    # ------------------------------------------------------------------
    def poll(self) -> list:
        """Consume newly appended records; the list of *new* records.

        After a compaction/rotation or truncation the whole (new) file
        is new, so the returned list equals :attr:`records`.
        """
        try:
            st = os.stat(self.path)
        except OSError:
            # Mid-replace or not created yet: keep showing what we have.
            return []
        if self._fh is not None:
            replaced = (st.st_dev, st.st_ino) != self._id
            # Shrinking below what we already consumed (including a
            # buffered torn fragment) means our bytes are gone.
            truncated = (
                not replaced
                and st.st_size < self._offset + len(self._buf)
            )
            if replaced or truncated:
                self._reset()
        if self._fh is None:
            self._reopen()
            if self._fh is None:
                return []
        self._fh.seek(self._offset + len(self._buf))
        chunk = self._fh.read()
        if not chunk:
            return []
        self._buf += chunk
        new = []
        while True:
            line, sep, rest = self._buf.partition(b"\n")
            if not sep:
                break  # torn final line — wait for the newline
            self._buf = rest
            self._offset += len(line) + 1
            text = line.decode("utf-8", errors="replace").strip()
            if not text:
                continue
            try:
                new.append(json.loads(text))
            except ValueError as exc:
                raise TelemetryError(
                    f"{self.path}: corrupt telemetry record: {exc}"
                ) from None
        self.records.extend(new)
        return new

    def report(self) -> EngineReport:
        """An :class:`EngineReport` over every record read so far."""
        return EngineReport(self.records)

    def close(self):
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


def _eta_seconds(report, now):
    """Predicted seconds to completion, ``None`` without predictions."""
    if not report.jobs:
        return None
    remaining = 0.0
    have_any = False
    for ledger in report.ledgers.values():
        if ledger.status is not None:
            continue  # terminal
        if ledger.predicted is None:
            continue
        have_any = True
        left = ledger.predicted
        if ledger.first_launch_t is not None:
            left = max(0.0, left - (now - ledger.first_launch_t))
        remaining += left
    # Nodes the stream has not seen yet (admitted later in the DAG).
    seen = len(report.ledgers)
    unseen = max(0, (report.total or seen) - seen)
    if unseen and report.ledgers:
        done_pred = [
            ledger.predicted for ledger in report.ledgers.values()
            if ledger.predicted is not None
        ]
        if done_pred:
            remaining += unseen * (sum(done_pred) / len(done_pred))
            have_any = True
    if not have_any:
        return None
    return remaining / report.jobs


def render_top(report, *, now=None, width=72) -> str:
    """One terminal frame of the stream's current state."""
    if now is None:
        now = report.t_end if report.t_end is not None else 0.0
    finished = report.makespan is not None and any(
        r["type"] == "engine_stop" for r in report.records
    )
    elapsed = (
        report.makespan if finished
        else (now - report.t0 if report.t0 is not None else 0.0)
    )
    counts = report.status_counts()
    done = sum(
        counts.get(k, 0) for k in ("ok", "cached", "failed", "blocked")
    )
    total = report.total or len(report.ledgers)

    lines = [
        f"== {report.graph or '?'} — "
        f"{'finished' if finished else 'running'} "
        f"{done}/{total} — elapsed {elapsed:.1f}s ==",
        f"workers {report.jobs or '?'}  "
        f"ok {counts.get('ok', 0)}  cached {counts.get('cached', 0)}  "
        f"failed {counts.get('failed', 0)}  "
        f"blocked {counts.get('blocked', 0)}",
    ]
    if not finished:
        eta = _eta_seconds(report, now)
        if eta is not None:
            lines[0] = lines[0][:-3] + f", ETA {eta:.1f}s =="

    running = [
        ledger for ledger in report.ledgers.values()
        if ledger.status is None and ledger.first_launch_t is not None
    ]
    running.sort(key=lambda g: (g.wid if g.wid is not None else -2))
    if running and not finished:
        lines.append("-- running --")
        for ledger in running:
            wid = "?" if ledger.wid is None else ledger.wid
            run_for = now - ledger.first_launch_t
            pred = (
                f" / ~{ledger.predicted:.1f}s"
                if ledger.predicted is not None else ""
            )
            slots = f" x{ledger.slots}" if (ledger.slots or 1) > 1 else ""
            lines.append(
                f"  w{wid}{slots}  {ledger.node[:40]:<40} "
                f"{run_for:7.1f}s{pred}"
            )

    queued = [
        ledger for ledger in report.ledgers.values()
        if ledger.status is None and ledger.first_launch_t is None
        and ledger.queued_t is not None
    ]
    if queued and not finished:
        lines.append(f"-- queued ({len(queued)}) --")
        for ledger in sorted(queued, key=lambda g: g.queued_t)[:8]:
            pred = (
                f" ~{ledger.predicted:.1f}s"
                if ledger.predicted is not None else ""
            )
            lines.append(f"    {ledger.node[:48]}{pred}")

    retries = report.retry_ledger()
    if retries:
        lines.append(f"-- retries ({len(retries)}) --")
        for node, attempt, reason in retries[-4:]:
            lines.append(f"  {node}: attempt {attempt}: {reason[:48]}")
    return "\n".join(line[:width + 8] for line in lines) + "\n"


def follow(path, *, interval=0.5, out=None, clear=True, max_frames=None):
    """Render the stream in place until ``engine_stop`` (or EOF growth stops).

    Local files are tailed incrementally through a :class:`TailReader`,
    which survives compaction/rotation (``os.replace``) and in-place
    truncation of the stream by reopening the new generation from its
    first complete record; remote ``http(s)://`` streams are re-fetched
    whole each frame.  ``max_frames`` bounds the loop for tests.
    Returns the final frame.
    """
    import sys

    out = out or sys.stdout
    remote = isinstance(path, str) and path.startswith(
        ("http://", "https://")
    )
    tail = None if remote else TailReader(path)
    frames = 0
    frame = ""
    try:
        while True:
            if remote:
                report = read_stream(path)
            else:
                tail.poll()
                report = tail.report()
            frame = render_top(report, now=time.monotonic())
            if clear:
                out.write("\x1b[2J\x1b[H")
            out.write(frame)
            out.flush()
            frames += 1
            # A serve stream interleaves whole engine lifecycles (one
            # per pipeline job) — there, only the terminal serve_stop
            # ends the follow; a plain engine stream still ends at
            # engine_stop.
            if any(r["type"] == "serve_start" for r in report.records):
                stopped = any(
                    r["type"] == "serve_stop" for r in report.records
                )
            else:
                stopped = any(
                    r["type"] == "engine_stop" for r in report.records
                )
            if stopped or (
                max_frames is not None and frames >= max_frames
            ):
                return frame
            time.sleep(interval)
    finally:
        if tail is not None:
            tail.close()

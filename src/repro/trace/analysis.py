"""Trace analyses backing the paper's Figures 1–3.

The figures are Paraver *views*; what they communicate is quantitative:

* Fig 1 — refinement vs non-refinement phase layout; the non-refinement
  region of TAMPI+OSS is ~1.3× shorter than MPI-only's on 2 nodes;
* Fig 2 — the MPI-only timeline alternates computation with
  ``MPI_Waitany``-dominated communication windows;
* Fig 3 — the taskified timeline is dense (cores almost always running
  tasks, phases overlapping) with only occasional idle gaps under ~3 ms,
  typically followed by unpack-then-stencil sequences.

This module computes those quantities from a :class:`Tracer`.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass


def phase_time(tracer, phase_name) -> float:
    """Total duration of a named phase on rank 0 (paper's methodology)."""
    spans = [e for e in tracer.phases(phase_name) if e.rank == 0]
    return sum(e.duration for e in spans)


def mpi_time_by_call(tracer, rank=None) -> dict:
    """Total time per MPI call name (e.g. Waitany dominance in Fig 2)."""
    totals = defaultdict(float)
    for e in tracer.by_kind("mpi"):
        if rank is None or e.rank == rank:
            totals[e.name] += e.duration
    return dict(totals)


def task_time_by_phase(tracer) -> dict:
    """Total task execution time per phase tag (stencil, pack, ...)."""
    totals = defaultdict(float)
    for e in tracer.by_kind("task"):
        totals[e.phase] += e.duration
    return dict(totals)


@dataclass
class UtilizationReport:
    """Core business over a window: the 'density' of Fig 3."""

    window: tuple
    busy_fraction: float  # mean fraction of core-time running tasks
    gaps: list  # idle gaps (start, end) aggregated across cores
    max_gap: float


def core_utilization(tracer, rank, num_cores, t0, t1) -> UtilizationReport:
    """Busy fraction and idle gaps for one rank's cores in [t0, t1]."""
    if t1 <= t0:
        raise ValueError("empty window")
    spans_by_core = defaultdict(list)
    for e in tracer.by_kind("task"):
        if e.rank != rank or e.t1 <= t0 or e.t0 >= t1:
            continue
        spans_by_core[e.core].append((max(e.t0, t0), min(e.t1, t1)))

    busy_total = 0.0
    gaps = []
    for core in range(num_cores):
        spans = sorted(spans_by_core.get(core, []))
        merged = []
        for s in spans:
            if merged and s[0] <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], s[1]))
            else:
                merged.append(s)
        busy = sum(b - a for a, b in merged)
        busy_total += busy
        cursor = t0
        for a, b in merged:
            if a > cursor:
                gaps.append((cursor, a))
            cursor = b
        if cursor < t1:
            gaps.append((cursor, t1))

    window_span = (t1 - t0) * num_cores
    max_gap = max((b - a for a, b in gaps), default=0.0)
    return UtilizationReport(
        window=(t0, t1),
        busy_fraction=busy_total / window_span,
        gaps=gaps,
        max_gap=max_gap,
    )


def overlap_fraction(tracer, rank, phase_a, phase_b) -> float:
    """Fraction of phase-a task time that coincides with phase-b tasks.

    Quantifies "tasks from different phases are overlapping" (Fig 3): for
    the given rank, how much of the time some ``phase_a`` task is running
    is *also* covered by a concurrently running ``phase_b`` task.
    """
    def intervals(phase):
        spans = sorted(
            (e.t0, e.t1)
            for e in tracer.by_kind("task")
            if e.rank == rank and e.phase == phase
        )
        merged = []
        for s in spans:
            if merged and s[0] <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], s[1]))
            else:
                merged.append(list(s))
        return merged

    ia = intervals(phase_a)
    ib = intervals(phase_b)
    total_a = sum(b - a for a, b in ia)
    if total_a == 0:
        return 0.0
    overlap = 0.0
    j = 0
    for a0, a1 in ia:
        for b0, b1 in ib:
            lo = max(a0, b0)
            hi = min(a1, b1)
            if hi > lo:
                overlap += hi - lo
    return overlap / total_a


def unpack_follows_gap_fraction(tracer, rank, gap_min=0.0) -> float:
    """Fraction of idle gaps immediately followed by an unpack task.

    Fig 3's observation: after blank spaces, unpack tasks run first (data
    just arrived), then stencils.
    """
    tasks = sorted(
        (e for e in tracer.by_kind("task") if e.rank == rank),
        key=lambda e: (e.core, e.t0),
    )
    by_core = defaultdict(list)
    for e in tasks:
        by_core[e.core].append(e)

    gaps = 0
    followed = 0
    for core_tasks in by_core.values():
        for prev, nxt in zip(core_tasks, core_tasks[1:]):
            gap = nxt.t0 - prev.t1
            if gap > gap_min:
                gaps += 1
                if "unpack" in nxt.phase or "intra" in nxt.phase:
                    followed += 1
    if gaps == 0:
        return 0.0
    return followed / gaps

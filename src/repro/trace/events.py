"""Trace event model and the tracer (Extrae-like event collection)."""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass


@dataclass(frozen=True)
class TraceEvent:
    """One traced interval on a rank (and optionally a core)."""

    rank: int
    core: int  # -1 = the rank's main thread
    kind: str  # "task" | "mpi" | "phase"
    name: str
    phase: str
    t0: float
    t1: float

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


class Tracer:
    """Collects task/MPI/phase events during a simulated run.

    Mirrors what Extrae gives the paper's authors: per-thread timelines of
    task executions and MPI calls, which Paraver then renders (Figs 1–3).

    ``max_events`` bounds memory: the tracer becomes a ring buffer keeping
    only the newest ``max_events`` events and counting evictions in
    :attr:`dropped_events` (so profiling a large sweep cannot OOM).  The
    default (``None``) keeps everything in a plain list.
    """

    def __init__(self, enabled=True, max_events=None):
        if max_events is not None and max_events < 1:
            raise ValueError("max_events must be a positive int or None")
        self.enabled = enabled
        self.max_events = max_events
        self.events = [] if max_events is None else deque(maxlen=max_events)
        #: Events evicted by the ring buffer (0 in unbounded mode).
        self.dropped_events = 0
        self._phase_stack = {}

    def _record(self, event):
        if (
            self.max_events is not None
            and len(self.events) == self.max_events
        ):
            self.dropped_events += 1
        self.events.append(event)

    # ------------------------------------------------------------------
    def task_event(self, rank, core, label, phase, t0, t1):
        """Called by the tasking runtime for every executed task."""
        if self.enabled:
            self._record(
                TraceEvent(rank, core, "task", label, phase, t0, t1)
            )

    def mpi_event(self, rank, name, t0, t1, **_meta):
        """Called by the simulated MPI for every call interval."""
        if self.enabled:
            self._record(
                TraceEvent(rank, -1, "mpi", name, "mpi", t0, t1)
            )

    def phase_begin(self, rank, phase, now):
        if self.enabled:
            self._phase_stack[(rank, phase)] = now

    def phase_end(self, rank, phase, now):
        if not self.enabled:
            return
        t0 = self._phase_stack.pop((rank, phase), None)
        if t0 is not None:
            self._record(
                TraceEvent(rank, -1, "phase", phase, phase, t0, now)
            )

    # ------------------------------------------------------------------
    def by_kind(self, kind):
        return [e for e in self.events if e.kind == kind]

    def for_rank(self, rank):
        return [e for e in self.events if e.rank == rank]

    def phases(self, phase):
        return [e for e in self.events if e.kind == "phase" and e.name == phase]

    def to_records(self):
        """Events as plain dicts (for DataFrame-style analysis or JSON)."""
        return [
            {
                "rank": e.rank,
                "core": e.core,
                "kind": e.kind,
                "name": e.name,
                "phase": e.phase,
                "t0": e.t0,
                "t1": e.t1,
                "duration": e.duration,
            }
            for e in self.events
        ]

    def summarize(self) -> str:
        """One-paragraph text summary of the trace contents."""
        if not self.events:
            return "empty trace"
        kinds = {}
        for e in self.events:
            kinds[e.kind] = kinds.get(e.kind, 0) + 1
        t0 = min(e.t0 for e in self.events)
        t1 = max(e.t1 for e in self.events)
        ranks = len({e.rank for e in self.events})
        parts = ", ".join(f"{n} {k}" for k, n in sorted(kinds.items()))
        return (
            f"{len(self.events)} events ({parts}) across {ranks} ranks, "
            f"window [{t0:.6f}, {t1:.6f}] s"
        )

"""Paraver-compatible trace export and an ASCII timeline renderer.

The ``.prv`` writer emits the classic Paraver record format (header plus
state records) so traces can be inspected with BSC's tools; the ASCII
renderer produces a terminal rendition of the Fig 1–3 views.
"""

from __future__ import annotations

from collections import defaultdict

#: Stable category codes for the .prv state records.
_CATEGORY_CODES = {}


def _category_code(name: str) -> int:
    code = _CATEGORY_CODES.get(name)
    if code is None:
        code = _CATEGORY_CODES[name] = len(_CATEGORY_CODES) + 1
    return code


def write_prv(tracer, path, num_ranks, duration):
    """Write task/MPI events as a Paraver .prv trace file.

    One "application" with ``num_ranks`` tasks, one thread per distinct
    (rank, core) pair.  Times are nanoseconds.
    """
    events = sorted(
        (e for e in tracer.events if e.kind in ("task", "mpi")),
        key=lambda e: (e.t0, e.rank, e.core),
    )
    threads = sorted({(e.rank, e.core) for e in events})
    thread_index = {tc: i + 1 for i, tc in enumerate(threads)}

    ns = 1e9
    lines = []
    header = (
        f"#Paraver (01/01/2026 at 00:00):{int(duration * ns)}"
        f":1({len(threads)}):1:{num_ranks}"
    )
    lines.append(header)
    for e in events:
        thread = thread_index[(e.rank, e.core)]
        code = _category_code(f"{e.kind}:{e.phase}")
        # State record: 1:cpu:app:task:thread:t0:t1:state
        lines.append(
            f"1:{thread}:1:{e.rank + 1}:1:{int(e.t0 * ns)}:"
            f"{int(e.t1 * ns)}:{code}"
        )
    with open(path, "w") as fh:
        fh.write("\n".join(lines) + "\n")
    return path


def write_pcf(path):
    """Write the category legend (.pcf companion file)."""
    lines = ["STATES"]
    for name, code in sorted(_CATEGORY_CODES.items(), key=lambda kv: kv[1]):
        lines.append(f"{code}    {name}")
    with open(path, "w") as fh:
        fh.write("\n".join(lines) + "\n")
    return path


_PHASE_GLYPHS = {
    "stencil": "s",
    "unpack": "u",  # must precede "pack" ("pack" is a substring)
    "pack": "p",
    "intra": "i",
    "send": ">",
    "recv": "<",
    "checksum": "c",
    "split": "S",
    "consolidate": "C",
    "exchange": "x",
    "mpi": "m",
    "omp-for": "o",
}


def _glyph(phase: str) -> str:
    for key, glyph in _PHASE_GLYPHS.items():
        if key in phase:
            return glyph
    return "#"


def render_ascii(tracer, rank_cores, t0, t1, width=100):
    """Render per-(rank, core) timelines as ASCII (a terminal Paraver).

    ``rank_cores`` is a list of (rank, core) rows to draw, top to bottom.
    Each column is a time bucket painted with the glyph of the dominant
    task phase in that bucket ('.' = idle).
    """
    if t1 <= t0:
        raise ValueError("empty window")
    buckets = defaultdict(lambda: defaultdict(float))
    dt = (t1 - t0) / width
    for e in tracer.by_kind("task") + tracer.by_kind("mpi"):
        row = (e.rank, e.core)
        if row not in rank_cores or e.t1 <= t0 or e.t0 >= t1:
            continue
        b0 = max(int((e.t0 - t0) / dt), 0)
        b1 = min(int((e.t1 - t0) / dt), width - 1)
        for b in range(b0, b1 + 1):
            lo = t0 + b * dt
            hi = lo + dt
            covered = max(0.0, min(e.t1, hi) - max(e.t0, lo))
            buckets[(row, b)][_glyph(e.phase)] += covered

    out_lines = []
    for row in rank_cores:
        chars = []
        for b in range(width):
            cell = buckets.get((row, b))
            if not cell:
                chars.append(".")
            else:
                chars.append(max(cell.items(), key=lambda kv: kv[1])[0])
        rank, core = row
        label = f"r{rank:03d}c{core:+03d} "
        out_lines.append(label + "".join(chars))
    return "\n".join(out_lines)


def legend() -> str:
    """Glyph legend for :func:`render_ascii`."""
    pairs = [f"{g}={k}" for k, g in _PHASE_GLYPHS.items()]
    return "legend: " + "  ".join(pairs) + "  .=idle"

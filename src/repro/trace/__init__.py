"""``repro.trace`` — Extrae/Paraver-like tracing and trace analysis.

Backs the paper's Figures 1–3: event collection during simulated runs,
Paraver ``.prv``/``.pcf`` export, an ASCII timeline renderer, and the
quantitative analyses (phase times, MPI-call breakdown, core utilization,
idle gaps, cross-phase overlap).
"""

from .analysis import (
    UtilizationReport,
    core_utilization,
    mpi_time_by_call,
    overlap_fraction,
    phase_time,
    task_time_by_phase,
    unpack_follows_gap_fraction,
)
from .events import TraceEvent, Tracer
from .paraver import legend, render_ascii, write_pcf, write_prv

__all__ = [
    "TraceEvent",
    "Tracer",
    "UtilizationReport",
    "core_utilization",
    "legend",
    "mpi_time_by_call",
    "overlap_fraction",
    "phase_time",
    "render_ascii",
    "task_time_by_phase",
    "unpack_follows_gap_fraction",
    "write_pcf",
    "write_prv",
]

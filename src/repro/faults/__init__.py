"""repro.faults — deterministic fault & perturbation injection.

The *plan* (:class:`FaultPlan`) is pure data riding inside
:class:`~repro.core.RunSpec`; the *injector* (:class:`FaultInjector`) is
the per-run machinery the driver threads through the tasking runtime and
the simulated MPI world.  See the module docstrings for the contract.
"""

from .injectors import FaultInjector, FaultRng, FaultStats, FaultyNoise
from .plan import (
    MAX_MESSAGE_LOSS_RATE,
    FaultPlan,
    noise_plan,
    straggler_plan,
)

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "FaultRng",
    "FaultStats",
    "FaultyNoise",
    "MAX_MESSAGE_LOSS_RATE",
    "noise_plan",
    "straggler_plan",
]

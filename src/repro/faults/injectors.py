"""The runtime side of fault injection: seeded streams and hook points.

One :class:`FaultInjector` is instantiated per run from the spec's
:class:`~repro.faults.plan.FaultPlan` and threaded through the stack by
:func:`repro.core.driver.execute`:

* the tasking runtime wraps its per-rank noise model in a
  :class:`FaultyNoise`, so **every** CPU charge — task bodies, dispatch
  overheads, and inline main-thread work — funnels through
  :meth:`FaultInjector.cpu_stretch`;
* the simulated MPI world calls :meth:`FaultInjector.message_delay` when
  posting each point-to-point message, so degradation windows, jitter,
  and loss-retry delays land directly in the :mod:`repro.simx` event
  timing that drives request completion — and therefore every blocking
  wait *and* every TAMPI release path downstream.

Determinism: every stochastic decision draws from an LCG stream keyed by
``(plan.seed, fault kind, rank)`` via a splitmix64 mix.  Streams are
per-kind so enabling message loss never shifts the jitter draws, and
per-rank so rank-local event orderings cannot leak across ranks.  The
simulation itself is deterministic, hence so is the sequence of hook
calls — the whole faulted run is bit-reproducible for a given
``(spec, seed)`` and the test suite enforces it.

The injector also keeps :class:`FaultStats` — the *injected* delay
ledger that :mod:`repro.obs` reconciles against the *observed* idle-gap
attribution (blocker classes ``fault_noise`` / ``fault_retry``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

_LCG_MULT = 6364136223846793005
_LCG_INC = 1442695040888963407
_MASK64 = (1 << 64) - 1


def _splitmix64(x: int) -> int:
    """One splitmix64 scramble step (seeds the per-stream LCG states)."""
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (x ^ (x >> 31)) & _MASK64


class FaultRng:
    """A tiny deterministic uniform stream (same LCG as the noise model)."""

    __slots__ = ("_state",)

    def __init__(self, seed: int, kind: str, rank: int):
        tag = sum(ord(c) << (8 * i) for i, c in enumerate(kind[:8]))
        state = _splitmix64(seed & _MASK64)
        state = _splitmix64(state ^ tag)
        self._state = _splitmix64(state ^ (rank & _MASK64))

    def uniform(self) -> float:
        """The next sample in [0, 1)."""
        self._state = (self._state * _LCG_MULT + _LCG_INC) & _MASK64
        return self._state / 2.0**64


@dataclass
class FaultStats:
    """The injected-delay ledger of one faulted run (JSON-safe).

    The float totals accumulate *per rank* and fold with ``math.fsum``,
    which is correctly rounded regardless of summation order.  That
    makes the ledger partition-invariant: a run split across PDES
    workers (:mod:`repro.simx.parallel`) accumulates each rank's stream
    on the worker that owns it, merges the per-rank dicts, and reports
    bit-identical totals to the serial run.  Event counters are plain
    ints (order-free) and sum on :meth:`merge`.
    """

    #: CPU charges that received any injected extra time.
    cpu_noise_events: int = 0
    #: Injected OS-noise bursts.
    cpu_bursts: int = 0
    #: Messages that received any injected delay.
    messages_delayed: int = 0
    #: Messages that crossed a degradation window.
    messages_degraded: int = 0
    #: Transient losses (= retransmissions) across all messages.
    messages_lost: int = 0
    #: Injected CPU seconds keyed by the stretched rank.
    cpu_seconds_by_rank: dict = field(default_factory=dict)
    #: Injected in-flight seconds keyed by the *sending* rank.
    network_seconds_by_rank: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def injected_cpu_seconds(self) -> float:
        """Extra CPU seconds injected (noise + bursts + stragglers)."""
        return math.fsum(self.cpu_seconds_by_rank.values())

    @property
    def injected_network_seconds(self) -> float:
        """Extra in-flight seconds injected into messages (degradation
        + jitter + loss-retry delays)."""
        return math.fsum(self.network_seconds_by_rank.values())

    def add_cpu(self, rank: int, extra: float):
        d = self.cpu_seconds_by_rank
        d[rank] = d.get(rank, 0.0) + extra

    def add_network(self, rank: int, extra: float):
        d = self.network_seconds_by_rank
        d[rank] = d.get(rank, 0.0) + extra

    def merge(self, other: "FaultStats"):
        """Fold another worker's ledger in (per-rank streams live on one
        worker each, so the dicts are disjoint — but plain addition keeps
        this correct even if they were not)."""
        self.cpu_noise_events += other.cpu_noise_events
        self.cpu_bursts += other.cpu_bursts
        self.messages_delayed += other.messages_delayed
        self.messages_degraded += other.messages_degraded
        self.messages_lost += other.messages_lost
        for rank, v in other.cpu_seconds_by_rank.items():
            self.add_cpu(rank, v)
        for rank, v in other.network_seconds_by_rank.items():
            self.add_network(rank, v)

    def to_dict(self) -> dict:
        return {
            "injected_cpu_seconds": self.injected_cpu_seconds,
            "cpu_noise_events": self.cpu_noise_events,
            "cpu_bursts": self.cpu_bursts,
            "injected_network_seconds": self.injected_network_seconds,
            "messages_delayed": self.messages_delayed,
            "messages_degraded": self.messages_degraded,
            "messages_lost": self.messages_lost,
        }


class FaultInjector:
    """Executes one :class:`FaultPlan` against one simulated run."""

    def __init__(self, plan, network, num_ranks, profiler=None):
        self.plan = plan
        #: The run's (scaled) :class:`~repro.machine.NetworkSpec` —
        #: degradation extras are computed against its base latencies
        #: and bandwidths.
        self.network = network
        self.num_ranks = num_ranks
        #: Optional :class:`repro.obs.Profiler`; when present the
        #: injector records per-rank injected-delay intervals that the
        #: idle-gap attribution uses as ``fault_noise`` / ``fault_retry``
        #: evidence.
        self.profiler = profiler
        self.stats = FaultStats()
        self._stragglers = frozenset(plan.straggler_ranks)
        seed = plan.seed
        self._noise_rngs = [
            FaultRng(seed, "cpunoise", r) for r in range(num_ranks)
        ]
        self._burst_rngs = [
            FaultRng(seed, "cpuburst", r) for r in range(num_ranks)
        ]
        self._jitter_rngs = [
            FaultRng(seed, "jitter", r) for r in range(num_ranks)
        ]
        self._loss_rngs = [
            FaultRng(seed, "loss", r) for r in range(num_ranks)
        ]

    # ------------------------------------------------------------------
    # CPU side (called through FaultyNoise on every charge)
    # ------------------------------------------------------------------
    def cpu_stretch(self, rank: int, seconds: float, now: float) -> float:
        """Return ``seconds`` with this rank's injected CPU faults applied.

        ``seconds`` is the baseline-noise-stretched charge beginning at
        simulated time ``now``; the injected extra is appended to the
        charge's tail, which is exactly where it sits on the timeline —
        the recorded ``fault_noise`` evidence interval is
        ``[now + seconds, now + seconds + extra]``.
        """
        if seconds <= 0:
            return seconds
        plan = self.plan
        extra = 0.0
        if rank in self._stragglers and plan.straggler_factor > 1.0:
            extra += seconds * (plan.straggler_factor - 1.0)
        if plan.cpu_noise_factor > 0:
            extra += (
                seconds
                * plan.cpu_noise_factor
                * self._noise_rngs[rank].uniform()
            )
        if plan.cpu_burst_rate > 0 and plan.cpu_burst_time > 0:
            p = min(seconds * plan.cpu_burst_rate, 1.0)
            if self._burst_rngs[rank].uniform() < p:
                extra += plan.cpu_burst_time
                self.stats.cpu_bursts += 1
        if extra <= 0:
            return seconds
        self.stats.add_cpu(rank, extra)
        self.stats.cpu_noise_events += 1
        if self.profiler is not None:
            self.profiler.fault_cpu(
                rank, now + seconds, now + seconds + extra
            )
        return seconds + extra

    # ------------------------------------------------------------------
    # Network side (called from World._post_send per message)
    # ------------------------------------------------------------------
    def _degradation_extra(self, nbytes, same_node, now) -> float:
        plan = self.plan
        if not plan.degrade_windows:
            return 0.0
        for t0, t1 in plan.degrade_windows:
            if t0 <= now < t1:
                break
        else:
            return 0.0
        net = self.network
        latency = net.latency_intra if same_node else net.latency_inter
        bw = net.bandwidth_intra if same_node else net.bandwidth_inter
        extra = latency * (plan.degrade_latency_factor - 1.0)
        extra += nbytes * (plan.degrade_bandwidth_factor - 1.0) / bw
        if extra > 0:
            self.stats.messages_degraded += 1
        return extra

    def message_delay(self, src, dst, nbytes, same_node, now) -> float:
        """Extra in-flight seconds for one message posted at ``now``.

        Combines (in order) degradation-window slowdown, per-message
        jitter, and transient-loss retransmission delays.  Streams are
        keyed by the *sending* world rank.  ``dst`` participates in no
        draw — it is accepted so the accounting hooks can attribute the
        delay to both endpoints.
        """
        plan = self.plan
        extra = self._degradation_extra(nbytes, same_node, now)
        if plan.message_jitter > 0:
            extra += plan.message_jitter * self._jitter_rngs[src].uniform()
        if plan.message_loss_rate > 0:
            timeout = plan.retry_timeout
            rng = self._loss_rngs[src]
            lost = 0
            while (
                lost < plan.max_retries
                and rng.uniform() < plan.message_loss_rate
            ):
                extra += timeout
                timeout *= plan.retry_backoff
                lost += 1
            if lost:
                self.stats.messages_lost += lost
        if extra > 0:
            self.stats.add_network(src, extra)
            self.stats.messages_delayed += 1
        return extra


class FaultyNoise:
    """A rank noise model with the fault injector layered on top.

    Drop-in replacement for :class:`~repro.machine.costmodel.NoiseModel`
    inside :class:`~repro.tasking.runtime.RankRuntime` — same
    ``stretch(seconds)`` contract, so task execution and the inline
    ``charge()`` path of :class:`~repro.core.app.BaseRankProgram` are
    both covered without either knowing faults exist.
    """

    __slots__ = ("base", "injector", "rank", "env")

    def __init__(self, base, injector, rank, env):
        self.base = base
        self.injector = injector
        self.rank = rank
        self.env = env

    @property
    def spec(self):
        """The underlying cost spec (NoiseModel interface parity)."""
        return self.base.spec

    def stretch(self, seconds: float) -> float:
        return self.injector.cpu_stretch(
            self.rank, self.base.stretch(seconds), self.env.now
        )

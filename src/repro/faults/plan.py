"""The serializable fault plan — *what* to inject, not *how*.

A :class:`FaultPlan` is a frozen, JSON-round-trippable description of
every perturbation one run should suffer:

* **CPU noise** — bounded uniform stretch of every CPU charge
  (``cpu_noise_factor``) plus rare OS-noise bursts (daemon preemptions:
  ``cpu_burst_rate`` per CPU-second, each lasting ``cpu_burst_time``),
  layered *on top of* the machine's calibrated baseline noise model;
* **stragglers** — designated ranks whose every CPU charge is multiplied
  by ``straggler_factor`` (persistent imbalance: a thermally-throttled or
  oversubscribed node);
* **network degradation windows** — simulated-time intervals during which
  point-to-point latency is multiplied by ``degrade_latency_factor`` and
  bandwidth divided by ``degrade_bandwidth_factor`` (a congested or
  failing fabric);
* **per-message jitter** — up to ``message_jitter`` extra seconds of
  delivery delay per message;
* **transient message loss** — each message is independently "lost" with
  probability ``message_loss_rate`` per attempt and retransmitted after a
  ``retry_timeout`` that backs off geometrically (``retry_backoff``),
  modelling an MPI/TAMPI layer recovering over a lossy transport.

Everything is driven by ``seed``: the same plan on the same
:class:`~repro.core.RunSpec` reproduces the same run bit-for-bit (the
injector derives independent deterministic streams per fault kind and
rank, so enabling one fault never shifts another's draws).

The plan rides inside :class:`~repro.core.RunSpec` and is emitted into
the spec's canonical JSON — and therefore its fingerprint — only when
present *and active*, so fault-off specs, their cache keys, and the
committed goldens stay byte-identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields, replace

#: Largest loss probability a plan may carry: the closest float below
#: 1.0.  ``message_loss_rate`` is a *per-attempt* probability — at
#: exactly 1.0 every attempt fails and expected delivery delay
#: diverges, so validation rejects it and :meth:`FaultPlan.scaled`
#: clamps here instead of at an arbitrary constant.  Because the clamp
#: sits at the validation boundary itself, ``scaled(1)`` is the
#: identity for every valid plan (a 0.9999 loss rate survives a
#: round-trip, which a hard 0.999 cap used to silently rewrite).
MAX_MESSAGE_LOSS_RATE = math.nextafter(1.0, 0.0)


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic, composable fault-injection parameters for one run."""

    #: Master seed of every injector stream.  Two plans differing only in
    #: seed produce different — but individually reproducible — runs.
    seed: int = 0

    # -- CPU / OS noise -----------------------------------------------
    #: Extra uniform stretch amplitude on every CPU charge (0.1 = up to
    #: +10% per charge, uniformly drawn).
    cpu_noise_factor: float = 0.0
    #: Expected injected OS-noise bursts per CPU-second of charged work
    #: (rate-normalized like the baseline noise model, so every variant
    #: receives the same expected noise per unit of work).
    cpu_burst_rate: float = 0.0
    #: Duration of one injected burst (seconds).
    cpu_burst_time: float = 2.0e-4
    #: Ranks slowed persistently (world ranks; out-of-range entries are
    #: inert, so one plan can be reused across machine sizes).
    straggler_ranks: tuple = ()
    #: Multiplier on every straggler CPU charge (1.0 = no slowdown).
    straggler_factor: float = 1.0

    # -- Network degradation windows ----------------------------------
    #: ``((t0, t1), ...)`` simulated-time windows of degraded fabric.
    degrade_windows: tuple = ()
    #: Latency multiplier inside a degradation window.
    degrade_latency_factor: float = 1.0
    #: Bandwidth divisor inside a degradation window.
    degrade_bandwidth_factor: float = 1.0

    # -- Per-message jitter and transient loss ------------------------
    #: Maximum extra delivery delay per message (uniform in [0, jitter]).
    message_jitter: float = 0.0
    #: Per-attempt probability that a message is transiently lost and
    #: must be retransmitted.
    message_loss_rate: float = 0.0
    #: Retransmission timeout after the first loss (seconds).
    retry_timeout: float = 1.0e-4
    #: Geometric backoff factor applied to the timeout per further loss.
    retry_backoff: float = 2.0
    #: Retransmission attempts before the message is delivered anyway
    #: (the simulated transport never loses a message permanently —
    #: resilience experiments measure *delay*, not data loss).
    max_retries: int = 10

    # ------------------------------------------------------------------
    def __post_init__(self):
        if not isinstance(self.seed, int) or self.seed < 0:
            raise ValueError("seed must be a non-negative int")
        for name in ("cpu_noise_factor", "cpu_burst_rate", "cpu_burst_time",
                     "message_jitter", "message_loss_rate", "retry_timeout"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        # A probability: [0, 1) — 0 <= rate is checked above, and 1.0
        # (every attempt lost) would make expected delay diverge.
        if self.message_loss_rate >= 1.0:
            raise ValueError(
                "message_loss_rate is a per-attempt probability and "
                "must be < 1"
            )
        if self.straggler_factor < 1.0:
            raise ValueError("straggler_factor must be >= 1 (a slowdown)")
        if self.degrade_latency_factor < 1.0:
            raise ValueError("degrade_latency_factor must be >= 1")
        if self.degrade_bandwidth_factor < 1.0:
            raise ValueError("degrade_bandwidth_factor must be >= 1")
        if self.retry_backoff < 1.0:
            raise ValueError("retry_backoff must be >= 1")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        object.__setattr__(
            self,
            "straggler_ranks",
            tuple(int(r) for r in self.straggler_ranks),
        )
        if any(r < 0 for r in self.straggler_ranks):
            raise ValueError("straggler_ranks must be non-negative")
        windows = []
        for window in self.degrade_windows:
            t0, t1 = window
            t0, t1 = float(t0), float(t1)
            if t0 < 0 or t1 <= t0:
                raise ValueError(
                    f"degrade window ({t0}, {t1}) must satisfy 0 <= t0 < t1"
                )
            windows.append((t0, t1))
        object.__setattr__(self, "degrade_windows", tuple(windows))

    # ------------------------------------------------------------------
    def is_active(self) -> bool:
        """Whether this plan perturbs anything at all.

        Inactive plans are normalized to ``None`` by
        :meth:`RunSpec.resolve`, so ``FaultPlan()`` and "no faults"
        fingerprint identically.
        """
        return bool(
            self.cpu_noise_factor > 0
            or (self.cpu_burst_rate > 0 and self.cpu_burst_time > 0)
            or (self.straggler_ranks and self.straggler_factor > 1.0)
            or (
                self.degrade_windows
                and (
                    self.degrade_latency_factor > 1.0
                    or self.degrade_bandwidth_factor > 1.0
                )
            )
            or self.message_jitter > 0
            or self.message_loss_rate > 0
        )

    def with_overrides(self, **kwargs) -> "FaultPlan":
        """A copy with selected fields replaced."""
        return replace(self, **kwargs)

    def scaled(self, intensity: float) -> "FaultPlan":
        """The same fault *mix* at a different intensity.

        Stochastic magnitudes (noise amplitude, burst rate, jitter) scale
        linearly without bound — they are rates and durations, not
        probabilities.  ``message_loss_rate`` *is* a probability, so its
        scaled value is clamped into the valid [0, 1) range
        (:data:`MAX_MESSAGE_LOSS_RATE`): without the clamp,
        ``noise_plan().scaled(60)`` would ask for a loss probability
        above 1 and the scaled plan's own validation would reject it.
        Multiplicative slowdowns interpolate from 1
        (``factor -> 1 + intensity * (factor - 1)``).  Windows, seeds,
        and timeouts are structural and stay fixed.  ``scaled(0)`` is
        inactive; ``scaled(1)`` is the plan itself — for *every* valid
        plan, including loss rates arbitrarily close to 1.  This is the
        knob the resilience experiments sweep.
        """
        if intensity < 0:
            raise ValueError("intensity must be >= 0")

        def interp(factor):
            return 1.0 + intensity * (factor - 1.0)

        return replace(
            self,
            cpu_noise_factor=self.cpu_noise_factor * intensity,
            cpu_burst_rate=self.cpu_burst_rate * intensity,
            straggler_factor=interp(self.straggler_factor),
            degrade_latency_factor=interp(self.degrade_latency_factor),
            degrade_bandwidth_factor=interp(self.degrade_bandwidth_factor),
            message_jitter=self.message_jitter * intensity,
            message_loss_rate=min(
                self.message_loss_rate * intensity, MAX_MESSAGE_LOSS_RATE
            ),
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-compatible dict (inverse of :meth:`from_dict`).

        Every field is emitted (canonical form) — gating on *plan*
        presence happens in :meth:`RunSpec.to_dict`, not per field.
        """
        return {
            "seed": self.seed,
            "cpu_noise_factor": self.cpu_noise_factor,
            "cpu_burst_rate": self.cpu_burst_rate,
            "cpu_burst_time": self.cpu_burst_time,
            "straggler_ranks": list(self.straggler_ranks),
            "straggler_factor": self.straggler_factor,
            "degrade_windows": [list(w) for w in self.degrade_windows],
            "degrade_latency_factor": self.degrade_latency_factor,
            "degrade_bandwidth_factor": self.degrade_bandwidth_factor,
            "message_jitter": self.message_jitter,
            "message_loss_rate": self.message_loss_rate,
            "retry_timeout": self.retry_timeout,
            "retry_backoff": self.retry_backoff,
            "max_retries": self.max_retries,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        known = {f.name for f in fields(cls)}
        bad = set(data) - known
        if bad:
            raise ValueError(f"unknown FaultPlan fields: {sorted(bad)}")
        kwargs = dict(data)
        if "straggler_ranks" in kwargs:
            kwargs["straggler_ranks"] = tuple(kwargs["straggler_ranks"])
        if "degrade_windows" in kwargs:
            kwargs["degrade_windows"] = tuple(
                tuple(w) for w in kwargs["degrade_windows"]
            )
        return cls(**kwargs)


def noise_plan(intensity: float = 1.0, seed: int = 2020) -> FaultPlan:
    """The canonical "noisy cluster" mix used by resilience experiments.

    At ``intensity=1``: +30% uniform CPU noise amplitude, ~80 OS-noise
    bursts per CPU-second of 0.2 ms each, 20 µs message jitter, and 2%
    transient message loss with a 0.1 ms retry timeout.  Sweeping
    ``intensity`` produces the degradation curves of
    :func:`repro.bench.resilience`.
    """
    return FaultPlan(
        seed=seed,
        cpu_noise_factor=0.30,
        cpu_burst_rate=80.0,
        cpu_burst_time=2.0e-4,
        message_jitter=2.0e-5,
        message_loss_rate=0.02,
        retry_timeout=1.0e-4,
        retry_backoff=2.0,
    ).scaled(intensity)


def straggler_plan(
    ranks=(0,), factor: float = 2.0, seed: int = 2020
) -> FaultPlan:
    """A pure-imbalance plan: the named ranks run ``factor``× slower."""
    return FaultPlan(
        seed=seed, straggler_ranks=tuple(ranks), straggler_factor=factor
    )

"""``TuneReport`` — the ranked, evidence-carrying outcome of one tune.

The report is the tune's *only* output and is deliberately free of
execution metadata (wall-clock, host, worker assignment, cache hits):
two runs of the same :class:`~repro.tune.TuneSpec` — cold or warm
cache, serial or parallel engine — must serialize byte-identically,
which is what lets CI diff the JSON across runs and lets
:mod:`repro.serve` memoize tunes by fingerprint.

Every entry carries the *evidence* behind its rank: the objective
value, the robustness re-score (when enabled), and the attribution
metrics (communication overlap, blocked fraction, dependency-bound
idle share) read off the candidate's profile.  Pruned and infeasible
candidates are listed with their reasons — a tune never silently
narrows its own space.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field


def _fmt_assignment(assignment) -> str:
    return " ".join(f"{k}={assignment[k]}" for k in sorted(assignment))


def _fmt_score(value) -> str:
    if value is None:
        return "-"
    return f"{value:.6g}"


@dataclass
class TuneReport:
    """Structured outcome of :func:`repro.tune.run_tune`."""

    #: Echo of the declaration, for self-contained artifacts.
    name: str
    objective: str
    strategy: str
    budget: int
    seed: int
    space: dict
    #: :meth:`TuneSpec.fingerprint` of the declaration.
    fingerprint: str
    #: The base spec evaluated as-is at full fidelity — the yardstick
    #: every ranked entry is compared against.
    baseline: dict = None
    #: Ranked candidate entries, best first.  Each:
    #: ``{"rank", "assignment", "fingerprint", "tier", "score",
    #: "metrics", "robust_score", "robustness_delta"}``.
    entries: list = field(default_factory=list)
    #: ``{"assignment", "reason", "evidence"}`` rows skipped by the
    #: attribution pruner.
    pruned: list = field(default_factory=list)
    #: ``{"assignment", "error"}`` rows the space declared but the base
    #: geometry cannot realize (e.g. a rank grid that does not divide).
    infeasible: list = field(default_factory=list)
    #: ``{"assignment", "tier", "error"}`` rows whose runs failed.
    failed: list = field(default_factory=list)
    #: Total candidate evaluations (cache hits count: same evaluation,
    #: same number — identical cold and warm).
    evaluations: int = 0
    #: In-space candidates the budget never reached.
    truncated: int = 0

    # ------------------------------------------------------------------
    @property
    def best(self):
        """The top-ranked entry (or ``None`` for an empty tune)."""
        return self.entries[0] if self.entries else None

    def improvement_over_baseline(self):
        """Best score relative to the baseline score (objective units).

        For a minimized objective this is ``baseline - best`` (positive
        = the tune found something faster); for a maximized one,
        ``best - baseline``.  ``None`` when either side is missing.
        """
        if self.best is None or not self.baseline:
            return None
        base = self.baseline.get("score")
        if base is None or self.best["score"] is None:
            return None
        from .spec import OBJECTIVES

        if OBJECTIVES[self.objective][0] == "min":
            return base - self.best["score"]
        return self.best["score"] - base

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "objective": self.objective,
            "strategy": self.strategy,
            "budget": self.budget,
            "seed": self.seed,
            "space": {a: list(v) for a, v in self.space.items()},
            "fingerprint": self.fingerprint,
            "baseline": self.baseline,
            "entries": self.entries,
            "pruned": self.pruned,
            "infeasible": self.infeasible,
            "failed": self.failed,
            "evaluations": self.evaluations,
            "truncated": self.truncated,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TuneReport":
        kwargs = dict(data)
        kwargs["space"] = {
            a: tuple(v) for a, v in dict(kwargs.get("space", {})).items()
        }
        return cls(**kwargs)

    def to_json(self) -> str:
        """Canonical JSON — byte-identical across equivalent runs."""
        return json.dumps(
            self.to_dict(), indent=2, sort_keys=True, allow_nan=False,
        ) + "\n"

    # ------------------------------------------------------------------
    def ascii(self) -> str:
        """Terminal rendering: ranked table plus the exclusion ledger."""
        lines = [
            f"== tune: {self.name} — {self.strategy} over "
            f"{len(self.space)} axes, objective {self.objective} ==",
            f"evaluations {self.evaluations}"
            + (f"  (budget left {self.truncated} unexplored)"
               if self.truncated else ""),
        ]
        if self.baseline:
            lines.append(
                f"baseline  {_fmt_assignment(self.baseline['assignment'])}"
                f"  {self.objective}={_fmt_score(self.baseline['score'])}"
            )
        headers = ["rank", "candidate", self.objective, "robust",
                   "delta", "overlap", "dep-idle"]
        rows = []
        for e in self.entries:
            metrics = e.get("metrics", {})
            delta = e.get("robustness_delta")
            rows.append((
                str(e["rank"]),
                _fmt_assignment(e["assignment"]),
                _fmt_score(e["score"]),
                _fmt_score(e.get("robust_score")),
                "-" if delta is None else f"{delta:+.1%}",
                _fmt_score(metrics.get("overlap_fraction")),
                _fmt_score(metrics.get("dependency_bound_fraction")),
            ))
        if rows:
            widths = [
                max(len(h), *(len(r[i]) for r in rows))
                for i, h in enumerate(headers)
            ]
            lines.append("  ".join(
                h.rjust(w) for h, w in zip(headers, widths)
            ))
            lines.append("  ".join("-" * w for w in widths))
            for r in rows:
                lines.append("  ".join(
                    c.rjust(w) for c, w in zip(r, widths)
                ))
        for row in self.pruned:
            lines.append(
                f"pruned    {_fmt_assignment(row['assignment'])}: "
                f"{row['reason']}"
            )
        for row in self.infeasible:
            lines.append(
                f"infeasible {_fmt_assignment(row['assignment'])}: "
                f"{row['error']}"
            )
        for row in self.failed:
            lines.append(
                f"failed    {_fmt_assignment(row['assignment'])}: "
                f"{row['error']}"
            )
        gain = self.improvement_over_baseline()
        if gain is not None:
            verdict = (
                "improves on the baseline" if gain > 0
                else "baseline already optimal" if gain == 0
                else "baseline stays best"
            )
            lines.append(
                f"best vs baseline: {gain:+.6g} {self.objective} "
                f"({verdict})"
            )
        return "\n".join(lines) + "\n"

"""The tune engine: drive a :class:`TuneSpec` through the sweep engine.

:func:`run_tune` is the only entry point.  It enumerates the feasible
candidates, lets the strategy pick what to evaluate (and at which
fidelity tier), submits each round as one batched
:class:`~repro.exec.Sweep` — so candidates share the engine's worker
pool, result cache, and duration-history store — and folds the scored
outcomes into a ranked, deterministic
:class:`~repro.tune.TuneReport`.

Three refinements ride on the basic evaluate-and-rank loop:

* **Attribution pruning** (grid/random): a candidate family whose
  lower-``ranks_per_node`` member is already *dependency-bound* — most
  of its idle attributed to ``dependency``/``no_ready_work`` by the
  profiler's idle-gap taxonomy — cannot profit from more ranks, so its
  higher-rpn siblings are skipped, with the evidence recorded.
* **Successive halving**: rungs evaluate shrinking candidate sets at
  ascending fidelity tiers (fractions of ``stages_per_ts``), promoting
  by observed objective; only the final full-fidelity rung is ranked.
* **Robustness re-scoring**: the top-``k`` finalists re-run under the
  spec's :func:`~repro.faults.noise_plan` intensity and are re-ranked
  by the noisy score, so a config that wins by a hair on a quiet
  machine cannot outrank one that degrades gracefully.

Determinism: rounds are submitted in canonical order, scores come from
the bit-deterministic simulator, and every tie breaks on the
candidate's canonical key — the report is byte-identical across worker
counts and cache states (enforced by CI's double-run diff).
"""

from __future__ import annotations

from dataclasses import replace

from ..core.spec import RunSpec
from ..exec import Sweep, SweepEngine
from .report import TuneReport
from .spec import OBJECTIVES, TuneSpec
from .strategies import canonical_key, enumerate_space, make_strategy

#: A candidate counts as dependency-bound when at least this share of
#: its idle time is attributed to ``dependency`` + ``no_ready_work``
#: (as opposed to communication or faults) — past that point idle is
#: created by the task graph itself, and more ranks only shrink the
#: per-rank work while keeping the graph's critical path.
PRUNE_THRESHOLD = 0.6


# ----------------------------------------------------------------------
# Candidate materialization
# ----------------------------------------------------------------------
def materialize(tune: TuneSpec, assignment) -> RunSpec:
    """The concrete :class:`RunSpec` of one assignment (full fidelity).

    ``spec`` axes replace RunSpec fields; ``config`` axes rebuild the
    :class:`AmrConfig`.  ``ranks_per_node`` refits the rank grid onto
    the base root grid — raising :class:`ValueError` (an *infeasible*
    candidate) when the grid does not divide, exactly like
    :func:`repro.bench.fit_grid` does for the experiment builders.
    """
    from ..bench.inputs import fit_grid

    base = tune.base
    cfg = base.config
    cfg_changes = {}
    spec_changes = {}
    if "nx" in assignment:
        edge = int(assignment["nx"])
        cfg_changes.update(nx=edge, ny=edge, nz=edge)
    if "max_comm_tasks" in assignment:
        cfg_changes["max_comm_tasks"] = int(assignment["max_comm_tasks"])
    for axis in ("variant", "scheduler"):
        if axis in assignment:
            spec_changes[axis] = assignment[axis]
    if "pdes_workers" in assignment:
        spec_changes["pdes_workers"] = int(assignment["pdes_workers"])
    if "ranks_per_node" in assignment:
        rpn = int(assignment["ranks_per_node"])
        root = cfg.root_dims
        px, py, pz = fit_grid(base.num_nodes * rpn, root)
        cfg_changes.update(
            npx=px, npy=py, npz=pz,
            init_x=root[0] // px,
            init_y=root[1] // py,
            init_z=root[2] // pz,
        )
        spec_changes["ranks_per_node"] = rpn
    if cfg_changes:
        spec_changes["config"] = cfg.with_overrides(**cfg_changes)
    return replace(base, **spec_changes) if spec_changes else base


def with_tier(spec: RunSpec, tier: float) -> RunSpec:
    """``spec`` at fidelity ``tier``: ``stages_per_ts`` scaled down.

    Tier 1.0 is the spec itself; lower tiers run the same mesh and
    refinement schedule over proportionally fewer stages — cheap
    *relative* signal for halving rungs, never the ranked number.
    """
    if tier >= 1.0:
        return spec
    cfg = spec.config
    stages = max(1, round(cfg.stages_per_ts * tier))
    if stages == cfg.stages_per_ts:
        return spec
    return replace(spec, config=cfg.with_overrides(stages_per_ts=stages))


# ----------------------------------------------------------------------
# Scoring and attribution evidence
# ----------------------------------------------------------------------
def _score(tune: TuneSpec, result):
    """The objective value of one successful result (``None`` if the
    objective's source is unavailable)."""
    source = OBJECTIVES[tune.objective][1]
    if source == "result":
        return float(getattr(result, tune.objective))
    profile = result.profile
    if profile is None:
        return None
    return float(getattr(profile, tune.objective))


def dependency_bound_fraction(profile):
    """Share of a profile's idle attributed to the task graph itself."""
    if profile is None:
        return None
    by_blocker = profile.idle.get("by_blocker", {})
    total = sum(by_blocker.values())
    if total <= 0:
        return 0.0
    bound = by_blocker.get("dependency", 0.0) + by_blocker.get(
        "no_ready_work", 0.0
    )
    return bound / total


def _metrics(result):
    """The attribution evidence attached to every ranked entry."""
    metrics = {
        "total_time": float(result.total_time),
        "gflops": float(result.gflops),
    }
    profile = result.profile
    if profile is not None:
        metrics["overlap_fraction"] = float(profile.overlap_fraction)
        metrics["comm_blocked_fraction"] = float(
            profile.comm_blocked_fraction
        )
        metrics["critical_path_length"] = float(
            profile.critical_path.get("length", 0.0)
        )
        metrics["dependency_bound_fraction"] = dependency_bound_fraction(
            profile
        )
    return metrics


def _family_key(assignment) -> str:
    """Identity of an assignment modulo ``ranks_per_node`` (the pruning
    family: members differ only in rank count)."""
    rest = {k: v for k, v in assignment.items() if k != "ranks_per_node"}
    return canonical_key(rest)


# ----------------------------------------------------------------------
# The tune loop
# ----------------------------------------------------------------------
class _Evaluation:
    """One (assignment, tier) evaluation's outcome."""

    __slots__ = ("assignment", "tier", "spec", "score", "result", "error")

    def __init__(self, assignment, tier, spec, score, result, error):
        self.assignment = assignment
        self.tier = tier
        self.spec = spec
        self.score = score
        self.result = result
        self.error = error


def run_tune(tune: TuneSpec, engine: SweepEngine = None) -> TuneReport:
    """Explore ``tune``'s space and return the ranked report.

    ``engine=None`` uses a fresh serial, uncached engine; passing a
    shared engine reuses its cache (warm tunes re-evaluate nothing),
    duration history, worker pool, and telemetry bus.  The budget
    bounds *search* evaluations; the baseline run and the finalists'
    robustness re-scores ride on top of it.
    """
    engine = engine or SweepEngine(jobs=1)
    telemetry = getattr(engine, "telemetry", None)
    minimize = tune.minimize

    candidates, infeasible = [], []
    for assignment in enumerate_space(tune.space):
        try:
            materialize(tune, assignment)
        except (ValueError, TypeError) as exc:
            infeasible.append(
                {"assignment": assignment, "error": str(exc)}
            )
        else:
            candidates.append(assignment)
    strategy = make_strategy(tune, candidates)
    if telemetry is not None:
        telemetry.emit(
            "tune_start", tune=tune.name, strategy=tune.strategy,
            objective=tune.objective, budget=tune.budget,
            space=tune.space_size(), feasible=len(candidates),
        )

    evaluations = 0
    failed = []
    round_no = 0

    def evaluate(batch, tier):
        """One batched sweep; per-assignment :class:`_Evaluation`s."""
        nonlocal evaluations, round_no
        if not batch:
            return []
        specs = [
            replace(with_tier(materialize(tune, a), tier), profile=True)
            for a in batch
        ]
        labels = [
            f"{tune.name}:{canonical_key(a)}@t{tier:g}" for a in batch
        ]
        report = engine.run(
            Sweep(specs, name=f"{tune.name}:round{round_no}",
                  labels=labels)
        )
        out = []
        for assignment, spec, outcome in zip(
            batch, specs, report.outcomes
        ):
            if outcome.ok:
                out.append(_Evaluation(
                    assignment, tier, spec,
                    _score(tune, outcome.result), outcome.result, None,
                ))
            else:
                out.append(_Evaluation(
                    assignment, tier, spec, None, None,
                    outcome.error or outcome.status,
                ))
        evaluations += len(batch)
        if telemetry is not None:
            telemetry.emit(
                "tune_round", tune=tune.name, round=round_no,
                tier=tier, evaluated=len(batch),
            )
        round_no += 1
        return out

    # Baseline: the base spec as declared, full fidelity (outside the
    # budget — it is the yardstick, not a candidate).
    baseline_spec = replace(tune.base, profile=True)
    baseline_outcome = engine.run(
        Sweep([baseline_spec], name=f"{tune.name}:baseline",
              labels=[f"{tune.name}:baseline"])
    ).outcomes[0]
    baseline = None
    if baseline_outcome.ok:
        baseline = {
            "assignment": {},
            "fingerprint": baseline_spec.fingerprint(),
            "score": _score(tune, baseline_outcome.result),
            "metrics": _metrics(baseline_outcome.result),
        }
    else:
        failed.append({
            "assignment": {}, "tier": 1.0,
            "error": baseline_outcome.error or baseline_outcome.status,
        })

    pruned = []
    finished = []  # full-fidelity _Evaluations, rankable
    if tune.strategy in ("grid", "random"):
        plan = strategy.plan
        # Ascending-rpn batches give the pruner its bite: a family's
        # cheapest member runs first, and its attribution can veto the
        # rest.  Without the axis (or pruning) the plan is one batch.
        rpn_axis = (
            tune.prune
            and len(tune.space.get("ranks_per_node", ())) > 1
        )
        if rpn_axis:
            levels = sorted({a["ranks_per_node"] for a in plan})
            batches = [
                [a for a in plan if a["ranks_per_node"] == level]
                for level in levels
            ]
        else:
            batches = [plan]
        blocked = {}  # family key -> (rpn, dep_fraction) evidence
        for batch in batches:
            survivors = []
            for assignment in batch:
                family = _family_key(assignment)
                evidence = blocked.get(family)
                if (
                    evidence is not None
                    and assignment.get("ranks_per_node", 0) > evidence[0]
                ):
                    reason = (
                        f"dominated: {evidence[1]:.0%} of idle at "
                        f"ranks_per_node={evidence[0]} is "
                        f"dependency-bound; more ranks cannot help"
                    )
                    pruned.append({
                        "assignment": assignment,
                        "reason": reason,
                        "evidence": {
                            "ranks_per_node": evidence[0],
                            "dependency_bound_fraction": evidence[1],
                            "threshold": PRUNE_THRESHOLD,
                        },
                    })
                    if telemetry is not None:
                        telemetry.emit(
                            "tune_prune", tune=tune.name,
                            candidate=canonical_key(assignment),
                            reason=reason,
                        )
                else:
                    survivors.append(assignment)
            for ev in evaluate(survivors, 1.0):
                finished.append(ev)
                if ev.error is not None or not rpn_axis:
                    continue
                fraction = dependency_bound_fraction(ev.result.profile)
                if fraction is None or fraction < PRUNE_THRESHOLD:
                    continue
                family = _family_key(ev.assignment)
                rpn = ev.assignment["ranks_per_node"]
                if family not in blocked or rpn < blocked[family][0]:
                    blocked[family] = (rpn, fraction)
    else:  # successive halving
        rung_batch = strategy.initial()
        for rung, tier in enumerate(tune.tiers):
            evals = evaluate(rung_batch, tier)
            if tier >= 1.0:
                finished.extend(evals)
            scored = [(ev.assignment, ev.score) for ev in evals]
            for ev in evals:
                if ev.error is not None:
                    failed.append({
                        "assignment": ev.assignment, "tier": tier,
                        "error": ev.error,
                    })
            rung_batch = strategy.promote(scored, rung)

    # Rank the full-fidelity evaluations (failures to the ledger).
    ranked = []
    for ev in finished:
        if ev.error is not None:
            if tune.strategy in ("grid", "random"):
                failed.append({
                    "assignment": ev.assignment, "tier": ev.tier,
                    "error": ev.error,
                })
            continue
        ranked.append(ev)

    def clean_order(ev):
        return (
            ev.score if minimize else -ev.score,
            canonical_key(ev.assignment),
        )

    ranked.sort(key=clean_order)

    # Robustness pass: re-score the finalists under injected noise and
    # let the noisy ordering decide among them.
    robust_scores = {}
    if tune.robustness > 0 and ranked:
        from ..faults import noise_plan

        finalists = ranked[:tune.top_k]
        plan = noise_plan(tune.robustness, seed=tune.fault_seed)
        specs = [replace(ev.spec, faults=plan) for ev in finalists]
        report = engine.run(Sweep(
            specs, name=f"{tune.name}:robustness",
            labels=[
                f"{tune.name}:robust:{canonical_key(ev.assignment)}"
                for ev in finalists
            ],
        ))
        evaluations += len(specs)
        for ev, outcome in zip(finalists, report.outcomes):
            if outcome.ok:
                robust_scores[canonical_key(ev.assignment)] = _score(
                    tune, outcome.result
                )

        def robust_order(ev):
            key = canonical_key(ev.assignment)
            score = robust_scores.get(key)
            if score is None:
                return (1, 0.0, key)
            return (0, score if minimize else -score, key)

        ranked = (
            sorted(finalists, key=robust_order)
            + ranked[tune.top_k:]
        )

    entries = []
    for rank, ev in enumerate(ranked, start=1):
        key = canonical_key(ev.assignment)
        robust = robust_scores.get(key)
        delta = None
        if robust is not None and ev.score:
            delta = robust / ev.score - 1.0
        entries.append({
            "rank": rank,
            "assignment": ev.assignment,
            "fingerprint": ev.spec.fingerprint(),
            "tier": ev.tier,
            "score": ev.score,
            "metrics": _metrics(ev.result),
            "robust_score": robust,
            "robustness_delta": delta,
        })

    report = TuneReport(
        name=tune.name,
        objective=tune.objective,
        strategy=tune.strategy,
        budget=tune.budget,
        seed=tune.seed,
        space=tune.space,
        fingerprint=tune.fingerprint(),
        baseline=baseline,
        entries=entries,
        pruned=pruned,
        infeasible=infeasible,
        failed=failed,
        evaluations=evaluations,
        truncated=strategy.truncated,
    )
    if telemetry is not None:
        telemetry.emit(
            "tune_stop", tune=tune.name, evaluations=evaluations,
            pruned=len(pruned),
            best=(
                canonical_key(entries[0]["assignment"])
                if entries else None
            ),
        )
    return report

"""``TuneSpec`` — the serializable declaration of one design-space search.

A tune is pure data, exactly like a :class:`~repro.core.RunSpec` or a
:class:`~repro.pipeline.PipelineSpec`: a frozen, JSON-round-trippable,
seeded, fingerprinted description of *what to explore*, decoupled from
the engine that explores it (:func:`repro.tune.run_tune`).  Identical
``TuneSpec`` + seed must yield a byte-identical
:class:`~repro.tune.TuneReport` regardless of worker count or cache
state — every knob that could introduce nondeterminism (sampling,
promotion ties, pruning order) is pinned here.

The **search space** is a mapping from axis name to the candidate
values of that axis; axes are the RunSpec/AmrConfig knobs the paper's
evaluation actually varies (Section V): the parallelization variant,
the task scheduler, ranks per node (Table I), the block edge length,
the partitioned-PDES worker count, and the message-aggregation cap
(Table II's ``--max_comm_tasks``).  The **objective** is a scalar read
off each candidate's :class:`~repro.core.RunResult` (or its
:class:`~repro.obs.ProfileReport` for the communication-overlap
objectives).  The **strategy** decides which points of the space get
evaluated under the **budget**, and — for successive halving — at which
fidelity **tier** (a fraction of the full ``stages_per_ts``).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from ..core.spec import RunSpec

#: Searchable axes: name -> (kind, description).  ``spec`` axes replace
#: a :class:`RunSpec` field; ``config`` axes rebuild the
#: :class:`~repro.amr.config.AmrConfig` (``ranks_per_node``
#: additionally refits the rank grid onto the base root grid, which is
#: what makes a value *infeasible* when the grid does not divide).
AXES = {
    "variant": ("spec", "parallelization variant"),
    "scheduler": ("spec", "tasking-runtime scheduler"),
    "ranks_per_node": ("spec", "MPI ranks per node (refits rank grid)"),
    "nx": ("config", "block edge cells (nx=ny=nz)"),
    "pdes_workers": ("spec", "partitioned-PDES worker processes"),
    "max_comm_tasks": ("config", "comm tasks per neighbor/direction"),
}

#: Axes whose values are strings (the rest are positive ints).
_STR_AXES = ("variant", "scheduler")

#: objective name -> (direction, source).  ``direction`` is "min" or
#: "max"; ``source`` "result" reads the :class:`RunResult` attribute,
#: "profile" the :class:`ProfileReport` attribute (those objectives
#: force ``profile=True`` on every candidate).
OBJECTIVES = {
    "total_time": ("min", "result"),
    "gflops": ("max", "result"),
    "overlap_fraction": ("max", "profile"),
    "comm_blocked_fraction": ("min", "profile"),
}

#: Search strategies (see :mod:`repro.tune.strategies`).
STRATEGIES = ("grid", "random", "halving")


def _coerce_axis(axis, values):
    """Validated canonical value tuple for one axis."""
    values = tuple(values)
    if not values:
        raise ValueError(f"axis {axis!r} has no values")
    out = []
    for v in values:
        if axis in _STR_AXES:
            if not isinstance(v, str):
                raise ValueError(f"axis {axis!r} values must be strings")
        else:
            if isinstance(v, bool) or not isinstance(v, int):
                raise ValueError(f"axis {axis!r} values must be ints")
            if v < 0 or (v == 0 and axis != "max_comm_tasks"):
                raise ValueError(
                    f"axis {axis!r} values must be positive"
                )
        if v in out:
            raise ValueError(f"axis {axis!r} repeats value {v!r}")
        out.append(v)
    return tuple(out)


@dataclass(frozen=True)
class TuneSpec:
    """One declared design-space exploration (pure data)."""

    #: Every candidate is this spec with the assignment's axes replaced.
    base: RunSpec
    #: axis name -> tuple of candidate values (see :data:`AXES`).
    space: dict = field(default_factory=dict)
    #: One of :data:`OBJECTIVES`.
    objective: str = "total_time"
    #: One of :data:`STRATEGIES`.
    strategy: str = "grid"
    #: Maximum candidate *evaluations* (every tier counts one).  0 means
    #: "the whole space" and is only legal for the grid strategy.
    budget: int = 0
    #: Seed of every stochastic choice (random sampling, halving's
    #: initial draw).  Same spec + seed -> same report, always.
    seed: int = 0
    #: Fidelity ladder for successive halving: fractions of the base
    #: config's ``stages_per_ts``, ascending, ending at 1.0 (the full
    #: workload).  Ignored by grid/random, which evaluate at 1.0.
    tiers: tuple = (0.25, 1.0)
    #: Halving keep-fraction: each rung promotes ~1/eta of its
    #: candidates to the next tier.
    eta: int = 2
    #: Noise intensity for robustness re-scoring of the finalists
    #: (:func:`repro.faults.noise_plan`); 0 disables the pass.
    robustness: float = 0.0
    #: Seed of the robustness noise plan.
    fault_seed: int = 2020
    #: Finalists: entries re-scored under noise and reported first.
    top_k: int = 3
    #: Skip candidates dominated per the idle-gap attribution rule
    #: (higher ranks-per-node when the lower-rpn sibling is already
    #: dependency-bound).  Grid/random only.
    prune: bool = True
    name: str = "tune"

    # ------------------------------------------------------------------
    def __post_init__(self):
        if not isinstance(self.base, RunSpec):
            raise TypeError("base must be a RunSpec")
        if not self.space:
            raise ValueError("space must declare at least one axis")
        space = {}
        for axis in sorted(self.space):
            if axis not in AXES:
                raise ValueError(
                    f"unknown axis {axis!r}; choose from {sorted(AXES)}"
                )
            space[axis] = _coerce_axis(axis, self.space[axis])
        object.__setattr__(self, "space", space)
        if self.objective not in OBJECTIVES:
            raise ValueError(
                f"unknown objective {self.objective!r}; choose from "
                f"{sorted(OBJECTIVES)}"
            )
        if self.strategy not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {self.strategy!r}; choose from "
                f"{sorted(STRATEGIES)}"
            )
        if not isinstance(self.budget, int) or self.budget < 0:
            raise ValueError("budget must be a non-negative int")
        if self.budget == 0 and self.strategy != "grid":
            raise ValueError(
                f"strategy {self.strategy!r} needs an explicit budget"
            )
        if not isinstance(self.seed, int) or self.seed < 0:
            raise ValueError("seed must be a non-negative int")
        tiers = tuple(float(t) for t in self.tiers)
        if not tiers or tiers[-1] != 1.0:
            raise ValueError("tiers must end at 1.0 (the full workload)")
        if any(t <= 0 or t > 1 for t in tiers):
            raise ValueError("tiers must lie in (0, 1]")
        if any(b >= a for b, a in zip(tiers, tiers[1:])):
            raise ValueError("tiers must be strictly ascending")
        object.__setattr__(self, "tiers", tiers)
        if not isinstance(self.eta, int) or self.eta < 2:
            raise ValueError("eta must be an int >= 2")
        if self.robustness < 0:
            raise ValueError("robustness must be >= 0")
        if not isinstance(self.fault_seed, int) or self.fault_seed < 0:
            raise ValueError("fault_seed must be a non-negative int")
        if not isinstance(self.top_k, int) or self.top_k < 1:
            raise ValueError("top_k must be an int >= 1")

    # ------------------------------------------------------------------
    @property
    def minimize(self) -> bool:
        return OBJECTIVES[self.objective][0] == "min"

    @property
    def needs_profile(self) -> bool:
        """Whether the objective reads the per-run profile.  (Candidates
        are profiled regardless — pruning and the report's attribution
        evidence need it — but this flags objectives that *cannot* run
        unprofiled.)"""
        return OBJECTIVES[self.objective][1] == "profile"

    def space_size(self) -> int:
        n = 1
        for values in self.space.values():
            n *= len(values)
        return n

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-compatible canonical form (inverse of :meth:`from_dict`)."""
        return {
            "base": self.base.to_dict(),
            "space": {a: list(v) for a, v in self.space.items()},
            "objective": self.objective,
            "strategy": self.strategy,
            "budget": self.budget,
            "seed": self.seed,
            "tiers": list(self.tiers),
            "eta": self.eta,
            "robustness": self.robustness,
            "fault_seed": self.fault_seed,
            "top_k": self.top_k,
            "prune": self.prune,
            "name": self.name,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TuneSpec":
        if not isinstance(data, dict):
            raise ValueError("tune spec must be a JSON object")
        known = {
            "base", "space", "objective", "strategy", "budget", "seed",
            "tiers", "eta", "robustness", "fault_seed", "top_k",
            "prune", "name",
        }
        bad = set(data) - known
        if bad:
            raise ValueError(f"unknown TuneSpec fields: {sorted(bad)}")
        if "base" not in data or "space" not in data:
            raise ValueError("tune spec needs 'base' and 'space'")
        kwargs = dict(data)
        kwargs["base"] = RunSpec.from_dict(kwargs["base"])
        kwargs["space"] = {
            a: tuple(v) for a, v in dict(kwargs["space"]).items()
        }
        if "tiers" in kwargs:
            kwargs["tiers"] = tuple(kwargs["tiers"])
        return cls(**kwargs)

    def fingerprint(self) -> str:
        """Content hash of the tune declaration (cache/coalescing key).

        Mixes the package version in, mirroring
        :meth:`RunSpec.fingerprint` — a version bump may change what any
        candidate computes, so memoized tune results must not survive
        it.
        """
        from .. import __version__

        blob = json.dumps(
            {"tune": self.to_dict(), "version": __version__},
            sort_keys=True, separators=(",", ":"), allow_nan=False,
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

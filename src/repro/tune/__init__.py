"""``repro.tune`` — deterministic design-space exploration.

Declare *what to explore* as a :class:`TuneSpec` (a frozen, seeded,
fingerprinted search over RunSpec knobs with an objective and a
budget), hand it to :func:`run_tune`, and get back a ranked
:class:`TuneReport` whose JSON is byte-identical across worker counts
and cache states.  Strategies (grid, seeded random, successive
halving) live in :mod:`repro.tune.strategies` as pure, engine-free
objects; the loop in :mod:`repro.tune.engine` batches candidates
through the shared :class:`~repro.exec.SweepEngine`, prunes dominated
regions from the profiler's idle-gap attribution, and optionally
re-scores finalists under injected noise for robustness-aware ranking.

CLI: ``miniamr-sim tune``.  Serve: submit kind ``tune``.  Pipeline:
the ``bench.tune_report`` generator runs a tune as a DAG node.
"""

from .engine import (
    PRUNE_THRESHOLD,
    dependency_bound_fraction,
    materialize,
    run_tune,
    with_tier,
)
from .report import TuneReport
from .spec import AXES, OBJECTIVES, STRATEGIES, TuneSpec
from .strategies import (
    GridStrategy,
    RandomStrategy,
    SuccessiveHalving,
    canonical_key,
    enumerate_space,
    make_strategy,
)

__all__ = [
    "AXES",
    "GridStrategy",
    "OBJECTIVES",
    "PRUNE_THRESHOLD",
    "RandomStrategy",
    "STRATEGIES",
    "SuccessiveHalving",
    "TuneReport",
    "TuneSpec",
    "canonical_key",
    "dependency_bound_fraction",
    "enumerate_space",
    "make_strategy",
    "materialize",
    "run_tune",
    "with_tier",
]

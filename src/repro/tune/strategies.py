"""Search strategies: pure candidate-selection logic, no engine in sight.

A strategy turns a :class:`~repro.tune.TuneSpec`'s search space into a
sequence of *assignments* (axis -> value dicts) to evaluate, and — for
successive halving — decides which survivors climb to the next fidelity
tier from their *observed* scores.  Strategies never touch specs,
engines, or results: they consume ``(assignment, score)`` pairs and
emit assignments, which is what makes them property-testable in
isolation (see ``tests/test_tune_property.py``).

Determinism contract: every choice is a pure function of the candidate
list order, the seed, and the observed scores; ties break on the
candidate's canonical key.  Same inputs -> same plan, byte for byte.
"""

from __future__ import annotations

import itertools
import json
import random

from .spec import TuneSpec


def canonical_key(assignment) -> str:
    """Deterministic identity of one assignment (tie-break, dedup)."""
    return json.dumps(assignment, sort_keys=True, separators=(",", ":"))


def enumerate_space(space) -> list:
    """Every assignment of the space, in canonical grid order.

    Axes iterate in sorted-name order, values in declared order — the
    enumeration (and therefore grid truncation and seeded sampling) is
    a pure function of the space.
    """
    axes = sorted(space)
    out = []
    for combo in itertools.product(*(space[a] for a in axes)):
        out.append(dict(zip(axes, combo)))
    return out


def _sort_scored(scored, minimize):
    """Scored pairs best-first; unscored (failed) candidates last."""
    def key(pair):
        assignment, score = pair
        if score is None:
            return (1, 0.0, canonical_key(assignment))
        return (
            0,
            score if minimize else -score,
            canonical_key(assignment),
        )
    return sorted(scored, key=key)


class GridStrategy:
    """Exhaustive sweep in canonical order, truncated to the budget.

    ``truncated`` reports how many in-space candidates the budget
    dropped — a tune must never silently claim full coverage.
    """

    def __init__(self, candidates, budget=0):
        self.plan = list(candidates[:budget] if budget else candidates)
        self.truncated = max(0, len(candidates) - len(self.plan))


class RandomStrategy:
    """Seeded uniform sample of ``budget`` candidates, no replacement."""

    def __init__(self, candidates, budget, seed):
        rng = random.Random(seed)
        k = min(budget, len(candidates))
        self.plan = rng.sample(list(candidates), k)
        self.truncated = len(candidates) - k


class SuccessiveHalving:
    """Multi-fidelity halving: broad-and-cheap, then narrow-and-full.

    Rung ``r`` evaluates ``n_r`` candidates at fidelity ``tiers[r]``;
    the best ``n_{r+1}`` (by observed objective) are promoted.  The
    initial width ``n_0`` is the largest such that the whole ladder
    fits the budget: ``sum_r max(1, n_0 // eta**r) <= budget``.  The
    first rung is a seeded draw from the candidate list (the whole
    list when it fits).
    """

    def __init__(self, candidates, budget, seed, tiers, eta, minimize):
        self.tiers = tuple(tiers)
        self.eta = eta
        self.minimize = minimize
        n0 = 0
        while n0 < len(candidates):
            if self._ladder_cost(n0 + 1) > budget:
                break
            n0 += 1
        if n0 < 1:
            raise ValueError(
                f"budget {budget} cannot fund one candidate across "
                f"{len(self.tiers)} tiers"
            )
        self.rung_sizes = [
            max(1, n0 // self.eta ** r) for r in range(len(self.tiers))
        ]
        rng = random.Random(seed)
        self._initial = rng.sample(list(candidates), n0)
        self.truncated = len(candidates) - n0

    def _ladder_cost(self, n0):
        return sum(
            max(1, n0 // self.eta ** r) for r in range(len(self.tiers))
        )

    # ------------------------------------------------------------------
    def initial(self) -> list:
        """Rung-0 assignments (evaluated at ``tiers[0]``)."""
        return list(self._initial)

    def promote(self, scored, rung) -> list:
        """Survivors of rung ``rung`` to evaluate at ``tiers[rung+1]``.

        ``scored`` is the rung's ``(assignment, score)`` pairs; the
        best ``rung_sizes[rung+1]`` promote.  Failed candidates
        (``score=None``) never promote past a scored one.
        """
        if rung + 1 >= len(self.tiers):
            return []
        keep = self.rung_sizes[rung + 1]
        ranked = _sort_scored(scored, self.minimize)
        return [assignment for assignment, _score in ranked[:keep]]


def make_strategy(tune: TuneSpec, candidates):
    """The :class:`TuneSpec`'s strategy over ``candidates`` (the
    *feasible* assignments, in canonical enumeration order)."""
    if tune.strategy == "grid":
        return GridStrategy(candidates, tune.budget)
    if tune.strategy == "random":
        return RandomStrategy(candidates, tune.budget, tune.seed)
    return SuccessiveHalving(
        candidates, tune.budget, tune.seed, tune.tiers, tune.eta,
        tune.minimize,
    )

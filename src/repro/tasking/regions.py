"""Byte-range region handles with OmpSs-2-style overlap semantics.

A :class:`Region` names a half-open range ``[start, stop)`` of some base
object (identified by any hashable).  The :class:`RegionSpace` used by the
dependency tracker fragments each base into disjoint segments on demand, so
two accesses conflict exactly when their ranges overlap — the feature the
paper highlights as OmpSs-2's "region dependencies" (Section IV-A).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass


@dataclass(frozen=True)
class Region:
    """A half-open byte range ``[start, stop)`` of a base object."""

    base: object
    start: int
    stop: int

    def __post_init__(self):
        if self.start < 0 or self.stop <= self.start:
            raise ValueError(f"invalid region [{self.start}, {self.stop})")

    def overlaps(self, other: "Region") -> bool:
        """Whether two regions share at least one byte of the same base."""
        return (
            self.base == other.base
            and self.start < other.stop
            and other.start < self.stop
        )

    def __repr__(self):
        return f"Region({self.base!r}, {self.start}, {self.stop})"


class _Segment:
    """One disjoint fragment of a base, carrying dependency state."""

    __slots__ = ("start", "stop", "state")

    def __init__(self, start, stop, state=None):
        self.start = start
        self.stop = stop
        self.state = state

    def split(self, at):
        """Split at offset ``at`` (strictly inside); returns the right part.

        The right part receives a *clone* of the dependency state, so both
        fragments inherit the history accumulated up to the split but
        diverge afterwards.  (Sharing the object instead would let a later
        access to one fragment pollute the sibling's history, creating
        dependencies between provably disjoint accesses.)
        """
        if not self.start < at < self.stop:
            raise ValueError(f"split point {at} outside ({self.start}, {self.stop})")
        right = _Segment(at, self.stop, _clone_state(self.state))
        self.stop = at
        return right


def _clone_state(state):
    """Duck-typed state copy: ``clone()`` if provided, else ``copy()``."""
    if state is None:
        return None
    clone = getattr(state, "clone", None)
    if clone is not None:
        return clone()
    return state.copy()


class RegionSpace:
    """Disjoint-segment index for all region accesses of one base object.

    ``segments_for(start, stop, make_state)`` returns the state objects of
    every segment overlapping the range, fragmenting segments at the range
    boundaries and materializing fresh segments (with ``make_state()``) for
    uncovered gaps.
    """

    def __init__(self):
        self._starts = []  # sorted segment start offsets
        self._segments = []  # parallel list of _Segment

    def __len__(self):
        return len(self._segments)

    def _insert(self, index, segment):
        self._starts.insert(index, segment.start)
        self._segments.insert(index, segment)

    def segments_for(self, start, stop, make_state):
        """Return dependency-state objects covering ``[start, stop)``."""
        if stop <= start:
            raise ValueError("empty range")
        states = []
        # First segment that could overlap: the one whose start precedes
        # `start`, plus everything after until `stop`.
        i = bisect_right(self._starts, start) - 1
        if i >= 0:
            seg = self._segments[i]
            if seg.stop > start:
                if seg.start < start:
                    right = seg.split(start)
                    self._insert(i + 1, right)
                    i += 1
            else:
                i += 1
        else:
            i = 0

        cursor = start
        while cursor < stop:
            if i < len(self._segments):
                seg = self._segments[i]
            else:
                seg = None
            if seg is None or seg.start >= stop:
                # Gap until `stop`: one fresh segment covers it.
                fresh = _Segment(cursor, stop, make_state())
                self._insert(i, fresh)
                states.append(fresh.state)
                cursor = stop
                break
            if seg.start > cursor:
                # Gap before the next existing segment.
                fresh = _Segment(cursor, seg.start, make_state())
                self._insert(i, fresh)
                states.append(fresh.state)
                cursor = seg.start
                i += 1
                continue
            # seg.start == cursor here by construction.
            if seg.stop > stop:
                right = seg.split(stop)
                self._insert(i + 1, right)
            states.append(seg.state)
            cursor = seg.stop
            i += 1
        return states

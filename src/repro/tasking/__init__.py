"""``repro.tasking`` — an OmpSs-2-like tasking runtime on the simulator.

Provides tasks with in/out/inout dependencies (whole-object handles and
byte-range regions), per-core workers with work stealing, the
immediate-successor locality scheduler, ``taskwait``,
``taskwait_with_deps`` (the OmpSs-2 feature behind the paper's delayed
checksum), and a fork-join ``parallel_for`` layer for the MPI+OMP variant.
"""

from .deps import DependencyTracker
from .forkjoin import ForkJoinTeam
from .regions import Region, RegionSpace
from .runtime import SCHEDULERS, RankRuntime, RuntimeStats, TaskContext
from .task import AccessMode, Task, TaskState, normalize_accesses

__all__ = [
    "AccessMode",
    "DependencyTracker",
    "ForkJoinTeam",
    "RankRuntime",
    "Region",
    "RegionSpace",
    "RuntimeStats",
    "SCHEDULERS",
    "Task",
    "TaskContext",
    "TaskState",
    "normalize_accesses",
]

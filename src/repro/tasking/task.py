"""Task objects for the OmpSs-2-like tasking runtime."""

from __future__ import annotations

import inspect
from enum import Enum

from ..simx.events import Event

#: Code-object flag marking a generator function (``inspect.CO_GENERATOR``).
_CO_GENERATOR = inspect.CO_GENERATOR


class AccessMode(Enum):
    """Dependency access modes (OmpSs-2 / OpenMP ``depend`` clauses)."""

    IN = "in"
    OUT = "out"
    INOUT = "inout"
    #: OmpSs-2 ``commutative``: accesses may run in any order but not
    #: concurrently (mutual exclusion arbitrated at runtime).
    COMMUTATIVE = "commutative"


class TaskState(Enum):
    CREATED = "created"  # registered, waiting on predecessors
    READY = "ready"  # all predecessors satisfied, queued
    RUNNING = "running"  # body executing on a core
    EXECUTED = "executed"  # body done, waiting on bound MPI requests
    COMPLETED = "completed"  # dependencies released


#: Hoisted member for the per-spawn commutative scan in Task.__init__.
_COMMUTATIVE = AccessMode.COMMUTATIVE


class Task:
    """One schedulable unit of work.

    Parameters
    ----------
    label:
        Human-readable name (also the trace event name).
    cost:
        Base simulated CPU seconds of the task body.
    body:
        Optional functional payload.  Either a plain callable (runs
        atomically) or a generator *factory* ``body(ctx)`` that may yield
        simulation events (used by communication tasks calling TAMPI).
    accesses:
        Sequence of ``(AccessMode, handle)`` pairs declaring the data the
        task touches.  Handles are arbitrary hashables or
        :class:`~repro.tasking.regions.Region` byte ranges.
    affinity:
        Cache-locality key; when a core runs two consecutive tasks with the
        same affinity the second enjoys the model's IPC boost.
    locality_factor:
        Speedup divisor applied on an affinity hit (≥ 1.0).
    phase:
        Phase tag for tracing/analysis (e.g. ``"stencil"``).
    """

    __slots__ = (
        "tid",
        "env",
        "label",
        "cost",
        "body",
        "gen_body",
        "accesses",
        "affinity",
        "locality_factor",
        "phase",
        "state",
        "npred",
        "successors",
        "pending_requests",
        "_done_event",
        "is_sync",
        "commutative_handles",
        "unchecked",
    )

    _counter = 0

    def __init__(
        self,
        env,
        label,
        cost=0.0,
        body=None,
        accesses=(),
        affinity=None,
        locality_factor=1.0,
        phase=None,
    ):
        if cost < 0:
            raise ValueError("task cost must be >= 0")
        if locality_factor < 1.0:
            raise ValueError("locality_factor must be >= 1.0")
        tid = Task._counter + 1
        Task._counter = tid
        self.tid = tid
        self.env = env
        self.label = label
        self.cost = cost
        self.body = body
        #: Whether ``body`` is a generator function (resolved once here;
        #: the executor dispatches on this instead of re-inspecting the
        #: body every run).
        if body is None:
            self.gen_body = False
        else:
            code = getattr(body, "__code__", None)
            if code is not None:
                self.gen_body = bool(code.co_flags & _CO_GENERATOR)
            else:  # exotic callables (partials, callables without code)
                self.gen_body = inspect.isgeneratorfunction(body)
        self.accesses = accesses = tuple(accesses)
        self.affinity = affinity
        self.locality_factor = locality_factor
        self.phase = phase or label
        self.state = TaskState.CREATED
        self.npred = 0
        self.successors = []
        self.pending_requests = 0
        #: Completion event, materialized on first access (most tasks are
        #: joined through counters/dependencies and never need one).
        self._done_event = None
        #: True for the zero-cost marker tasks used by taskwait-with-deps.
        self.is_sync = False
        #: Exempt from access-witness checking (set by layers like the
        #: fork-join team whose tasks synchronize structurally, not through
        #: declared dependencies).
        self.unchecked = False
        #: Handles this task accesses commutatively (runtime mutual
        #: exclusion; populated from ``accesses``).  Plain loop, no
        #: comprehension: most tasks have none, and this runs per spawn.
        comm = None
        for access in accesses:
            if access[0] is _COMMUTATIVE:
                if comm is None:
                    comm = [access[1]]
                else:
                    comm.append(access[1])
        self.commutative_handles = () if comm is None else tuple(comm)

    @property
    def done_event(self) -> Event:
        """Event triggered at completion (lazily created).

        Accessing it on an already-completed task returns an event in the
        processed-success state — exactly what an eagerly-created event
        would have reached by then — so late subscribers resume
        immediately instead of waiting forever.
        """
        ev = self._done_event
        if ev is None:
            ev = self._done_event = Event(self.env)
            if self.state is TaskState.COMPLETED:
                ev._ok = True
                ev._value = self
                ev.callbacks = None
        return ev

    @property
    def completed(self) -> bool:
        return self.state is TaskState.COMPLETED

    def __repr__(self):
        return f"<Task #{self.tid} {self.label!r} {self.state.value}>"


def normalize_accesses(ins=(), outs=(), inouts=(), commutatives=()):
    """Build an access tuple from in/out/inout/commutative iterables.

    Returns a tuple so :class:`Task` can adopt it without another copy.
    """
    accesses = []
    append = accesses.append
    mode = AccessMode.IN
    for handle in ins:
        append((mode, handle))
    mode = AccessMode.OUT
    for handle in outs:
        append((mode, handle))
    mode = AccessMode.INOUT
    for handle in inouts:
        append((mode, handle))
    for handle in commutatives:
        append((_COMMUTATIVE, handle))
    return tuple(accesses)

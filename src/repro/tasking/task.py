"""Task objects for the OmpSs-2-like tasking runtime."""

from __future__ import annotations

from enum import Enum


class AccessMode(Enum):
    """Dependency access modes (OmpSs-2 / OpenMP ``depend`` clauses)."""

    IN = "in"
    OUT = "out"
    INOUT = "inout"
    #: OmpSs-2 ``commutative``: accesses may run in any order but not
    #: concurrently (mutual exclusion arbitrated at runtime).
    COMMUTATIVE = "commutative"


class TaskState(Enum):
    CREATED = "created"  # registered, waiting on predecessors
    READY = "ready"  # all predecessors satisfied, queued
    RUNNING = "running"  # body executing on a core
    EXECUTED = "executed"  # body done, waiting on bound MPI requests
    COMPLETED = "completed"  # dependencies released


class Task:
    """One schedulable unit of work.

    Parameters
    ----------
    label:
        Human-readable name (also the trace event name).
    cost:
        Base simulated CPU seconds of the task body.
    body:
        Optional functional payload.  Either a plain callable (runs
        atomically) or a generator *factory* ``body(ctx)`` that may yield
        simulation events (used by communication tasks calling TAMPI).
    accesses:
        Sequence of ``(AccessMode, handle)`` pairs declaring the data the
        task touches.  Handles are arbitrary hashables or
        :class:`~repro.tasking.regions.Region` byte ranges.
    affinity:
        Cache-locality key; when a core runs two consecutive tasks with the
        same affinity the second enjoys the model's IPC boost.
    locality_factor:
        Speedup divisor applied on an affinity hit (≥ 1.0).
    phase:
        Phase tag for tracing/analysis (e.g. ``"stencil"``).
    """

    __slots__ = (
        "tid",
        "label",
        "cost",
        "body",
        "accesses",
        "affinity",
        "locality_factor",
        "phase",
        "state",
        "npred",
        "successors",
        "pending_requests",
        "done_event",
        "is_sync",
        "commutative_handles",
        "unchecked",
    )

    _counter = 0

    def __init__(
        self,
        env,
        label,
        cost=0.0,
        body=None,
        accesses=(),
        affinity=None,
        locality_factor=1.0,
        phase=None,
    ):
        if cost < 0:
            raise ValueError("task cost must be >= 0")
        if locality_factor < 1.0:
            raise ValueError("locality_factor must be >= 1.0")
        Task._counter += 1
        self.tid = Task._counter
        self.label = label
        self.cost = cost
        self.body = body
        self.accesses = tuple(accesses)
        self.affinity = affinity
        self.locality_factor = locality_factor
        self.phase = phase or label
        self.state = TaskState.CREATED
        self.npred = 0
        self.successors = []
        self.pending_requests = 0
        self.done_event = env.event()
        #: True for the zero-cost marker tasks used by taskwait-with-deps.
        self.is_sync = False
        #: Exempt from access-witness checking (set by layers like the
        #: fork-join team whose tasks synchronize structurally, not through
        #: declared dependencies).
        self.unchecked = False
        #: Handles this task accesses commutatively (runtime mutual
        #: exclusion; populated from ``accesses``).
        self.commutative_handles = tuple(
            h for mode, h in self.accesses if mode is AccessMode.COMMUTATIVE
        )

    @property
    def completed(self) -> bool:
        return self.state is TaskState.COMPLETED

    def __repr__(self):
        return f"<Task #{self.tid} {self.label!r} {self.state.value}>"


def normalize_accesses(ins=(), outs=(), inouts=(), commutatives=()):
    """Build an access list from in/out/inout/commutative iterables."""
    accesses = []
    for handle in ins:
        accesses.append((AccessMode.IN, handle))
    for handle in outs:
        accesses.append((AccessMode.OUT, handle))
    for handle in inouts:
        accesses.append((AccessMode.INOUT, handle))
    for handle in commutatives:
        accesses.append((AccessMode.COMMUTATIVE, handle))
    return accesses

"""Data-dependency tracking for tasks.

Implements the standard last-writer/readers algorithm used by OmpSs-2 and
OpenMP ``depend`` clauses, over two kinds of handles:

* arbitrary hashables (whole-object dependencies, e.g. a mesh block's
  variable-group key) — the common case;
* :class:`~repro.tasking.regions.Region` byte ranges, resolved through a
  :class:`~repro.tasking.regions.RegionSpace` so accesses conflict exactly
  when they overlap.

Registration happens in task-creation order (program order), exactly as a
sequential thread creating tasks would register them.
"""

from __future__ import annotations

from .regions import Region, RegionSpace
from .task import AccessMode, Task, TaskState

# Hoisted enum members: register() runs once per task access and enum
# attribute lookups are comparatively slow.
_IN = AccessMode.IN
_COMMUTATIVE = AccessMode.COMMUTATIVE
_COMPLETED = TaskState.COMPLETED


class _HandleState:
    """Dependency history of one handle (or region segment)."""

    __slots__ = ("last_writer", "readers", "commuters")

    def __init__(self):
        self.last_writer = None
        self.readers = []
        self.commuters = []

    def clone(self):
        """Independent copy for a region-segment split: the fragment
        inherits the history so far but diverges from its sibling."""
        state = _HandleState()
        state.last_writer = self.last_writer
        state.readers = list(self.readers)
        state.commuters = list(self.commuters)
        return state


class DependencyTracker:
    """Computes predecessor sets and wires successor edges."""

    def __init__(self):
        self._scalar = {}
        self._region_spaces = {}

    # ------------------------------------------------------------------
    def _states_for(self, handle):
        if isinstance(handle, Region):
            space = self._region_spaces.get(handle.base)
            if space is None:
                space = self._region_spaces[handle.base] = RegionSpace()
            return space.segments_for(handle.start, handle.stop, _HandleState)
        state = self._scalar.get(handle)
        if state is None:
            state = self._scalar[handle] = _HandleState()
        return [state]

    # ------------------------------------------------------------------
    def register(self, task: Task) -> int:
        """Register ``task``'s accesses; returns its predecessor count.

        Side effects: wires ``pred.successors`` edges and sets
        ``task.npred``.

        The scalar-handle path is inlined (no per-access list through
        :meth:`_states_for`) and completion is probed through
        ``t.state is COMPLETED`` rather than the ``completed`` property —
        this method runs once per access of every task spawned.
        """
        accesses = task.accesses
        if not accesses:
            task.npred = 0
            return 0
        # Predecessors are deduplicated through a list, not a set: tasks
        # compare by identity, so membership tests are C-level pointer
        # scans, and predecessor counts are tiny (a handful of tasks).
        preds = []
        scalar = self._scalar
        for mode, handle in accesses:
            if isinstance(handle, Region):
                space = self._region_spaces.get(handle.base)
                if space is None:
                    space = self._region_spaces[handle.base] = RegionSpace()
                states = space.segments_for(
                    handle.start, handle.stop, _HandleState
                )
            else:
                state = scalar.get(handle)
                if state is None:
                    state = scalar[handle] = _HandleState()
                states = (state,)
            for state in states:
                writer = state.last_writer
                if (
                    writer is not None
                    and writer.state is not _COMPLETED
                    and writer is not task
                    and writer not in preds
                ):
                    preds.append(writer)
                if mode is _IN:
                    for c in state.commuters:
                        if (
                            c.state is not _COMPLETED
                            and c is not task
                            and c not in preds
                        ):
                            preds.append(c)
                    state.readers.append(task)
                elif mode is _COMMUTATIVE:
                    # Ordered against writers and earlier readers, but NOT
                    # against the other members of the commutative group —
                    # those are mutually excluded by the runtime lock.
                    for reader in state.readers:
                        if (
                            reader.state is not _COMPLETED
                            and reader is not task
                            and reader not in preds
                        ):
                            preds.append(reader)
                    state.commuters.append(task)
                else:  # OUT and INOUT are both treated as writes
                    for reader in state.readers:
                        if (
                            reader.state is not _COMPLETED
                            and reader is not task
                            and reader not in preds
                        ):
                            preds.append(reader)
                    for c in state.commuters:
                        if (
                            c.state is not _COMPLETED
                            and c is not task
                            and c not in preds
                        ):
                            preds.append(c)
                    state.last_writer = task
                    state.readers = []
                    state.commuters = []
        npred = len(preds)
        for pred in preds:
            pred.successors.append(task)
        task.npred = npred
        return npred

"""Data-dependency tracking for tasks.

Implements the standard last-writer/readers algorithm used by OmpSs-2 and
OpenMP ``depend`` clauses, over two kinds of handles:

* arbitrary hashables (whole-object dependencies, e.g. a mesh block's
  variable-group key) — the common case;
* :class:`~repro.tasking.regions.Region` byte ranges, resolved through a
  :class:`~repro.tasking.regions.RegionSpace` so accesses conflict exactly
  when they overlap.

Registration happens in task-creation order (program order), exactly as a
sequential thread creating tasks would register them.
"""

from __future__ import annotations

from .regions import Region, RegionSpace
from .task import AccessMode, Task


class _HandleState:
    """Dependency history of one handle (or region segment)."""

    __slots__ = ("last_writer", "readers", "commuters")

    def __init__(self):
        self.last_writer = None
        self.readers = []
        self.commuters = []

    def clone(self):
        """Independent copy for a region-segment split: the fragment
        inherits the history so far but diverges from its sibling."""
        state = _HandleState()
        state.last_writer = self.last_writer
        state.readers = list(self.readers)
        state.commuters = list(self.commuters)
        return state


class DependencyTracker:
    """Computes predecessor sets and wires successor edges."""

    def __init__(self):
        self._scalar = {}
        self._region_spaces = {}

    # ------------------------------------------------------------------
    def _states_for(self, handle):
        if isinstance(handle, Region):
            space = self._region_spaces.get(handle.base)
            if space is None:
                space = self._region_spaces[handle.base] = RegionSpace()
            return space.segments_for(handle.start, handle.stop, _HandleState)
        state = self._scalar.get(handle)
        if state is None:
            state = self._scalar[handle] = _HandleState()
        return [state]

    # ------------------------------------------------------------------
    def register(self, task: Task) -> int:
        """Register ``task``'s accesses; returns its predecessor count.

        Side effects: wires ``pred.successors`` edges and sets
        ``task.npred``.
        """
        preds = set()
        for mode, handle in task.accesses:
            for state in self._states_for(handle):
                if mode is AccessMode.IN:
                    writer = state.last_writer
                    if writer is not None and not writer.completed:
                        preds.add(writer)
                    for c in state.commuters:
                        if not c.completed:
                            preds.add(c)
                    state.readers.append(task)
                elif mode is AccessMode.COMMUTATIVE:
                    # Ordered against writers and earlier readers, but NOT
                    # against the other members of the commutative group —
                    # those are mutually excluded by the runtime lock.
                    writer = state.last_writer
                    if writer is not None and not writer.completed:
                        preds.add(writer)
                    for reader in state.readers:
                        if not reader.completed:
                            preds.add(reader)
                    state.commuters.append(task)
                else:  # OUT and INOUT are both treated as writes
                    writer = state.last_writer
                    if writer is not None and not writer.completed:
                        preds.add(writer)
                    for reader in state.readers:
                        if not reader.completed:
                            preds.add(reader)
                    for c in state.commuters:
                        if not c.completed:
                            preds.add(c)
                    state.last_writer = task
                    state.readers = []
                    state.commuters = []
        preds.discard(task)
        for pred in preds:
            pred.successors.append(task)
        task.npred = len(preds)
        return task.npred

"""Fork-join (OpenMP ``parallel for``) layer over the tasking runtime.

Used by the MPI+OMP fork-join variant: the main thread opens a parallel
region, work is divided statically among the team's cores, and an implicit
barrier closes the region.  MPI stays outside (serialized on the main
thread), which is precisely the structure whose limits the paper studies.
"""

from __future__ import annotations


class ForkJoinTeam:
    """A thread team bound to one :class:`~repro.tasking.runtime.RankRuntime`.

    Only :meth:`parallel_for` is provided — the construct miniAMR's hybrid
    fork-join variant uses (``omp for`` with static scheduling).
    """

    def __init__(self, runtime):
        self.runtime = runtime

    @property
    def num_threads(self) -> int:
        return self.runtime.num_cores

    def static_chunks(self, nitems: int):
        """OpenMP static schedule: contiguous chunks, one per thread.

        Returns a list of ``(start, stop)`` half-open index ranges (some may
        be empty when ``nitems < num_threads``).
        """
        nthreads = self.num_threads
        base, extra = divmod(nitems, nthreads)
        chunks = []
        start = 0
        for t in range(nthreads):
            size = base + (1 if t < extra else 0)
            chunks.append((start, start + size))
            start += size
        return chunks

    def parallel_for(self, costs, bodies=None, label="omp-for", phase=None):
        """Run ``len(costs)`` iterations across the team; implicit barrier.

        Parameters
        ----------
        costs:
            Per-iteration simulated CPU cost (seconds).
        bodies:
            Optional per-iteration callables (functional payload).
        label, phase:
            Trace naming.

        The region charges the fork-join open/close overhead to the main
        thread, creates one chunk task per thread (static schedule), and
        waits for all of them — the implicit barrier.
        """
        rt = self.runtime
        env = rt.env
        overhead = rt.cost_spec.forkjoin_overhead(self.num_threads)
        if overhead > 0:
            yield env.timeout(overhead / 2)

        chunks = self.static_chunks(len(costs))
        for t, (start, stop) in enumerate(chunks):
            if start == stop:
                continue
            chunk_cost = sum(costs[start:stop])
            chunk_bodies = (
                None
                if bodies is None
                else _chunk_body(bodies, start, stop)
            )
            task = yield from rt.spawn(
                f"{label}[{t}]",
                cost=chunk_cost,
                body=chunk_bodies,
                phase=phase or label,
            )
            # Fork-join chunks synchronize through the implicit barrier,
            # not through declared dependencies — exempt them from
            # access-witness checking (see repro.verify).
            task.unchecked = True
        yield from rt.taskwait()

        if overhead > 0:
            yield env.timeout(overhead / 2)


def _chunk_body(bodies, start, stop):
    def run():
        for i in range(start, stop):
            body = bodies[i]
            if body is not None:
                body()

    return run

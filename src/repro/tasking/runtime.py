"""The per-rank tasking runtime (OmpSs-2 / Nanos6-like).

One :class:`RankRuntime` manages the cores of one MPI rank:

* the **main thread** (the rank's program coroutine) conceptually occupies
  core 0; it creates tasks with :meth:`spawn` and joins them with
  :meth:`taskwait` — during which it executes ready tasks inline, exactly
  like an OmpSs-2 implicit task;
* cores 1..N-1 run **worker** processes that pull ready tasks;
* released successors are pushed to the *front* of the completing core's
  queue under the default ``"locality"`` scheduler (Nanos6's
  immediate-successor policy, which the paper credits for the IPC gain);
  the ``"fifo"`` scheduler ablates this; the seeded ``"fuzz"`` scheduler
  perturbs every free scheduling choice (pop order, queue placement,
  release order, idle-worker wakeup) to explore alternative *legal*
  schedules — the verification tool behind :mod:`repro.verify`;
* tasks may bind simulated-MPI requests (via :mod:`repro.tampi`); their
  dependencies are released only when the body finished *and* every bound
  request completed.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field

from ..machine.costmodel import CostSpec, NoiseModel
from .deps import DependencyTracker
from .task import Task, TaskState, normalize_accesses

# Hoisted enum members for the per-task-execution paths.
_RUNNING = TaskState.RUNNING
_EXECUTED = TaskState.EXECUTED

#: The task schedulers the runtime implements.  This tuple is the single
#: source of truth — :class:`~repro.core.RunSpec` validation and the CLI
#: ``--scheduler`` choices both import it.
SCHEDULERS = ("locality", "fifo", "fuzz")


@dataclass
class RuntimeStats:
    """Counters exposed for analysis and tests."""

    tasks_spawned: int = 0
    tasks_executed: int = 0
    locality_hits: int = 0
    steals: int = 0
    taskwaits: int = 0
    per_phase_time: dict = field(default_factory=dict)
    hits_by_phase: dict = field(default_factory=dict)
    tasks_by_phase: dict = field(default_factory=dict)


class TaskContext:
    """Execution context handed to generator task bodies."""

    __slots__ = ("runtime", "task", "core")

    def __init__(self, runtime, task, core):
        self.runtime = runtime
        self.task = task
        self.core = core

    @property
    def env(self):
        return self.runtime.env


class RankRuntime:
    """Task scheduler and worker pool for one rank."""

    def __init__(
        self,
        env,
        *,
        rank=0,
        num_cores=1,
        cost_spec=None,
        numa=False,
        scheduler="locality",
        sched_seed=0,
        witness=None,
        tracer=None,
        profiler=None,
        faults=None,
    ):
        if num_cores < 1:
            raise ValueError("num_cores must be >= 1")
        if scheduler not in SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {scheduler!r}; choose from {SCHEDULERS}"
            )
        self.env = env
        self.rank = rank
        self.num_cores = num_cores
        self.cost_spec = cost_spec or CostSpec()
        #: Whether this rank's threads span NUMA domains (cost penalty is
        #: applied by the application when computing task costs).
        self.numa = numa
        self.scheduler = scheduler
        #: Seed of the ``"fuzz"`` scheduler's perturbation stream (ignored
        #: by the deterministic schedulers).  The stream is derived from
        #: (seed, rank) so every rank perturbs independently but the whole
        #: run stays reproducible for a given seed.
        self.sched_seed = sched_seed
        self._rng = (
            random.Random(sched_seed * 1_000_003 + rank)
            if scheduler == "fuzz"
            else None
        )
        #: Optional :class:`repro.verify.AccessWitness` recording the
        #: handles each task actually touches (None = no recording).
        self.witness = witness
        #: Application-provided context for witness reports (the current
        #: timestep); see :meth:`repro.core.app.BaseRankProgram.run`.
        self.timestep = None
        self.tracer = tracer
        #: Optional :class:`repro.obs.Profiler` recording the executed task
        #: graph and runtime metrics (None = every hook is a no-op branch).
        self.profiler = profiler
        self.stats = RuntimeStats()
        #: Deterministic per-rank system-noise source (shared with the
        #: rank's main thread for its inline charges).  When a
        #: :class:`~repro.faults.FaultInjector` is supplied it is layered
        #: on top, so every CPU charge on this rank — task bodies and
        #: inline main-thread work alike — suffers the injected faults.
        self.noise = NoiseModel(self.cost_spec, rank)
        if faults is not None:
            from ..faults.injectors import FaultyNoise

            self.noise = FaultyNoise(self.noise, faults, rank, env)

        self.tracker = DependencyTracker()
        #: handle -> [holder Task or None, deque of parked tasks]
        self._comm_locks = {}
        self._ready = [deque() for _ in range(num_cores)]
        #: Bit ``c`` set iff ``self._ready[c]`` is nonempty.  Lets the pop
        #: paths skip the per-queue probing entirely when nothing is ready
        #: (the common case for idle workers) and pick steal victims /
        #: fuzz targets without rebuilding a core list per pop.
        self._ready_mask = 0
        self._all_cores_mask = (1 << num_cores) - 1
        #: core -> wakeup Event of the idle thread parked on that core.
        #: A core parks at most one thread (the main thread on core 0, the
        #: worker on cores 1..N-1), so a dict keyed by core gives O(1)
        #: preferred-core lookup while insertion order preserves the FIFO
        #: fallback of the old deque-of-entries representation.
        self._waiters = {}
        self._drain_events = []
        self._last_affinity = [None] * num_cores
        self._outstanding = 0
        self._rr = 0
        # Cost-spec scalars pulled out of the dataclass once: spawn and
        # dispatch overheads are read on every task.
        self._spawn_overhead = self.cost_spec.task_spawn_overhead
        self._dispatch_overhead = self.cost_spec.task_dispatch_overhead
        #: Immediate-successor policy flag (checked once per completion).
        self._immediate_successor = scheduler == "locality"

        for core in range(1, num_cores):
            env.process(self._worker(core), name=f"r{rank}-worker{core}")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def outstanding(self) -> int:
        """Number of spawned-but-not-completed (non-sync) tasks."""
        return self._outstanding

    # ------------------------------------------------------------------
    # Task creation (generator: ``task = yield from rt.spawn(...)``)
    # ------------------------------------------------------------------
    def spawn(
        self,
        label,
        cost=0.0,
        body=None,
        ins=(),
        outs=(),
        inouts=(),
        commutatives=(),
        affinity=None,
        locality_factor=1.0,
        phase=None,
    ):
        """Create a task; charges spawn overhead to the calling thread."""
        overhead = self._spawn_overhead
        if overhead > 0:
            yield self.env.timeout(overhead)
        task = Task(
            self.env,
            label,
            cost=cost,
            body=body,
            accesses=normalize_accesses(ins, outs, inouts, commutatives),
            affinity=affinity,
            locality_factor=locality_factor,
            phase=phase,
        )
        self._register(task)
        return task

    def _register(self, task):
        self.stats.tasks_spawned += 1
        if not task.is_sync:
            self._outstanding += 1
            if self.profiler is not None:
                self.profiler.task_spawned(task, self.rank, self.env.now)
        self.tracker.register(task)
        if task.npred == 0:
            self._make_ready(task, preferred=None)

    # ------------------------------------------------------------------
    # Synchronization
    # ------------------------------------------------------------------
    def taskwait(self):
        """Wait until every spawned task completed (helping execute)."""
        self.stats.taskwaits += 1
        while self._outstanding > 0:
            task = self._pop_task_for(0)
            if task is not None:
                yield from self._execute(task, 0)
                continue
            event = self.env.event()
            self._waiters[0] = event
            self._drain_events.append(event)
            got = yield event
            if self._waiters.get(0) is event:
                del self._waiters[0]
            if event in self._drain_events:
                self._drain_events.remove(event)
            if isinstance(got, Task):
                yield from self._execute(got, 0)

    def taskwait_with_deps(self, ins=(), outs=(), inouts=()):
        """OmpSs-2 ``taskwait`` with dependencies.

        Blocks only until the tasks that produce the named data completed —
        *not* until all outstanding tasks do.  This is the feature behind
        the paper's delayed-checksum optimization (Section IV-C).
        """
        task = Task(
            self.env,
            "taskwait-deps",
            accesses=normalize_accesses(ins, outs, inouts),
        )
        task.is_sync = True
        self._register(task)
        # Like a blocked Nanos6 thread, the caller's core keeps executing
        # ready tasks while the marker is pending (the resume may therefore
        # lag the dependency satisfaction by up to one task length).  When
        # no task is ready the thread registers as an idle worker so that
        # newly released tasks wake it — otherwise core 0 would sit idle
        # for the whole wait.
        while not task.completed:
            ready = self._pop_task_for(0)
            if ready is not None:
                yield from self._execute(ready, 0)
                continue
            event = self.env.event()
            self._waiters[0] = event
            task.done_event.callbacks.append(
                lambda _ev, e=event: None if e.triggered else e.succeed(None)
            )
            got = yield event
            if self._waiters.get(0) is event:
                del self._waiters[0]
            if isinstance(got, Task):
                yield from self._execute(got, 0)
        return task

    # ------------------------------------------------------------------
    # Scheduling internals
    # ------------------------------------------------------------------
    def _make_ready(self, task, preferred, front=False):
        if task.is_sync:
            self._complete(task, core=preferred)
            return
        if task.commutative_handles and not self._acquire_commutative(task):
            return  # parked; re-released when the lock holder completes
        task.state = TaskState.READY
        if self.profiler is not None:
            self.profiler.task_ready(
                task,
                self.env.now,
                queue_depth=sum(map(len, self._ready)),
            )
        rng = self._rng
        if rng is not None:
            # Fuzz: every placement choice is randomized — which idle
            # worker wakes, which queue the task lands on, front or back.
            preferred = rng.randrange(self.num_cores)
            front = rng.random() < 0.5
        waiter = self._pick_waiter(preferred)
        if waiter is not None:
            waiter.succeed(task)
            return
        if rng is not None:
            core = preferred
        elif preferred is None:
            core = self._rr
            self._rr = (self._rr + 1) % self.num_cores
        else:
            core = preferred
        dq = self._ready[core]
        if not dq:
            self._ready_mask |= 1 << core
        if front:
            dq.appendleft(task)
        else:
            dq.append(task)

    def _lock_entry(self, handle):
        entry = self._comm_locks.get(handle)
        if entry is None:
            entry = self._comm_locks[handle] = [None, deque()]
        return entry

    def _acquire_commutative(self, task) -> bool:
        """All-or-nothing acquisition of the task's commutative locks.

        On failure the task parks on the first busy lock; it is retried
        when that lock's holder completes.  All-or-nothing acquisition
        (with no partial holds) cannot deadlock.
        """
        entries = [self._lock_entry(h) for h in task.commutative_handles]
        for entry in entries:
            if entry[0] is not None and entry[0] is not task:
                entry[1].append(task)
                return False
        for entry in entries:
            entry[0] = task
        return True

    def _release_commutative(self, task, core):
        retry = []
        for handle in task.commutative_handles:
            entry = self._comm_locks[handle]
            if entry[0] is task:
                entry[0] = None
            while entry[1]:
                waiting = entry[1].popleft()
                # Only retry tasks still parked (CREATED); anything else
                # already acquired its locks through another release.
                if waiting.state is TaskState.CREATED:
                    retry.append(waiting)
                    break
        for waiting in retry:
            self._make_ready(waiting, preferred=core, front=False)

    def _pick_waiter(self, preferred):
        """Pop an idle thread's wakeup event, preferring ``preferred``.

        Stale entries — events already triggered by the drain or
        taskwait-with-deps wakeup paths, which succeed without
        unregistering — are pruned as the scan meets them, so the table
        stays bounded by the core count instead of accumulating across a
        taskwait-heavy run.
        """
        waiters = self._waiters
        if not waiters:
            return None
        if preferred is not None:
            event = waiters.get(preferred)
            if event is not None:
                del waiters[preferred]
                if not event.triggered:
                    return event
        chosen = None
        prune = []
        for core, event in waiters.items():
            prune.append(core)
            if not event.triggered:
                chosen = event
                break
        for core in prune:
            del waiters[core]
        return chosen

    def _pop_task_for(self, core):
        if self._rng is not None:
            return self._pop_task_fuzz(core)
        mask = self._ready_mask
        if not mask:
            return None
        dq = self._ready[core]
        if dq:
            task = dq.popleft()
            if not dq:
                self._ready_mask = mask & ~(1 << core)
            if self.profiler is not None:
                self.profiler.pop_decision(self.rank, False)
            return task
        # Steal from the next nonempty queue in ring order: rotate the
        # mask so this core is bit 0, then take the lowest set bit.  Own
        # bit is clear (the deque probe above failed), and the mask is
        # nonzero, so a victim always exists.
        n = self.num_cores
        rot = ((mask >> core) | (mask << (n - core))) & self._all_cores_mask
        victim = core + (rot & -rot).bit_length() - 1
        if victim >= n:
            victim -= n
        dq = self._ready[victim]
        self.stats.steals += 1
        task = dq.pop()
        if not dq:
            self._ready_mask = mask & ~(1 << victim)
        if self.profiler is not None:
            self.profiler.pop_decision(self.rank, True)
        return task

    def _pop_task_fuzz(self, core):
        """Fuzz-scheduler pop: a uniformly random ready task of any queue."""
        mask = self._ready_mask
        if not mask:
            return None
        rng = self._rng
        # randrange(n) and the old choice() over the nonempty-core list
        # both reduce to one _randbelow(n) draw, so the perturbation
        # stream — and with it every committed fuzz schedule — is
        # unchanged by the bitmask representation.
        j = rng.randrange(bin(mask).count("1"))
        m = mask
        while j:
            m &= m - 1
            j -= 1
        victim = (m & -m).bit_length() - 1
        dq = self._ready[victim]
        idx = rng.randrange(len(dq))
        dq.rotate(-idx)
        task = dq.popleft()
        dq.rotate(idx)
        if not dq:
            self._ready_mask = mask & ~(1 << victim)
        if victim != core:
            self.stats.steals += 1
        if self.profiler is not None:
            self.profiler.pop_decision(self.rank, victim != core)
        return task

    def _worker(self, core):
        env = self.env
        while True:
            task = self._pop_task_for(core)
            if task is None:
                event = env.event()
                self._waiters[core] = event
                task = yield event
                if self._waiters.get(core) is event:  # pragma: no cover
                    del self._waiters[core]
            if task is not None:
                yield from self._execute(task, core)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _execute(self, task, core):
        env = self.env
        task.state = _RUNNING
        t0 = env._now

        locality = (
            task.affinity is not None
            and self._last_affinity[core] == task.affinity
        )
        cost = task.cost
        stats = self.stats
        stats.tasks_by_phase[task.phase] = (
            stats.tasks_by_phase.get(task.phase, 0) + 1
        )
        if locality:
            stats.locality_hits += 1
            stats.hits_by_phase[task.phase] = (
                stats.hits_by_phase.get(task.phase, 0) + 1
            )
            cost = cost / task.locality_factor
        total = self.noise.stretch(cost + self._dispatch_overhead)
        if total > 0:
            yield env.timeout(total)

        if task.body is not None:
            witness = self.witness
            # Unchecked tasks still get a frame: their touches must be
            # swallowed, not misattributed to a suspended witnessed task.
            record = witness is not None
            if record:
                witness.task_begin(task, self.rank, self.timestep)
            try:
                if task.gen_body:
                    yield from task.body(TaskContext(self, task, core))
                else:
                    task.body()
            finally:
                if record:
                    witness.task_end(task)

        self._last_affinity[core] = task.affinity
        stats.tasks_executed += 1
        t1 = env._now
        phase_times = stats.per_phase_time
        phase_times[task.phase] = phase_times.get(task.phase, 0.0) + (t1 - t0)
        if self.tracer is not None:
            self.tracer.task_event(
                self.rank, core, task.label, task.phase, t0, t1
            )
        if self.profiler is not None:
            self.profiler.task_ran(task, core, t0, t1)

        task.state = _EXECUTED
        if task.pending_requests == 0:
            self._complete(task, core)

    # ------------------------------------------------------------------
    # Completion & TAMPI integration
    # ------------------------------------------------------------------
    def bind_request(self, task, request):
        """Defer ``task``'s completion until ``request`` completes."""
        if task.completed:
            raise ValueError("cannot bind a request to a completed task")
        task.pending_requests += 1
        if self.profiler is not None:
            self.profiler.request_bound(task, self.rank, self.env.now)
        request.event.callbacks.append(
            lambda _ev, t=task: self._request_done(t)
        )

    def _request_done(self, task):
        task.pending_requests -= 1
        if self.profiler is not None:
            self.profiler.request_released(task, self.rank, self.env.now)
        if task.pending_requests == 0 and task.state is _EXECUTED:
            self._complete(task, core=None)

    def _complete(self, task, core):
        task.state = TaskState.COMPLETED
        if not task.is_sync:
            self._outstanding -= 1
            if self.profiler is not None:
                self.profiler.task_completed(task, self.env.now)
        if task.commutative_handles:
            self._release_commutative(task, core)

        released = []
        for succ in task.successors:
            succ.npred -= 1
            if succ.npred == 0 and succ.state is TaskState.CREATED:
                released.append(succ)

        if self._immediate_successor and core is not None:
            # Immediate-successor policy: released tasks stay on the
            # completing core, in release order (depth-first execution
            # that reuses the block still in cache; idle cores steal).
            for succ in reversed(released):
                self._make_ready(succ, preferred=core, front=True)
        else:
            if self._rng is not None and len(released) > 1:
                # Fuzz: permute the release order.  This is also how TAMPI
                # completion interleavings are perturbed — a request's
                # completion funnels through here, so its successors race
                # in a different order on every seed.
                self._rng.shuffle(released)
            for succ in released:
                self._make_ready(succ, preferred=None)

        done = task._done_event
        if done is not None:
            done.succeed(task)

        if self._outstanding == 0 and self._drain_events:
            events, self._drain_events = self._drain_events, []
            for event in events:
                if not event.triggered:
                    event.succeed(None)

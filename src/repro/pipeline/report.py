"""Pipeline execution entry point and structured per-node report."""

from __future__ import annotations

from dataclasses import dataclass

from ..core import RunResult
from .spec import PipelineSpec


@dataclass
class PipelineReport:
    """One pipeline execution: the spec plus the engine's sweep report.

    Node outcomes keep the engine's
    :class:`~repro.exec.RunOutcome` semantics — including ``wait_time``
    (seconds between "predecessors done" and launch) and ``exec_time``
    (the successful attempt alone) — addressable by node name.
    """

    pipeline: PipelineSpec
    sweep: object  #: the engine's :class:`~repro.exec.SweepReport`

    def outcome(self, name: str):
        for o in self.sweep.outcomes:
            if o.name == name:
                return o
        raise KeyError(name)

    def result(self, name: str):
        """The node's result payload (``None`` for failed/blocked)."""
        return self.outcome(name).result

    @property
    def ok(self) -> bool:
        return all(o.ok for o in self.sweep.outcomes)

    def raise_failures(self):
        self.sweep.raise_failures()

    def summary(self) -> str:
        return f"pipeline '{self.pipeline.name}': {self.sweep.summary()}"

    # ------------------------------------------------------------------
    def results_dict(self) -> dict:
        """Node name → serialized result, **timing-free**.

        Deterministic for deterministic runs: two executions of the same
        pipeline (cached or not) produce byte-identical JSON here, which
        is exactly what the CI cache-integrity check diffs.  Timing and
        status live in :meth:`to_dict` instead.
        """
        out = {}
        for o in self.sweep.outcomes:
            if isinstance(o.result, RunResult):
                out[o.name] = o.result.to_dict()
            else:
                out[o.name] = o.result
        return out

    def to_dict(self) -> dict:
        nodes = []
        for o in self.sweep.outcomes:
            entry = {
                "name": o.name,
                "status": o.status,
                "fingerprint": o.fingerprint,
                "attempts": o.attempts,
                "wall_time": o.wall_time,
                "wait_time": o.wait_time,
                "exec_time": o.exec_time,
                "worker_id": o.worker_id,
                "slots": o.slots,
            }
            if o.error is not None:
                entry["error"] = o.error
            nodes.append(entry)
        return {
            "pipeline": self.pipeline.name,
            "summary": self.sweep.summary(),
            "nodes": nodes,
            "results": self.results_dict(),
        }


def run_pipeline(pipeline: PipelineSpec, engine=None,
                 strict=False) -> PipelineReport:
    """Execute ``pipeline`` on ``engine`` (default: serial, no cache).

    With ``strict=True``, raises :class:`~repro.exec.SweepError` if any
    node failed (blocked nodes are reported, not raised — see
    ``SweepReport.raise_failures``).
    """
    # Imported here, not at module top: repro.exec must stay importable
    # without repro.pipeline being fully initialized (the engine lowers
    # PipelineSpecs lazily for the same reason).
    from ..exec.engine import SweepEngine

    engine = engine or SweepEngine()
    report = PipelineReport(pipeline=pipeline, sweep=engine.run(pipeline))
    if strict:
        report.raise_failures()
    return report

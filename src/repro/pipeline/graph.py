"""The engine-internal job graph: one representation for sweeps and DAGs.

:class:`JobGraph` is what :class:`~repro.exec.SweepEngine` actually
executes.  A flat sweep becomes an edgeless graph; a
:class:`~repro.pipeline.PipelineSpec` becomes a graph whose generator
nodes are built lazily once their predecessors complete.

The scheduling-relevant machinery lives here so it can be exercised (and
dry-run via ``--show-dag``) without touching worker processes:

* **critical-path priorities** — ``priority(n) = cost(n) +
  max(priority(successors))``, computed in reverse topological order.
  The engine orders the ready set by descending priority, so the longest
  remaining chain starts first (the Task Bench observation: scheduling
  quality dominates once task graphs are irregular);
* **list-scheduling simulation** — a deterministic virtual-time replay
  of the DAG on ``workers`` slots under a ready-set policy
  (``"critical_path"`` or ``"fifo"``), used by the dry run to predict
  makespans and by the tests to prove the ordering pays.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from .spec import PipelineSpec, get_generator


@dataclass
class JobNode:
    """One schedulable unit of a :class:`JobGraph`."""

    index: int
    name: str
    label: str
    #: Concrete spec, or ``None`` until the builder runs.
    spec: object = None
    #: Lazy builder ``(deps: dict) -> RunSpec | JSON value`` (generator
    #: nodes only).
    builder: object = None
    #: Registry name of the builder (serializable identity for analysis
    #: fingerprints).
    generator: str = None
    #: JSON parameters of the builder.
    params: dict = field(default_factory=dict)


class JobGraph:
    """Immutable-after-construction DAG of :class:`JobNode`\\ s."""

    def __init__(self, nodes, preds, name="sweep"):
        self.name = name
        self.nodes = list(nodes)
        self.preds = [tuple(p) for p in preds]
        succs = [[] for _ in self.nodes]
        for i, pp in enumerate(self.preds):
            for p in pp:
                succs[p].append(i)
        self.succs = [tuple(s) for s in succs]
        self._topo = None

    def __len__(self):
        return len(self.nodes)

    @property
    def num_edges(self) -> int:
        return sum(len(p) for p in self.preds)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_sweep(cls, sweep) -> "JobGraph":
        """An edgeless graph: the existing flat-sweep contract."""
        nodes = [
            JobNode(
                index=i, name=sweep.label(i), label=sweep.label(i),
                spec=spec,
            )
            for i, spec in enumerate(sweep)
        ]
        return cls(nodes, [()] * len(nodes), name=sweep.name)

    @classmethod
    def from_pipeline(cls, pipeline: PipelineSpec) -> "JobGraph":
        """Resolve a :class:`PipelineSpec` against the generator registry."""
        index = {n.name: i for i, n in enumerate(pipeline.nodes)}
        nodes, preds = [], []
        for i, pnode in enumerate(pipeline.nodes):
            builder = (
                get_generator(pnode.generator)
                if pnode.generator is not None
                else None
            )
            nodes.append(JobNode(
                index=i,
                name=pnode.name,
                label=f"{pipeline.name}:{pnode.name}",
                spec=pnode.run,
                builder=builder,
                generator=pnode.generator,
                params=dict(pnode.params or {}),
            ))
            preds.append(tuple(index[d] for d in pnode.after))
        return cls(nodes, preds, name=pipeline.name)

    # ------------------------------------------------------------------
    # Orders and priorities
    # ------------------------------------------------------------------
    def topo_order(self) -> list:
        """Node indices, every predecessor before its successors."""
        if self._topo is not None:
            return self._topo
        indegree = [len(p) for p in self.preds]
        heap = [i for i, d in enumerate(indegree) if d == 0]
        heapq.heapify(heap)
        order = []
        while heap:
            i = heapq.heappop(heap)
            order.append(i)
            for s in self.succs[i]:
                indegree[s] -= 1
                if indegree[s] == 0:
                    heapq.heappush(heap, s)
        if len(order) != len(self.nodes):
            raise ValueError(f"job graph {self.name!r} contains a cycle")
        self._topo = order
        return order

    def critical_path_priorities(self, costs) -> list:
        """Downward-rank of every node: its longest chain to a sink.

        ``priority[i] = costs[i] + max(priority[succ], default 0)`` —
        the classic HEFT/CP list-scheduling rank.  The critical path of
        the whole graph is ``max(priority)``.
        """
        priority = [0.0] * len(self.nodes)
        for i in reversed(self.topo_order()):
            down = max(
                (priority[s] for s in self.succs[i]), default=0.0
            )
            priority[i] = float(costs[i]) + down
        return priority

    # ------------------------------------------------------------------
    # Virtual-time list scheduling (dry run / policy comparison)
    # ------------------------------------------------------------------
    def simulate_schedule(self, costs, workers=1, policy="critical_path"):
        """Deterministically replay the DAG on ``workers`` slots.

        Ready tasks are started the moment a slot and their predecessors
        allow — no level barriers — in the order given by ``policy``:
        ``"critical_path"`` picks the ready task with the largest
        downward rank, ``"fifo"`` the lowest index (submission order).
        Returns ``(makespan, schedule)`` with ``schedule[i] = (start,
        finish)`` per node.
        """
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if policy == "critical_path":
            priority = self.critical_path_priorities(costs)

            def key(i):
                return (-priority[i], i)
        elif policy == "fifo":
            def key(i):
                return i
        else:
            raise ValueError(
                f"unknown policy {policy!r}; choose 'critical_path' or "
                f"'fifo'"
            )
        remaining = [len(p) for p in self.preds]
        ready = [i for i, d in enumerate(remaining) if d == 0]
        running = []  # heap of (finish_time, index)
        schedule = [None] * len(self.nodes)
        now = 0.0
        free = workers
        done = 0
        while done < len(self.nodes):
            ready.sort(key=key)
            while ready and free > 0:
                i = ready.pop(0)
                finish = now + float(costs[i])
                schedule[i] = (now, finish)
                heapq.heappush(running, (finish, i))
                free -= 1
            if not running:
                raise ValueError(
                    f"job graph {self.name!r}: deadlock at t={now} "
                    f"(cycle?)"
                )
            now, i = heapq.heappop(running)
            free += 1
            done += 1
            for s in self.succs[i]:
                remaining[s] -= 1
                if remaining[s] == 0:
                    ready.append(s)
        return now, schedule

    def simulate_makespan(self, costs, workers=1, policy="critical_path"):
        """Just the makespan of :meth:`simulate_schedule`."""
        return self.simulate_schedule(costs, workers, policy)[0]

    # ------------------------------------------------------------------
    # ASCII rendering (``--show-dag``)
    # ------------------------------------------------------------------
    def ascii(self, costs=None, workers=1) -> str:
        """Human-readable DAG listing, one node per line.

        With ``costs``, annotates each node with its predicted cost and
        downward rank, marks the critical path with ``*``, and appends
        predicted makespans under critical-path-first vs FIFO ordering.
        """
        lines = [
            f"pipeline '{self.name}' — {len(self.nodes)} nodes, "
            f"{self.num_edges} edges"
        ]
        priority = None
        if costs is not None:
            priority = self.critical_path_priorities(costs)
            cp_len = max(priority, default=0.0)
            # Upward rank (longest chain from any root *through* a node);
            # a node is on the critical path iff the longest chain through
            # it spans the whole graph.
            up = [0.0] * len(self.nodes)
            for i in self.topo_order():
                up[i] = float(costs[i]) + max(
                    (up[p] for p in self.preds[i]), default=0.0
                )
        depth = [0] * len(self.nodes)
        for i in self.topo_order():
            depth[i] = max(
                (depth[p] + 1 for p in self.preds[i]), default=0
            )
        for i in self.topo_order():
            node = self.nodes[i]
            indent = "  " * depth[i]
            deps = (
                " <- " + ", ".join(
                    self.nodes[p].name for p in self.preds[i]
                )
                if self.preds[i]
                else ""
            )
            kind = "" if node.spec is not None else (
                f"  [generator {node.generator}]"
            )
            note = ""
            if priority is not None:
                through = up[i] + priority[i] - float(costs[i])
                on_cp = " *" if abs(through - cp_len) < 1e-12 else ""
                note = (
                    f"  cost≈{costs[i]:.3g}s rank≈{priority[i]:.3g}s"
                    f"{on_cp}"
                )
            lines.append(f"  {indent}[{i}] {node.name}{deps}{kind}{note}")
        if priority is not None:
            cp = self.simulate_makespan(costs, workers, "critical_path")
            fifo = self.simulate_makespan(costs, workers, "fifo")
            lines.append(
                f"  critical path ≈{cp_len:.3g}s; predicted makespan on "
                f"{workers} worker(s): critical-path-first {cp:.3g}s, "
                f"fifo {fifo:.3g}s"
            )
        return "\n".join(lines)

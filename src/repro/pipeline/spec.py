"""Frozen, JSON-round-trippable pipeline specifications.

A :class:`PipelineSpec` names a DAG of experiment nodes.  Each node
carries either a concrete :class:`~repro.core.RunSpec` payload or a
*generator* — a registered, parametrized builder invoked when the node's
predecessors have completed, receiving their results so later stages can
ride on earlier measurements (calibrate → sweep).  Edges are explicit
``after=[...]`` lists; the fork-join, diamond, and pipeline dependency
patterns all fall out of that one primitive.

Generators keep the spec serializable: a node stores the builder's
registry *name* plus JSON parameters, never a callable.  A builder is::

    @register_generator("bench.fig4_point")
    def fig4_point(params: dict, deps: dict):
        ...
        return RunSpec(...)      # a run node, or
        return {"speedup": ...}  # a plain JSON value -> analysis node

``deps`` maps predecessor node name → that node's result
(:class:`~repro.core.RunResult` for run nodes, the stored value for
analysis nodes).  Returning a non-``RunSpec`` JSON value makes the node
an *analysis* node: it completes immediately with that value as its
result and is cached under a fingerprint derived from the builder name,
its parameters, and the predecessors' fingerprints.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.spec import RunSpec

#: Global generator registry: name → builder(params, deps).
GENERATORS = {}


def register_generator(name: str):
    """Decorator registering a pipeline node builder under ``name``.

    Names are namespaced by convention (``"bench.fig4_point"``) so JSON
    pipeline files stay readable and collisions stay loud.
    """
    def decorator(fn):
        if name in GENERATORS and GENERATORS[name] is not fn:
            raise ValueError(f"generator {name!r} is already registered")
        GENERATORS[name] = fn
        return fn
    return decorator


def get_generator(name: str):
    """Look up a registered builder; raise a helpful error when missing."""
    try:
        return GENERATORS[name]
    except KeyError:
        known = (
            ", ".join(sorted(GENERATORS))
            if GENERATORS
            else "(none — import the module that defines it, "
                 "e.g. repro.bench)"
        )
        raise KeyError(
            f"unknown pipeline generator {name!r}; registered: {known}"
        ) from None


@dataclass(frozen=True)
class PipelineNode:
    """One named node: a run payload or a parametrized generator."""

    name: str
    #: Concrete payload (exactly one of ``run`` / ``generator``).
    run: RunSpec = None
    #: Registered builder name (see :func:`register_generator`).
    generator: str = None
    #: JSON-compatible parameters passed to the builder.
    params: dict = None
    #: Names of the nodes that must complete before this one starts.
    after: tuple = ()

    def __post_init__(self):
        if not self.name or not isinstance(self.name, str):
            raise ValueError(f"node name must be a non-empty str, got "
                             f"{self.name!r}")
        if (self.run is None) == (self.generator is None):
            raise ValueError(
                f"node {self.name!r} must carry exactly one of a RunSpec "
                f"payload or a generator name"
            )
        if self.run is not None and not isinstance(self.run, RunSpec):
            raise TypeError(
                f"node {self.name!r}: run must be a RunSpec, got "
                f"{self.run!r}"
            )
        if self.params is not None and self.run is not None:
            raise ValueError(
                f"node {self.name!r}: params only apply to generator nodes"
            )
        object.__setattr__(self, "after", tuple(self.after))
        for dep in self.after:
            if not isinstance(dep, str):
                raise TypeError(
                    f"node {self.name!r}: after entries must be node "
                    f"names, got {dep!r}"
                )
        if self.name in self.after:
            raise ValueError(f"node {self.name!r} depends on itself")

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        d = {"name": self.name}
        if self.run is not None:
            d["run"] = self.run.to_dict()
        else:
            d["generator"] = self.generator
            if self.params:
                d["params"] = dict(self.params)
        if self.after:
            d["after"] = list(self.after)
        return d

    @classmethod
    def from_dict(cls, data: dict) -> "PipelineNode":
        run = data.get("run")
        return cls(
            name=data["name"],
            run=RunSpec.from_dict(run) if run is not None else None,
            generator=data.get("generator"),
            params=data.get("params"),
            after=tuple(data.get("after", ())),
        )


@dataclass(frozen=True)
class PipelineSpec:
    """A named, validated DAG of :class:`PipelineNode`\\ s."""

    name: str
    nodes: tuple = field(default_factory=tuple)

    def __post_init__(self):
        object.__setattr__(self, "nodes", tuple(self.nodes))
        names = [n.name for n in self.nodes]
        dupes = {n for n in names if names.count(n) > 1}
        if dupes:
            raise ValueError(
                f"pipeline {self.name!r}: duplicate node names "
                f"{sorted(dupes)}"
            )
        known = set(names)
        for node in self.nodes:
            missing = [d for d in node.after if d not in known]
            if missing:
                raise ValueError(
                    f"pipeline {self.name!r}: node {node.name!r} depends "
                    f"on unknown node(s) {missing}"
                )
        self._check_acyclic()

    def _check_acyclic(self):
        """Kahn's algorithm; raises naming one node on a cycle."""
        indegree = {n.name: len(n.after) for n in self.nodes}
        succs = {n.name: [] for n in self.nodes}
        for node in self.nodes:
            for dep in node.after:
                succs[dep].append(node.name)
        queue = [name for name, deg in indegree.items() if deg == 0]
        seen = 0
        while queue:
            name = queue.pop()
            seen += 1
            for succ in succs[name]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    queue.append(succ)
        if seen != len(self.nodes):
            stuck = sorted(
                name for name, deg in indegree.items() if deg > 0
            )
            raise ValueError(
                f"pipeline {self.name!r}: dependency cycle involving "
                f"{stuck}"
            )

    # ------------------------------------------------------------------
    def __len__(self):
        return len(self.nodes)

    def __iter__(self):
        return iter(self.nodes)

    def node(self, name: str) -> PipelineNode:
        for n in self.nodes:
            if n.name == name:
                return n
        raise KeyError(name)

    @property
    def edges(self) -> list:
        """All (predecessor, successor) name pairs."""
        return [(dep, n.name) for n in self.nodes for dep in n.after]

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "pipeline": self.name,
            "nodes": [n.to_dict() for n in self.nodes],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PipelineSpec":
        return cls(
            name=data.get("pipeline", data.get("name", "pipeline")),
            nodes=tuple(
                PipelineNode.from_dict(n) for n in data.get("nodes", ())
            ),
        )

    def to_json(self, **kwargs) -> str:
        import json

        kwargs.setdefault("indent", 2)
        kwargs.setdefault("sort_keys", True)
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def from_json(cls, text: str) -> "PipelineSpec":
        import json

        return cls.from_dict(json.loads(text))

"""DAG-structured experiment pipelines on top of :mod:`repro.exec`.

Quickstart::

    from repro.core import RunSpec
    from repro.exec import ResultCache, SweepEngine
    from repro.exec.stats import RunStatsStore
    from repro.pipeline import PipelineNode, PipelineSpec, run_pipeline

    calibrate = RunSpec(variant="tampi_dataflow", num_nodes=1, ...)
    spec = PipelineSpec(name="diamond", nodes=(
        PipelineNode("calibrate", run=calibrate),
        PipelineNode("fig4", generator="bench.fig4_point",
                     after=("calibrate",)),
        PipelineNode("fig5", generator="bench.fig5_point",
                     after=("calibrate",)),
        PipelineNode("report", generator="bench.scaling_report",
                     after=("fig4", "fig5")),
    ))
    engine = SweepEngine(jobs=4, cache=ResultCache(".repro-cache"),
                         stats=RunStatsStore(".repro-stats.json"))
    report = run_pipeline(spec, engine, strict=True)

Nodes launch the moment their own predecessors complete; the ready set
is ordered critical-path-first using durations predicted from the stats
store.  ``PipelineSpec`` round-trips through JSON (generators are
referenced by registry name, never by callable).
"""

from .graph import JobGraph, JobNode
from .report import PipelineReport, run_pipeline
from .spec import (
    GENERATORS,
    PipelineNode,
    PipelineSpec,
    get_generator,
    register_generator,
)

__all__ = [
    "GENERATORS",
    "JobGraph",
    "JobNode",
    "PipelineNode",
    "PipelineReport",
    "PipelineSpec",
    "get_generator",
    "register_generator",
    "run_pipeline",
]

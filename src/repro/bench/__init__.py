"""``repro.bench`` — experiment harness for every table and figure.

Each entry point regenerates one published result on the simulated
cluster: :func:`table1` (ranks-per-node study), :func:`table2`
(communication-task granularity), :func:`weak_scaling` (Fig 4),
:func:`strong_scaling` (Fig 5), and :func:`trace_runs` (Figs 1–3).
:func:`resilience` goes beyond the paper: the degradation curve of every
variant under identical injected noise (see :mod:`repro.faults`).

:func:`paper_pipeline` packages the calibrate → {Fig 4, Fig 5} → report
flow as a :class:`~repro.pipeline.PipelineSpec` diamond; importing this
module registers the ``bench.*`` node generators it uses.
"""

from .experiments import (
    PIPELINES,
    SCALED_RPN,
    TAMPI_OPTS,
    ResiliencePoint,
    ResilienceResult,
    ScalingPoint,
    ScalingResult,
    Table1Result,
    Table2Result,
    TraceExperiment,
    build_config,
    fig4_tune,
    format_table,
    get_pipeline,
    paper_pipeline,
    resilience,
    run_specs,
    strong_scaling,
    table1,
    table2,
    trace_runs,
    tune_pipeline,
    weak_scaling,
)
from .inputs import (
    factor3,
    fit_grid,
    four_spheres,
    single_sphere,
    weak_root_dims,
)

__all__ = [
    "PIPELINES",
    "SCALED_RPN",
    "TAMPI_OPTS",
    "ResiliencePoint",
    "ResilienceResult",
    "ScalingPoint",
    "ScalingResult",
    "Table1Result",
    "Table2Result",
    "TraceExperiment",
    "build_config",
    "factor3",
    "fig4_tune",
    "fit_grid",
    "format_table",
    "four_spheres",
    "get_pipeline",
    "paper_pipeline",
    "resilience",
    "run_specs",
    "single_sphere",
    "strong_scaling",
    "table1",
    "table2",
    "trace_runs",
    "tune_pipeline",
    "weak_root_dims",
]

"""The paper's two input problems and rank-grid fitting utilities.

*Single sphere* (Rico et al. [16]): a big sphere that starts outside the
mesh and enters from a lower corner, refining the intersected regions as it
moves — deliberately imbalanced early in the run.

*Four spheres* (Vaughan et al. [13]): two spheres on one side of the mesh
moving along +X and two on the opposite side moving along −X; positioned so
they approach near the center without colliding.  Movement rates are
computed from the number of timesteps so each sphere arrives at the
opposite side without reaching the mesh borders.
"""

from __future__ import annotations

import math

from ..amr.objects import sphere


def single_sphere(num_tsteps: int):
    """The Rico et al. input: one big sphere entering from a lower corner."""
    start = -0.15
    end = 0.55
    rate = (end - start) / max(num_tsteps, 1)
    return (
        sphere(
            center=(start, start, start),
            radius=0.40,
            move=(rate, rate, rate),
        ),
    )


def four_spheres(num_tsteps: int):
    """The Vaughan et al. input: four spheres crossing along the X axis."""
    x_lo, x_hi = 0.15, 0.85
    travel = (x_hi - x_lo) - 0.05  # stop just short of the far border
    rate = travel / max(num_tsteps, 1)
    r = 0.11
    return (
        sphere(center=(x_lo, 0.32, 0.32), radius=r, move=(rate, 0.0, 0.0)),
        sphere(center=(x_lo, 0.68, 0.68), radius=r, move=(rate, 0.0, 0.0)),
        sphere(center=(x_hi, 0.32, 0.68), radius=r, move=(-rate, 0.0, 0.0)),
        sphere(center=(x_hi, 0.68, 0.32), radius=r, move=(-rate, 0.0, 0.0)),
    )


# ----------------------------------------------------------------------
# Rank-grid fitting
# ----------------------------------------------------------------------
def factor3(n: int):
    """Near-cubic factorization of ``n`` into three factors (descending)."""
    best = None
    a = 1
    while a * a * a <= n:
        if n % a == 0:
            m = n // a
            b = a
            bb = int(math.isqrt(m))
            for b in range(bb, a - 1, -1):
                if m % b == 0:
                    c = m // b
                    cand = tuple(sorted((a, b, c), reverse=True))
                    score = cand[0] - cand[2]
                    if best is None or score < best[0]:
                        best = (score, cand)
                    break
        a += 1
    if best is None:
        return (n, 1, 1)
    return best[1]


def fit_grid(num_ranks: int, root_dims):
    """Factor ``num_ranks`` into (px, py, pz) dividing ``root_dims``.

    Prefers near-uniform factorizations; raises when impossible (the
    experiment harness always chooses compatible root grids).
    """
    rx, ry, rz = root_dims
    best = None
    for px in _divisors(num_ranks):
        if rx % px:
            continue
        rem = num_ranks // px
        for py in _divisors(rem):
            if ry % py:
                continue
            pz = rem // py
            if rz % pz:
                continue
            dims = (px, py, pz)
            score = max(dims) - min(dims)
            if best is None or score < best[0]:
                best = (score, dims)
    if best is None:
        raise ValueError(
            f"cannot fit {num_ranks} ranks onto root grid {root_dims}"
        )
    return best[1]


def _divisors(n: int):
    return [d for d in range(1, n + 1) if n % d == 0]


def weak_root_dims(base_dims, doublings: int):
    """Double the root grid one dimension at a time, round-robin.

    The paper's weak-scaling construction: "when doubling the number of
    nodes, we double the number of total blocks in one of the directions
    following a round-robin fashion".
    """
    dims = list(base_dims)
    for i in range(doublings):
        dims[i % 3] *= 2
    return tuple(dims)

"""Experiment runners regenerating every table and figure of the paper.

Each function builds the paper's workload (scaled down per EXPERIMENTS.md),
runs the relevant variants on the simulated cluster, and returns structured
rows mirroring the published table/figure — plus a formatted text rendering.

Scaling note: the published experiments use 48-core nodes up to 256 nodes
(12288 cores) and thousands of stages.  Pure-Python event simulation at
that scale is impractical, so each experiment states its scaled geometry;
the *shape* (who wins, by what factor, where crossovers fall) is the
reproduction target, not absolute seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..amr.config import AmrConfig
from ..core import RunSpec
from ..faults import noise_plan
from ..pipeline import PipelineNode, PipelineSpec, register_generator
from .inputs import fit_grid, four_spheres, single_sphere, weak_root_dims

#: TAMPI+OSS options used throughout the evaluation (Section V).
TAMPI_OPTS = dict(separate_buffers=True, send_faces=True, max_comm_tasks=8)


def run_specs(specs, engine=None, labels=None, name="experiment"):
    """Execute an experiment's :class:`RunSpec`s through a sweep engine.

    ``engine=None`` uses a fresh serial, uncached
    :class:`~repro.exec.SweepEngine` — byte-identical results to the
    pre-engine serial harness.  Any failed run aborts the experiment with
    a :class:`~repro.exec.SweepError`.  Results come back in input order.
    """
    from ..exec import Sweep, SweepEngine

    engine = engine or SweepEngine(jobs=1)
    report = engine.run(Sweep(tuple(specs), name=name, labels=labels))
    report.raise_failures()
    return report.results


def build_config(
    num_ranks,
    root_dims,
    objects,
    *,
    nx=12,
    num_vars=20,
    num_tsteps=2,
    stages_per_ts=10,
    refine_freq=2,
    checksum_freq=10,
    max_refine_level=2,
    payload="synthetic",
    **options,
):
    """An :class:`AmrConfig` with the rank grid fitted to the root grid."""
    px, py, pz = fit_grid(num_ranks, root_dims)
    return AmrConfig(
        npx=px,
        npy=py,
        npz=pz,
        init_x=root_dims[0] // px,
        init_y=root_dims[1] // py,
        init_z=root_dims[2] // pz,
        nx=nx,
        ny=nx,
        nz=nx,
        num_vars=num_vars,
        num_tsteps=num_tsteps,
        stages_per_ts=stages_per_ts,
        refine_freq=refine_freq,
        checksum_freq=checksum_freq,
        max_refine_level=max_refine_level,
        payload=payload,
        objects=objects,
        **options,
    )


def format_table(headers, rows, title=""):
    """Render rows as a fixed-width text table."""
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in rows:
        lines.append("  ".join(str(c).rjust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)


# ======================================================================
# Table I — ranks-per-node configuration study (4 nodes, single sphere)
# ======================================================================
@dataclass
class Table1Result:
    rows: list  # (ranks_per_node, variant, total, refine, no_refine)
    text: str = ""


def table1(ranks_per_node_list=(1, 2, 4, 8, 16), quick=False,
           engine=None) -> Table1Result:
    """Paper Table I: hybrid execution times vs ranks per node on 4 nodes.

    Paper workload: single sphere, 20 ts × 60 stages, 18³ cells, 60 vars,
    refine every 5 ts, checksum every 10 stages.  Scaled here to 48-core
    nodes with a reduced step count (see EXPERIMENTS.md).
    """
    num_nodes = 4
    root = (8, 4, 4)
    tsteps = 1 if quick else 2
    stages = 4 if quick else 10
    cases, specs = [], []
    for variant in ("fork_join", "tampi_dataflow"):
        for rpn in ranks_per_node_list:
            opts = TAMPI_OPTS if variant == "tampi_dataflow" else {}
            cfg = build_config(
                num_nodes * rpn,
                root,
                single_sphere(tsteps),
                nx=12,
                num_vars=24,
                num_tsteps=tsteps,
                stages_per_ts=stages,
                refine_freq=1,
                checksum_freq=stages,
                max_refine_level=2,
                **opts,
            )
            cases.append((rpn, variant))
            specs.append(RunSpec(
                config=cfg,
                machine="marenostrum4",
                variant=variant,
                num_nodes=num_nodes,
                ranks_per_node=rpn,
            ))
    results = run_specs(
        specs, engine,
        labels=[f"table1:{v}@{rpn}rpn" for rpn, v in cases],
        name="table1",
    )
    rows = [
        (rpn, variant, res.total_time, res.refine_time, res.non_refine_time)
        for (rpn, variant), res in zip(cases, results)
    ]
    result = Table1Result(rows=rows)
    result.text = format_table(
        ["ranks/node", "variant", "total(s)", "refine(s)", "no-refine(s)"],
        [
            (rpn, v, f"{t:.4f}", f"{r:.4f}", f"{n:.4f}")
            for rpn, v, t, r, n in rows
        ],
        title="Table I — time vs ranks per node on 4 nodes (single sphere)",
    )
    return result


# ======================================================================
# Table II — communication tasks per neighbor/direction (four spheres)
# ======================================================================
@dataclass
class Table2Result:
    rows: list  # (max_comm_tasks-label, non_refine_time)
    text: str = ""


def table2(task_counts=(1, 2, 4, 8, 16, 0), num_nodes=4, quick=False,
           engine=None):
    """Paper Table II: non-refinement time vs ``--max_comm_tasks``.

    0 (the paper's *all*) means one communication task per face.  The paper
    runs 64 nodes; scaled here (see EXPERIMENTS.md); the expected shape is
    a shallow U: too few tasks starve parallelism, *all* pays per-message
    overheads.  The published differences are a few percent of 600-second
    runs; our sub-second runs disable the OS-noise model so the comparison
    is not swamped by jitter.
    """
    root = (8, 4, 4) if not quick else (4, 4, 2)
    tsteps = 1 if quick else 2
    stages = 4 if quick else 10
    rpn = 2
    labels, specs = [], []
    for mct in task_counts:
        cfg = build_config(
            num_nodes * rpn,
            root,
            four_spheres(tsteps),
            num_tsteps=tsteps,
            stages_per_ts=stages,
            refine_freq=max(tsteps, 1),
            checksum_freq=stages,
            separate_buffers=True,
            send_faces=True,
            max_comm_tasks=mct,
        )
        labels.append("all" if mct == 0 else str(mct))
        specs.append(RunSpec(
            config=cfg,
            machine="marenostrum4_scaled",
            variant="tampi_dataflow",
            num_nodes=num_nodes,
            ranks_per_node=rpn,
            cost_overrides={"noise_amplitude": 0.0, "noise_spike_rate": 0.0},
        ))
    results = run_specs(
        specs, engine,
        labels=[f"table2:{l}tasks" for l in labels],
        name="table2",
    )
    rows = [
        (label, res.non_refine_time)
        for label, res in zip(labels, results)
    ]
    result = Table2Result(rows=rows)
    result.text = format_table(
        ["comm tasks", "no-refine time(s)"],
        [(l, f"{t:.4f}") for l, t in rows],
        title=(
            f"Table II — non-refinement time vs communication tasks per "
            f"neighbor/direction on {num_nodes} nodes (four spheres)"
        ),
    )
    return result


# ======================================================================
# Figures 4 & 5 — weak and strong scaling
# ======================================================================
@dataclass
class ScalingPoint:
    variant: str
    num_nodes: int
    gflops: float
    total_time: float
    refine_time: float
    flops: float

    @property
    def non_refine_time(self):
        return self.total_time - self.refine_time


@dataclass
class ScalingResult:
    points: list  # ScalingPoint
    text: str = ""

    def series(self, variant):
        return sorted(
            (p for p in self.points if p.variant == variant),
            key=lambda p: p.num_nodes,
        )

    def gflops_at(self, variant, nodes):
        for p in self.points:
            if p.variant == variant and p.num_nodes == nodes:
                return p.gflops
        raise KeyError((variant, nodes))

    def speedup_vs(self, variant, baseline, nodes):
        return self.gflops_at(variant, nodes) / self.gflops_at(
            baseline, nodes
        )

    def to_csv(self) -> str:
        """Points as CSV (nodes, variant, gflops, total, refine, flops)."""
        lines = ["nodes,variant,gflops,total_time,refine_time,flops"]
        for p in sorted(
            self.points, key=lambda p: (p.num_nodes, p.variant)
        ):
            lines.append(
                f"{p.num_nodes},{p.variant},{p.gflops:.6g},"
                f"{p.total_time:.9g},{p.refine_time:.9g},{p.flops:.6g}"
            )
        return "\n".join(lines)

    def efficiency(self, variant, nodes, non_refine=False):
        """Parallel efficiency w.r.t. the variant's own 1-node throughput.

        With ``non_refine=True`` computes the paper's NR efficiency
        (refinement time assumed negligible).
        """
        series = self.series(variant)
        base = series[0]
        point = next(p for p in series if p.num_nodes == nodes)
        if non_refine:
            base_rate = base.flops / base.non_refine_time
            rate = point.flops / point.non_refine_time
        else:
            base_rate = base.flops / base.total_time
            rate = point.flops / point.total_time
        scale = point.num_nodes / base.num_nodes
        return (rate / base_rate) / scale


#: Variant → ranks-per-node on the scaled 8-core preset (MPI-only fills the
#: node, one rank per core; hybrids use 2 ranks/node → 4 cores/rank, the
#: analogue of the paper's 4 ranks/node on 48-core nodes).
SCALED_RPN = {"mpi_only": 8, "fork_join": 2, "tampi_dataflow": 2}


def _scaling_spec(variant, num_nodes, root, tsteps, stages, payload,
                  pdes_workers=1):
    """One weak/strong-scaling point as a :class:`RunSpec`."""
    rpn = SCALED_RPN[variant]
    opts = TAMPI_OPTS if variant == "tampi_dataflow" else {}
    cfg = build_config(
        num_nodes * rpn,
        root,
        four_spheres(tsteps),
        num_tsteps=tsteps,
        stages_per_ts=stages,
        refine_freq=2,
        checksum_freq=10,
        max_refine_level=2,
        payload=payload,
        **opts,
    )
    return RunSpec(
        config=cfg,
        machine="marenostrum4_scaled",
        variant=variant,
        num_nodes=num_nodes,
        ranks_per_node=rpn,
        pdes_workers=pdes_workers,
    )


def _scaling_points(specs, engine, name):
    results = run_specs(
        specs, engine,
        labels=[f"{name}:{s.variant}@{s.num_nodes}n" for s in specs],
        name=name,
    )
    return [
        ScalingPoint(
            variant=spec.variant,
            num_nodes=spec.num_nodes,
            gflops=res.gflops,
            total_time=res.total_time,
            refine_time=res.refine_time,
            flops=res.flops,
        )
        for spec, res in zip(specs, results)
    ]


def weak_scaling(
    node_counts=(1, 2, 4, 8, 16, 32),
    variants=("mpi_only", "fork_join", "tampi_dataflow"),
    quick=False,
    engine=None,
    pdes_workers=1,
) -> ScalingResult:
    """Paper Fig 4: weak scaling, four spheres, one initial block per
    MPI-only rank; blocks double with nodes (round-robin per direction).

    Supports the paper's full range — ``node_counts`` up to 256 scaled
    nodes (2048 MPI-only ranks / 12288-core analogue) — the round-robin
    doubling keeps the root grid divisible by every variant's rank grid
    at each power of two.
    """
    tsteps = 1 if quick else 3
    stages = 4 if quick else 10
    specs = []
    base_root = (2, 2, 2)  # 8 blocks = 8 MPI-only ranks on 1 node
    for nodes in node_counts:
        doublings = (nodes).bit_length() - 1
        root = weak_root_dims(base_root, doublings)
        for variant in variants:
            specs.append(
                _scaling_spec(variant, nodes, root, tsteps, stages,
                              "synthetic", pdes_workers=pdes_workers)
            )
    points = _scaling_points(specs, engine, "weak_scaling")
    result = ScalingResult(points=points)
    rows = [
        (
            p.num_nodes,
            p.variant,
            f"{p.gflops:.1f}",
            f"{p.total_time:.4f}",
            f"{p.refine_time:.4f}",
        )
        for p in sorted(points, key=lambda p: (p.num_nodes, p.variant))
    ]
    result.text = format_table(
        ["nodes", "variant", "GFLOPS", "total(s)", "refine(s)"],
        rows,
        title="Fig 4 — weak scaling (four spheres)",
    )
    return result


def strong_scaling(
    node_counts=(1, 2, 4, 8, 16, 32),
    variants=("mpi_only", "fork_join", "tampi_dataflow"),
    quick=False,
    engine=None,
    pdes_workers=1,
) -> ScalingResult:
    """Paper Fig 5: strong scaling, fixed total mesh.

    Following the paper, small node counts (here 1–2) use an input divided
    by a fixed factor (16× in the paper, 4× here) because the full input
    does not fit/pay at those sizes; throughput normalization handles it
    (speedups are computed from FLOP rates).  Symmetrically, node counts
    of 64 and above need a larger fixed input — 512 MPI-only ranks
    outgrow the 256-block mid tier — so they run an 8× larger mesh
    (2048 blocks), again normalized through FLOP rates.
    """
    tsteps = 1 if quick else 3
    stages = 4 if quick else 10
    huge_root = (16, 16, 8)  # fixed problem for >= 64 nodes (2048 blocks)
    big_root = (8, 8, 4)  # fixed problem for 4-32 nodes (256 blocks)
    small_root = (4, 4, 2)  # 8x smaller for 1-2 nodes
    specs = []
    for nodes in node_counts:
        root = (
            small_root if nodes <= 2
            else big_root if nodes <= 32
            else huge_root
        )
        for variant in variants:
            specs.append(
                _scaling_spec(variant, nodes, root, tsteps, stages,
                              "synthetic", pdes_workers=pdes_workers)
            )
    points = _scaling_points(specs, engine, "strong_scaling")
    result = ScalingResult(points=points)
    rows = [
        (
            p.num_nodes,
            p.variant,
            f"{p.gflops:.1f}",
            f"{p.total_time:.4f}",
        )
        for p in sorted(points, key=lambda p: (p.num_nodes, p.variant))
    ]
    result.text = format_table(
        ["nodes", "variant", "GFLOPS", "total(s)"],
        rows,
        title="Fig 5 — strong scaling (four spheres)",
    )
    return result


# ======================================================================
# Resilience — degradation under injected noise (beyond the paper)
# ======================================================================
@dataclass
class ResiliencePoint:
    variant: str
    intensity: float
    total_time: float
    #: ``total_time(intensity) / total_time(0)`` for the same variant.
    slowdown: float
    #: The run's injected-fault ledger (``None`` at intensity 0).
    fault_stats: dict = None


@dataclass
class ResilienceResult:
    points: list  # ResiliencePoint
    text: str = ""

    def series(self, variant):
        return sorted(
            (p for p in self.points if p.variant == variant),
            key=lambda p: p.intensity,
        )

    def slowdown_at(self, variant, intensity):
        for p in self.points:
            if p.variant == variant and p.intensity == intensity:
                return p.slowdown
        raise KeyError((variant, intensity))

    def to_csv(self) -> str:
        lines = ["intensity,variant,total_time,slowdown"]
        for p in sorted(
            self.points, key=lambda p: (p.intensity, p.variant)
        ):
            lines.append(
                f"{p.intensity:g},{p.variant},{p.total_time:.9g},"
                f"{p.slowdown:.6g}"
            )
        return "\n".join(lines)


def resilience(
    intensities=(0.0, 0.5, 1.0),
    variants=("mpi_only", "fork_join", "tampi_dataflow"),
    num_nodes=2,
    quick=False,
    engine=None,
    seed=2020,
) -> ResilienceResult:
    """Degradation curve: relative slowdown vs injected noise intensity.

    Every variant runs the same workload under the same
    :func:`~repro.faults.noise_plan` (CPU noise + OS-noise bursts +
    message jitter + transient loss) scaled by each intensity, plus the
    clean intensity-0 baseline; ``slowdown`` normalizes each variant by
    its *own* clean time, so the curves isolate noise *sensitivity* from
    baseline speed.  This is the quantitative form of the paper's
    imbalance argument: fork-join re-synchronizes every stage, so it
    pays the per-stage *max* of the injected noise; the data-flow
    variant's task pool absorbs local slowdowns and overlaps retry
    delays with compute, so its curve must sit below — a property the
    test suite enforces on a small configuration.
    """
    if 0.0 not in intensities:
        intensities = (0.0,) + tuple(intensities)
    tsteps = 1 if quick else 2
    stages = 4 if quick else 8
    root = (4, 2, 2)
    cases, specs = [], []
    for intensity in intensities:
        plan = noise_plan(intensity, seed=seed) if intensity > 0 else None
        for variant in variants:
            spec = _scaling_spec(
                variant, num_nodes, root, tsteps, stages, "synthetic"
            )
            cases.append((intensity, variant))
            specs.append(replace(spec, faults=plan))
    results = run_specs(
        specs, engine,
        labels=[f"resilience:{v}@x{i:g}" for i, v in cases],
        name="resilience",
    )
    clean = {
        variant: res.total_time
        for (intensity, variant), res in zip(cases, results)
        if intensity == 0.0
    }
    points = [
        ResiliencePoint(
            variant=variant,
            intensity=intensity,
            total_time=res.total_time,
            slowdown=res.total_time / clean[variant],
            fault_stats=res.fault_stats,
        )
        for (intensity, variant), res in zip(cases, results)
    ]
    result = ResilienceResult(points=points)
    rows = [
        (
            f"{p.intensity:g}",
            p.variant,
            f"{p.total_time:.4f}",
            f"{p.slowdown:.3f}x",
        )
        for p in sorted(points, key=lambda p: (p.intensity, p.variant))
    ]
    result.text = format_table(
        ["intensity", "variant", "total(s)", "slowdown"],
        rows,
        title=(
            f"Resilience — slowdown vs injected noise on {num_nodes} "
            f"nodes (four spheres, seed {seed})"
        ),
    )
    return result


# ======================================================================
# Figures 1-3 — trace analysis on 2 nodes
# ======================================================================
@dataclass
class TraceExperiment:
    results: dict  # variant -> RunResult (with tracer)
    text: str = ""


def trace_runs(quick=False, engine=None) -> TraceExperiment:
    """Paper Figs 1–3 setup: four spheres on 2 full nodes, small input.

    MPI-only runs 96 ranks (48/node); TAMPI+OSS runs 8 ranks × 12 cores.
    Scaled step counts; traces are collected for analysis/rendering.
    Trace runs are live-only (the tracer cannot cross a process boundary),
    so the engine executes them in-process and never caches them.
    """
    num_nodes = 2
    tsteps = 2 if quick else 3
    stages = 4 if quick else 6
    root = (8, 4, 3)  # 96 blocks: one per MPI-only rank
    cases = (("mpi_only", 48), ("tampi_dataflow", 4))
    specs = []
    for variant, rpn in cases:
        opts = TAMPI_OPTS if variant == "tampi_dataflow" else {}
        cfg = build_config(
            num_nodes * rpn,
            root,
            four_spheres(tsteps),
            num_tsteps=tsteps,
            stages_per_ts=stages,
            refine_freq=2,
            checksum_freq=stages,
            max_refine_level=1,
            **opts,
        )
        specs.append(RunSpec(
            config=cfg,
            machine="marenostrum4",
            variant=variant,
            num_nodes=num_nodes,
            ranks_per_node=rpn,
            trace=True,
        ))
    run_results = run_specs(
        specs, engine,
        labels=[f"traces:{v}" for v, _rpn in cases],
        name="trace_runs",
    )
    results = {
        variant: res
        for (variant, _rpn), res in zip(cases, run_results)
    }
    exp = TraceExperiment(results=results)
    lines = ["Figs 1-3 — trace runs on 2 nodes (four spheres)"]
    for variant, res in results.items():
        lines.append(
            f"  {variant}: total={res.total_time:.4f}s "
            f"refine={res.refine_time:.4f}s "
            f"non-refine={res.non_refine_time:.4f}s"
        )
    nr_mpi = results["mpi_only"].non_refine_time
    nr_tampi = results["tampi_dataflow"].non_refine_time
    lines.append(
        f"  non-refinement speedup (paper: ~1.3x): {nr_mpi / nr_tampi:.2f}x"
    )
    exp.text = "\n".join(lines)
    return exp


# ======================================================================
# The fig4 -> fig5 flow as a committed pipeline (calibrate -> sweep)
# ======================================================================
@register_generator("bench.fig4_point")
def fig4_point(params, deps):
    """One weak-scaling (Fig 4) point, built when ``calibrate`` is done.

    Parameters: ``num_nodes`` (power of two) and ``quick``.  The
    ``calibrate`` dependency orders the node behind the baseline run (and
    keeps the diamond shape); the weak-scaling doubling itself is purely
    parametric, mirroring :func:`weak_scaling`.
    """
    quick = bool(params.get("quick", True))
    nodes = int(params.get("num_nodes", 2))
    tsteps = 1 if quick else 3
    stages = 4 if quick else 10
    doublings = nodes.bit_length() - 1
    root = weak_root_dims((2, 2, 2), doublings)
    return _scaling_spec(
        "tampi_dataflow", nodes, root, tsteps, stages, "synthetic"
    )


@register_generator("bench.fig5_point")
def fig5_point(params, deps):
    """One strong-scaling (Fig 5) point, sized from the measured baseline.

    This is the genuine calibrate → sweep dependency: the strong-scaling
    input tier (the paper's divided-input rule for small node counts) is
    chosen from the **measured** time of the ``calibrate`` predecessor,
    not hard-coded.  The baseline time is projected to the big fixed mesh
    by block count; if the projection blows the per-run budget
    (``budget_seconds``), the smaller divided input is used instead —
    exactly the decision the paper makes offline.
    """
    quick = bool(params.get("quick", True))
    nodes = int(params.get("num_nodes", 2))
    budget = float(params.get("budget_seconds", 1.0))
    baseline = deps["calibrate"]  # RunResult of the calibrate node
    tsteps = 1 if quick else 3
    stages = 4 if quick else 10
    big_root = (8, 8, 4)  # 256 root blocks (the mid strong-scaling tier)
    small_root = (4, 4, 2)  # the paper's divided input for small counts
    big_blocks = big_root[0] * big_root[1] * big_root[2]
    projected = (
        baseline.total_time
        * big_blocks
        / max(baseline.num_blocks, 1)
        / nodes
    )
    root = small_root if projected > budget else big_root
    return _scaling_spec(
        "tampi_dataflow", nodes, root, tsteps, stages, "synthetic"
    )


@register_generator("bench.scaling_report")
def scaling_report(params, deps):
    """Join node: reduce the diamond's runs to a JSON scaling summary.

    An *analysis* node — it returns a plain JSON value, completes
    in-process the moment its predecessors finish, and is cached under a
    fingerprint derived from its inputs' fingerprints.
    """
    base = deps["calibrate"]
    points = {}
    for name in sorted(deps):
        if name == "calibrate":
            continue
        res = deps[name]
        points[name] = {
            "num_nodes": res.num_nodes,
            "gflops": res.gflops,
            "total_time": res.total_time,
            "speedup_vs_calibrate": res.gflops / base.gflops,
        }
    return {
        "baseline": {
            "num_nodes": base.num_nodes,
            "gflops": base.gflops,
            "total_time": base.total_time,
        },
        "points": points,
    }


def fig4_tune(quick=True, budget=9, seed=2020, robustness=0.0,
              strategy="grid"):
    """The committed Fig 4 tuning problem: 4 scaled nodes, four spheres.

    The base is the paper's chosen configuration for that point —
    ``tampi_dataflow`` at :data:`SCALED_RPN` ranks per node — and the
    space re-opens the two decisions the paper settles empirically:
    the parallelization variant and Table I's ranks-per-node.  The
    baseline point is *inside* the space, so the tune's top rank is
    provably no worse than the paper default (strictly better, or the
    default confirmed already-optimal).  Deterministic under the fixed
    seed; this is the spec CI double-runs and diffs.
    """
    from ..tune import TuneSpec

    tsteps = 1 if quick else 3
    stages = 4 if quick else 10
    root = weak_root_dims((2, 2, 2), 2)  # 4 nodes, 2 weak doublings
    base = _scaling_spec(
        "tampi_dataflow", 4, root, tsteps, stages, "synthetic"
    )
    return TuneSpec(
        base=base,
        space={
            "variant": ("mpi_only", "fork_join", "tampi_dataflow"),
            "ranks_per_node": (2, 4, 8),
        },
        objective="total_time",
        strategy=strategy,
        budget=budget,
        seed=seed,
        robustness=robustness,
        name="fig4-tune" + ("-quick" if quick else ""),
    )


@register_generator("bench.tune_report")
def tune_report(params, deps):
    """Run a declared tune as one pipeline DAG node.

    An *analysis* node: it returns the tune's report as plain JSON,
    cached under the builder + params + dependency fingerprints, so a
    pipeline re-run with the same declaration replays it from cache.
    ``params["tune"]`` may carry a full :class:`TuneSpec` dict;
    otherwise the committed :func:`fig4_tune` problem is used with
    ``params``' ``quick``/``budget``/``seed`` knobs.  Upstream
    dependencies order the tune behind its calibration runs.
    """
    from ..tune import TuneSpec, run_tune

    if "tune" in params:
        tune = TuneSpec.from_dict(params["tune"])
    else:
        kwargs = {"quick": bool(params.get("quick", True))}
        if "budget" in params:
            kwargs["budget"] = int(params["budget"])
        if "seed" in params:
            kwargs["seed"] = int(params["seed"])
        tune = fig4_tune(**kwargs)
    return run_tune(tune).to_dict()


def tune_pipeline(quick=True) -> PipelineSpec:
    """Calibrate → tune: the Fig 4 baseline run, then the tuner.

    The 1-node baseline orders (and warms the duration history for)
    the design-space exploration node that follows;
    ``miniamr-sim pipeline tune`` runs it end-to-end.
    """
    tsteps = 1 if quick else 3
    stages = 4 if quick else 10
    calibrate = _scaling_spec(
        "tampi_dataflow", 1, (2, 2, 2), tsteps, stages, "synthetic"
    )
    return PipelineSpec(
        name="fig4-tune-flow" + ("-quick" if quick else ""),
        nodes=(
            PipelineNode("calibrate", run=calibrate),
            PipelineNode(
                "tune", generator="bench.tune_report",
                params={"quick": quick},
                after=("calibrate",),
            ),
        ),
    )


def paper_pipeline(quick=True) -> PipelineSpec:
    """The committed diamond: calibrate → {fig4, fig5} → report.

    A 1-node tampi_dataflow baseline run calibrates the flow; the Fig 4
    weak-scaling and Fig 5 strong-scaling points fan out from it (Fig 5
    sizes its input from the measured baseline) and the report node joins
    them into a JSON scaling summary.  ``miniamr-sim pipeline paper``
    runs it end-to-end.
    """
    tsteps = 1 if quick else 3
    stages = 4 if quick else 10
    calibrate = _scaling_spec(
        "tampi_dataflow", 1, (2, 2, 2), tsteps, stages, "synthetic"
    )
    return PipelineSpec(
        name="paper-diamond" + ("-quick" if quick else ""),
        nodes=(
            PipelineNode("calibrate", run=calibrate),
            PipelineNode(
                "fig4", generator="bench.fig4_point",
                params={"quick": quick, "num_nodes": 2},
                after=("calibrate",),
            ),
            PipelineNode(
                "fig5", generator="bench.fig5_point",
                params={"quick": quick, "num_nodes": 2},
                after=("calibrate",),
            ),
            PipelineNode(
                "report", generator="bench.scaling_report",
                after=("calibrate", "fig4", "fig5"),
            ),
        ),
    )


#: Named pipelines runnable via ``miniamr-sim pipeline <name>``.
PIPELINES = {"paper": paper_pipeline, "tune": tune_pipeline}


def get_pipeline(name, quick=False) -> PipelineSpec:
    """Build a registered pipeline by CLI name."""
    try:
        builder = PIPELINES[name]
    except KeyError:
        raise KeyError(
            f"unknown pipeline {name!r}; choose from {sorted(PIPELINES)}"
        ) from None
    return builder(quick=quick)

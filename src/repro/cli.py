"""Command-line interface: run simulated miniAMR or regenerate experiments.

Examples::

    miniamr-sim run --variant tampi_dataflow --nodes 2 --ranks-per-node 2
    miniamr-sim run --variant mpi_only --nodes 1 --preset laptop
    miniamr-sim bench table1
    miniamr-sim bench weak --nodes 1 2 4 8
"""

from __future__ import annotations

import argparse
import sys

from .bench import (
    build_config,
    four_spheres,
    single_sphere,
    strong_scaling,
    table1,
    table2,
    trace_runs,
    weak_scaling,
)
from .core.driver import VARIANTS, run_simulation
from .machine.presets import laptop, marenostrum4, marenostrum4_scaled

PRESETS = {
    "laptop": laptop,
    "marenostrum4": marenostrum4,
    "marenostrum4_scaled": marenostrum4_scaled,
}


def _add_run_parser(sub):
    p = sub.add_parser("run", help="run one simulated miniAMR execution")
    p.add_argument("--variant", choices=sorted(VARIANTS), required=True)
    p.add_argument("--preset", choices=sorted(PRESETS),
                   default="marenostrum4_scaled")
    p.add_argument("--nodes", type=int, default=1)
    p.add_argument("--ranks-per-node", type=int, default=None)
    p.add_argument("--root", type=int, nargs=3, default=(4, 2, 2),
                   metavar=("RX", "RY", "RZ"),
                   help="root mesh blocks per dimension")
    p.add_argument("--nx", type=int, default=12, help="cells per block/dim")
    p.add_argument("--num-vars", type=int, default=20)
    p.add_argument("--comm-vars", type=int, default=0,
                   help="variables per communication group (0 = all)")
    p.add_argument("--tsteps", type=int, default=2)
    p.add_argument("--stages", type=int, default=10)
    p.add_argument("--refine-freq", type=int, default=2)
    p.add_argument("--checksum-freq", type=int, default=10)
    p.add_argument("--max-refine-level", type=int, default=2)
    p.add_argument("--input", choices=("single_sphere", "four_spheres"),
                   default="four_spheres")
    p.add_argument("--payload", choices=("real", "synthetic"),
                   default="synthetic")
    p.add_argument("--send-faces", action="store_true")
    p.add_argument("--separate-buffers", action="store_true")
    p.add_argument("--max-comm-tasks", type=int, default=0)
    p.add_argument("--stencil", type=int, choices=(7, 27), default=7)
    p.add_argument("--lb-method", choices=("sfc", "rcb"), default="sfc")
    p.add_argument("--uniform-refine", action="store_true")
    p.add_argument("--scheduler", choices=("locality", "fifo"),
                   default="locality")
    return p


def _add_bench_parser(sub):
    p = sub.add_parser(
        "bench", help="regenerate one of the paper's tables/figures"
    )
    p.add_argument(
        "experiment",
        choices=("table1", "table2", "weak", "strong", "traces"),
    )
    p.add_argument("--nodes", type=int, nargs="*", default=None,
                   help="node counts (weak/strong scaling only)")
    p.add_argument("--quick", action="store_true",
                   help="smaller geometry for a fast look")
    return p


def cmd_run(args) -> int:
    spec = PRESETS[args.preset]()
    ranks_per_node = args.ranks_per_node
    if ranks_per_node is None:
        ranks_per_node = (
            spec.node.cores_per_node if args.variant == "mpi_only" else 2
        )
    num_ranks = args.nodes * ranks_per_node
    objects = (
        single_sphere(args.tsteps)
        if args.input == "single_sphere"
        else four_spheres(args.tsteps)
    )
    cfg = build_config(
        num_ranks,
        tuple(args.root),
        objects,
        nx=args.nx,
        num_vars=args.num_vars,
        num_tsteps=args.tsteps,
        stages_per_ts=args.stages,
        refine_freq=args.refine_freq,
        checksum_freq=args.checksum_freq,
        max_refine_level=args.max_refine_level,
        payload=args.payload,
        comm_vars=args.comm_vars,
        send_faces=args.send_faces,
        separate_buffers=args.separate_buffers,
        max_comm_tasks=args.max_comm_tasks,
        stencil=args.stencil,
        lb_method=args.lb_method,
        uniform_refine=args.uniform_refine,
    )
    res = run_simulation(
        cfg,
        spec,
        variant=args.variant,
        num_nodes=args.nodes,
        ranks_per_node=ranks_per_node,
        scheduler=args.scheduler,
    )
    print(f"variant:          {res.variant}")
    print(f"machine:          {spec.name}, {args.nodes} nodes x "
          f"{ranks_per_node} ranks")
    print(f"total time:       {res.total_time:.6f} s (simulated)")
    print(f"refinement time:  {res.refine_time:.6f} s")
    print(f"throughput:       {res.gflops:.2f} GFLOPS")
    print(f"final blocks:     {res.num_blocks} "
          f"(imbalance {res.imbalance:.3f})")
    print(f"messages:         {res.comm_stats.messages} "
          f"({res.comm_stats.bytes_sent} bytes)")
    print(f"checksums:        {len(res.checksums)} validated")
    return 0


def cmd_bench(args) -> int:
    if args.experiment == "table1":
        print(table1(quick=args.quick).text)
    elif args.experiment == "table2":
        print(table2(quick=args.quick).text)
    elif args.experiment == "traces":
        print(trace_runs(quick=args.quick).text)
    else:
        fn = weak_scaling if args.experiment == "weak" else strong_scaling
        kwargs = {"quick": args.quick}
        if args.nodes:
            kwargs["node_counts"] = tuple(args.nodes)
        result = fn(**kwargs)
        print(result.text)
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="miniamr-sim",
        description=(
            "Simulated miniAMR: data-flow (TAMPI+OmpSs-2), fork-join, and "
            "MPI-only parallelizations on a modelled cluster"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)
    _add_run_parser(sub)
    _add_bench_parser(sub)
    args = parser.parse_args(argv)
    if args.command == "run":
        return cmd_run(args)
    return cmd_bench(args)


if __name__ == "__main__":
    sys.exit(main())

"""Command-line interface: run simulated miniAMR, sweeps, or experiments.

Examples::

    miniamr-sim run --variant tampi_dataflow --nodes 2 --ranks-per-node 2
    miniamr-sim run --variant mpi_only --nodes 1 --preset laptop
    miniamr-sim sweep --variants mpi_only tampi_dataflow --nodes 1 2 --jobs 4
    miniamr-sim bench table1
    miniamr-sim bench weak --nodes 1 2 4 8 --jobs 4 --cache-dir .repro-cache
    miniamr-sim profile --variant tampi_dataflow --preset laptop \\
        --json tampi.json --chrome-trace tampi.trace.json
    miniamr-sim report mpi_only.json tampi.json
    miniamr-sim faults --intensities 0.5 1.0 --quick
    miniamr-sim pipeline paper --quick --jobs 2
    miniamr-sim pipeline paper --quick --show-dag
    miniamr-sim sweep --jobs 4 --telemetry sweep.jsonl
    miniamr-sim top sweep.jsonl --follow
    miniamr-sim tune --fig4 --quick --json tune.json
    miniamr-sim tune --variant tampi_dataflow --nodes 2 \\
        --tune-variants mpi_only tampi_dataflow --tune-rpn 2 4 8
    miniamr-sim pipeline tune --quick
    miniamr-sim engine-report sweep.jsonl --chrome-trace engine.trace.json
    miniamr-sim trend --results-dir benchmarks/results
    miniamr-sim serve --port 8742 --jobs 4 --journal-dir .repro-serve
    miniamr-sim submit --server http://127.0.0.1:8742 \\
        --variant tampi_dataflow --preset laptop --tenant alice --wait
    miniamr-sim submit --server http://127.0.0.1:8742 \\
        --tune-file tune_spec.json --wait
    miniamr-sim status --server http://127.0.0.1:8742
    miniamr-sim top http://127.0.0.1:8742 --follow

Exit codes: 0 success, 1 failed runs (sweep/bench/pipeline/verify) or
flagged regressions (trend --strict) or failed/rejected server jobs,
2 invalid spec or argument combination.
"""

from __future__ import annotations

import argparse
import os
import sys

from . import __version__
from .bench import (
    build_config,
    format_table,
    four_spheres,
    resilience,
    single_sphere,
    strong_scaling,
    table1,
    table2,
    trace_runs,
    weak_scaling,
)
from .core import RunSpec, VARIANTS, resolve_ranks_per_node, run_simulation
from .faults import noise_plan
from .machine.presets import PRESETS, get_preset
from .tasking.runtime import SCHEDULERS
from .tune import OBJECTIVES, STRATEGIES

#: Default on-disk result cache for ``bench``/``sweep`` (override with
#: --cache-dir / REPRO_CACHE_DIR; disable with --no-cache).
DEFAULT_CACHE_DIR = os.environ.get("REPRO_CACHE_DIR", ".repro-cache")

#: Default duration-statistics store feeding the DAG scheduler's cost
#: predictions (override with --stats-file / REPRO_STATS_FILE; disable
#: with --no-stats).
DEFAULT_STATS_FILE = os.environ.get("REPRO_STATS_FILE", ".repro-stats.json")


def _add_geometry_options(p):
    """Workload options shared by ``run`` and ``sweep``."""
    p.add_argument("--root", type=int, nargs=3, default=(4, 2, 2),
                   metavar=("RX", "RY", "RZ"),
                   help="root mesh blocks per dimension")
    p.add_argument("--nx", type=int, default=12, help="cells per block/dim")
    p.add_argument("--num-vars", type=int, default=20)
    p.add_argument("--comm-vars", type=int, default=0,
                   help="variables per communication group (0 = all)")
    p.add_argument("--tsteps", type=int, default=2)
    p.add_argument("--stages", type=int, default=10)
    p.add_argument("--refine-freq", type=int, default=2)
    p.add_argument("--checksum-freq", type=int, default=10)
    p.add_argument("--max-refine-level", type=int, default=2)
    p.add_argument("--input", choices=("single_sphere", "four_spheres"),
                   default="four_spheres")
    p.add_argument("--payload", choices=("real", "synthetic"),
                   default="synthetic")
    p.add_argument("--send-faces", action="store_true")
    p.add_argument("--separate-buffers", action="store_true")
    p.add_argument("--max-comm-tasks", type=int, default=0)
    p.add_argument("--stencil", type=int, choices=(7, 27), default=7)
    p.add_argument("--lb-method", choices=("sfc", "rcb"), default="sfc")
    p.add_argument("--uniform-refine", action="store_true")
    p.add_argument("--scheduler", choices=SCHEDULERS, default="locality")
    p.add_argument("--sched-seed", type=int, default=0,
                   help="schedule-perturbation seed (fuzz scheduler only)")


def _add_engine_options(p):
    """Sweep-engine options shared by ``sweep`` and ``bench``."""
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes (1 = in-process serial)")
    p.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR,
                   help="content-addressed result cache directory "
                        "(default: %(default)s)")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the result cache")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-run timeout in seconds (parallel runs only)")
    p.add_argument("--retries", type=int, default=2,
                   help="crash/timeout retries per run before it fails")
    p.add_argument("--stats-file", default=DEFAULT_STATS_FILE,
                   help="duration-statistics store used for predicted-"
                        "cost scheduling (default: %(default)s)")
    p.add_argument("--no-stats", action="store_true",
                   help="neither read nor record run-duration statistics")
    p.add_argument("--telemetry", default=None, metavar="PATH",
                   help="append engine telemetry (job lifecycle, cache "
                        "hits, PDES windows) as JSONL here; watch live "
                        "with `miniamr-sim top PATH --follow`")
    p.add_argument("--drain-timeout", type=float, default=30.0,
                   metavar="SECONDS",
                   help="graceful-shutdown budget: on SIGTERM/SIGINT "
                        "wait this long for in-flight runs before "
                        "terminating them (default: %(default)s)")


def _add_fault_options(p):
    """Fault-injection options shared by ``run`` and ``profile``."""
    p.add_argument("--fault-noise", type=float, default=0.0,
                   metavar="INTENSITY",
                   help="inject the canonical noise mix (CPU noise + OS "
                        "bursts + message jitter + transient loss) at "
                        "this intensity (0 = clean run)")
    p.add_argument("--fault-seed", type=int, default=2020,
                   help="fault-injection seed (default: %(default)s)")


def _add_pdes_options(p):
    """Partitioned-kernel options shared by ``run`` and ``bench``."""
    p.add_argument("--pdes-workers", type=int, default=1, metavar="N",
                   help="partition the simulated ranks across N worker "
                        "processes running the event kernel in parallel "
                        "(results stay byte-identical; default: serial)")
    p.add_argument("--pdes-partition", choices=("node", "contiguous"),
                   default=None,
                   help="rank->worker policy for --pdes-workers > 1 "
                        "(default: whole nodes per worker)")


def _fault_plan(args):
    """The :class:`~repro.faults.FaultPlan` of ``--fault-noise`` (or None)."""
    if args.fault_noise < 0:
        raise ValueError("--fault-noise must be >= 0")
    if args.fault_noise == 0:
        return None
    return noise_plan(args.fault_noise, seed=args.fault_seed)


def _add_run_parser(sub):
    p = sub.add_parser("run", help="run one simulated miniAMR execution")
    p.add_argument("--variant", choices=sorted(VARIANTS), required=True)
    p.add_argument("--preset", choices=sorted(PRESETS),
                   default="marenostrum4_scaled")
    p.add_argument("--nodes", type=int, default=1)
    p.add_argument("--ranks-per-node", type=int, default=None)
    p.add_argument("--check-access", action="store_true",
                   help="run the dependency race detector (fail on any "
                        "undeclared task data access)")
    _add_geometry_options(p)
    _add_fault_options(p)
    _add_pdes_options(p)
    return p


def _add_sweep_parser(sub):
    p = sub.add_parser(
        "sweep",
        help="run a variant x node-count sweep through the parallel, "
             "cached execution engine",
    )
    p.add_argument("--variants", nargs="+", choices=sorted(VARIANTS),
                   default=sorted(VARIANTS))
    p.add_argument("--nodes", type=int, nargs="+", default=(1,),
                   help="node counts to sweep")
    p.add_argument("--preset", choices=sorted(PRESETS),
                   default="marenostrum4_scaled")
    p.add_argument("--ranks-per-node", type=int, default=None,
                   help="override the per-variant default "
                        "(all cores for mpi_only, 4 for hybrids)")
    _add_geometry_options(p)
    _add_engine_options(p)
    return p


def _add_bench_parser(sub):
    p = sub.add_parser(
        "bench", help="regenerate one of the paper's tables/figures"
    )
    p.add_argument(
        "experiment",
        choices=("table1", "table2", "weak", "strong", "traces"),
    )
    p.add_argument("--nodes", type=int, nargs="*", default=None,
                   help="node counts (weak/strong scaling only)")
    p.add_argument("--quick", action="store_true",
                   help="smaller geometry for a fast look")
    _add_engine_options(p)
    _add_pdes_options(p)
    return p


def _add_faults_parser(sub):
    p = sub.add_parser(
        "faults",
        help="resilience experiment: sweep injected-noise intensity x "
             "variant and print the degradation curve",
    )
    p.add_argument("--intensities", type=float, nargs="+",
                   default=(0.5, 1.0),
                   help="noise intensities to sweep (0 = clean baseline, "
                        "always included; default: %(default)s)")
    p.add_argument("--variants", nargs="+", choices=sorted(VARIANTS),
                   default=sorted(VARIANTS))
    p.add_argument("--nodes", type=int, default=2,
                   help="nodes per run (default: %(default)s)")
    p.add_argument("--seed", type=int, default=2020,
                   help="fault-injection seed (default: %(default)s)")
    p.add_argument("--quick", action="store_true",
                   help="smaller geometry for a fast look")
    p.add_argument("--csv", default=None, metavar="PATH",
                   help="write the degradation curve as CSV here")
    _add_engine_options(p)
    return p


def _add_pipeline_parser(sub):
    p = sub.add_parser(
        "pipeline",
        help="run a DAG-structured experiment pipeline: nodes launch as "
             "soon as their own predecessors finish, ordered "
             "critical-path-first by predicted cost",
    )
    p.add_argument("name", nargs="?", default=None,
                   help="registered pipeline (e.g. 'paper': the "
                        "calibrate -> {fig4, fig5} -> report diamond)")
    p.add_argument("--file", default=None, metavar="PATH",
                   help="load a PipelineSpec JSON instead of a "
                        "registered name")
    p.add_argument("--quick", action="store_true",
                   help="smaller geometry for a fast look")
    p.add_argument("--show-dag", action="store_true",
                   help="print the DAG with predicted per-node costs and "
                        "makespans, then exit without running anything")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="write per-node results as JSON (timing-free: "
                        "byte-identical across cached re-runs)")
    _add_engine_options(p)
    return p


def _add_verify_parser(sub):
    p = sub.add_parser(
        "verify",
        help="correctness gate: golden-result regression, schedule-"
             "perturbation fuzz, and the dependency race detector",
    )
    p.add_argument("--goldens-dir", default=None,
                   help="golden store directory (default: goldens)")
    p.add_argument("--update-goldens", action="store_true",
                   help="rewrite the golden files from fresh runs "
                        "(review the diff like any other)")
    p.add_argument("--seeds", type=int, default=10,
                   help="fuzz schedules to try (default: %(default)s)")
    p.add_argument("--quick", action="store_true",
                   help="single-timestep goldens for a fast smoke check")
    p.add_argument("--skip-fuzz", action="store_true",
                   help="skip the schedule-perturbation sweep")
    p.add_argument("--skip-race", action="store_true",
                   help="skip the dependency race detector run")
    # Verification always re-executes: a result cache could mask drift
    # introduced without a version bump, so only jobs/timeout/retries of
    # the engine options apply here.
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes (1 = in-process serial)")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-run timeout in seconds (parallel runs only)")
    p.add_argument("--retries", type=int, default=2,
                   help="crash/timeout retries per run before it fails")
    return p


def _add_profile_parser(sub):
    p = sub.add_parser(
        "profile",
        help="run one profiled execution: metrics, critical path, "
             "idle-gap taxonomy; optionally export Chrome trace / JSON",
    )
    p.add_argument("--variant", choices=sorted(VARIANTS), required=True)
    p.add_argument("--preset", choices=sorted(PRESETS),
                   default="marenostrum4_scaled")
    p.add_argument("--nodes", type=int, default=1)
    p.add_argument("--ranks-per-node", type=int, default=None)
    _add_geometry_options(p)
    _add_fault_options(p)
    p.add_argument("--trace-max-events", type=int, default=None,
                   help="bound tracer memory (ring buffer; evictions are "
                        "counted, not fatal)")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="write the ProfileReport JSON here (the input "
                        "format of `miniamr-sim report`)")
    p.add_argument("--chrome-trace", default=None, metavar="PATH",
                   help="write a Perfetto/chrome://tracing trace here")
    p.add_argument("--metrics-csv", default=None, metavar="PATH",
                   help="write the metrics registry as CSV here")
    p.add_argument("--top", type=int, default=8,
                   help="rows per section of the text summary")
    return p


def _add_top_parser(sub):
    p = sub.add_parser(
        "top",
        help="live view of a running sweep/pipeline from its telemetry "
             "stream: per-worker activity, queue, retries, ETA",
    )
    p.add_argument("stream", metavar="TELEMETRY",
                   help="telemetry JSONL written via --telemetry (or "
                        "REPRO_TELEMETRY), or an http(s):// serve-"
                        "server URL (fetched from its /v1/telemetry)")
    p.add_argument("--follow", action="store_true",
                   help="refresh in place until the engine (or serve "
                        "server) stops")
    p.add_argument("--interval", type=float, default=0.5,
                   help="refresh period in seconds (default: %(default)s)")
    return p


def _add_engine_report_parser(sub):
    p = sub.add_parser(
        "engine-report",
        help="aggregate a telemetry stream: worker utilization, queue "
             "waits, cache hit rate, retries, PDES window efficiency, "
             "predicted-vs-achieved makespan",
    )
    p.add_argument("stream", metavar="TELEMETRY",
                   help="telemetry JSONL written via --telemetry")
    p.add_argument("--chrome-trace", default=None, metavar="PATH",
                   help="write the engine-level Perfetto trace here "
                        "(one lane per engine worker)")
    p.add_argument("--json", default=None, metavar="PATH",
                   help="write the normalized (timestamp-free) digest "
                        "as JSON here")
    return p


def _add_trend_parser(sub):
    p = sub.add_parser(
        "trend",
        help="diff benchmarks/results/BENCH_*.json against their "
             "committed history and flag metric regressions",
    )
    p.add_argument("--results-dir", default="benchmarks/results",
                   help="BENCH_*.json directory (default: %(default)s)")
    p.add_argument("--baseline-dir", default=None, metavar="DIR",
                   help="compare against this directory instead of the "
                        "committed git version")
    p.add_argument("--rev", default="HEAD",
                   help="git revision holding the baseline "
                        "(default: %(default)s)")
    p.add_argument("--threshold", type=float, default=0.10,
                   help="relative change treated as a trend "
                        "(default: %(default)s)")
    p.add_argument("--all", action="store_true",
                   help="print every metric, not just flagged ones")
    p.add_argument("--strict", action="store_true",
                   help="exit 1 when any regression is flagged")
    return p


def _add_report_parser(sub):
    p = sub.add_parser(
        "report",
        help="compare two profiled runs side by side (phase times, "
             "overlap fraction, critical path, idle-gap taxonomy)",
    )
    p.add_argument("runs", nargs=2, metavar="RUN",
                   help="ProfileReport JSON files written by "
                        "`miniamr-sim profile --json` (a serialized "
                        "RunResult containing a profile also works)")
    return p


def _add_serve_parser(sub):
    p = sub.add_parser(
        "serve",
        help="run the multi-tenant sweep service: HTTP submit/status/"
             "result with request coalescing, per-tenant quotas, and a "
             "crash-safe job journal (see DESIGN.md §11)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8742)
    p.add_argument("--journal-dir", default=".repro-serve",
                   metavar="DIR",
                   help="job-journal directory; a restarted server "
                        "replays it and finishes queued work "
                        "(default: %(default)s)")
    p.add_argument("--queue-cap", type=int, default=64,
                   help="max queued+running unique executions before "
                        "submits get 429 queue_full "
                        "(default: %(default)s)")
    p.add_argument("--quota-rate", type=float, default=5.0,
                   help="per-tenant sustained submits/second "
                        "(default: %(default)s)")
    p.add_argument("--quota-burst", type=int, default=10,
                   help="per-tenant submit burst size "
                        "(default: %(default)s)")
    p.add_argument("--aging-rate", type=float, default=0.05,
                   help="priority gained per queued second (weighted-"
                        "fair anti-starvation; default: %(default)s)")
    p.add_argument("--verbose", action="store_true",
                   help="log each HTTP request to stderr")
    _add_engine_options(p)
    return p


def _add_client_options(p, *, job_arg=True):
    """Options shared by the ``submit``/``status``/``result``/``cancel``
    client subcommands."""
    if job_arg:
        p.add_argument("job", metavar="JOB_ID")
    p.add_argument("--server", required=True, metavar="URL",
                   help="serve-server base URL, e.g. "
                        "http://127.0.0.1:8742")
    p.add_argument("--http-timeout", type=float, default=30.0,
                   help="per-request timeout in seconds "
                        "(default: %(default)s)")


def _add_submit_parser(sub):
    p = sub.add_parser(
        "submit",
        help="submit one run (or pipeline, or tune) to a serve server; "
             "identical in-flight submits coalesce onto one execution",
    )
    _add_client_options(p, job_arg=False)
    p.add_argument("--file", default=None, metavar="SPEC_JSON",
                   help="submit this serialized RunSpec JSON file")
    p.add_argument("--pipeline-file", default=None, metavar="P_JSON",
                   help="submit this serialized PipelineSpec JSON file")
    p.add_argument("--tune-file", default=None, metavar="T_JSON",
                   help="submit this serialized TuneSpec JSON file "
                        "(write one with `tune ... --spec-json T_JSON`)")
    p.add_argument("--tenant", default="anon",
                   help="tenant id for quota accounting "
                        "(default: %(default)s)")
    p.add_argument("--priority", type=float, default=0.0,
                   help="base scheduling priority (higher first)")
    p.add_argument("--wait", action="store_true",
                   help="poll until the job is terminal and print its "
                        "result JSON (exit 0 done / 1 otherwise)")
    p.add_argument("--wait-timeout", type=float, default=300.0,
                   help="--wait polling budget in seconds "
                        "(default: %(default)s)")
    # Run-style args as a third spec source: `submit --server URL
    # --variant tampi_dataflow --preset laptop ...` mirrors `run`.
    p.add_argument("--variant", choices=sorted(VARIANTS), default=None)
    p.add_argument("--preset", choices=sorted(PRESETS),
                   default="marenostrum4_scaled")
    p.add_argument("--nodes", type=int, default=1)
    p.add_argument("--ranks-per-node", type=int, default=None)
    _add_geometry_options(p)
    _add_fault_options(p)
    _add_pdes_options(p)
    return p


def _add_tune_parser(sub):
    p = sub.add_parser(
        "tune",
        help="explore a declared design space over RunSpec knobs and "
             "rank the candidates by a measured objective",
    )
    # Tune source: a committed preset, a serialized TuneSpec, or a
    # run-style base plus --tune-* axis declarations.
    p.add_argument("--fig4", action="store_true",
                   help="tune the committed Fig 4 problem (4 scaled "
                        "nodes; variant x ranks-per-node)")
    p.add_argument("--quick", action="store_true",
                   help="with --fig4: the reduced-tier geometry")
    p.add_argument("--file", default=None, metavar="T_JSON",
                   help="load this serialized TuneSpec JSON instead of "
                        "building one from options")
    p.add_argument("--tune-variants", nargs="+", default=None,
                   choices=sorted(VARIANTS), metavar="V",
                   help="axis: parallelization variants to explore")
    p.add_argument("--tune-schedulers", nargs="+", default=None,
                   choices=sorted(SCHEDULERS), metavar="S",
                   help="axis: task schedulers to explore")
    p.add_argument("--tune-rpn", nargs="+", type=int, default=None,
                   metavar="N",
                   help="axis: ranks-per-node values (the grid is "
                        "re-fitted per value)")
    p.add_argument("--tune-nx", nargs="+", type=int, default=None,
                   metavar="NX",
                   help="axis: cubic block sizes (sets nx=ny=nz)")
    p.add_argument("--tune-pdes-workers", nargs="+", type=int,
                   default=None, metavar="N",
                   help="axis: PDES worker counts")
    p.add_argument("--tune-comm-tasks", nargs="+", type=int,
                   default=None, metavar="N",
                   help="axis: max_comm_tasks granularity caps")
    # Search knobs.
    p.add_argument("--strategy", choices=sorted(STRATEGIES),
                   default="grid",
                   help="search strategy (default: %(default)s)")
    p.add_argument("--objective", choices=sorted(OBJECTIVES),
                   default="total_time",
                   help="ranking objective (default: %(default)s)")
    p.add_argument("--budget", type=int, default=None,
                   help="max candidate evaluations (default: the whole "
                        "space — grid only; --fig4 uses the preset's "
                        "committed budget)")
    p.add_argument("--seed", type=int, default=None,
                   help="search seed for random/halving (default: 0; "
                        "--fig4 uses the preset's committed seed)")
    p.add_argument("--tiers", nargs="+", type=float, default=(0.25, 1.0),
                   metavar="F",
                   help="halving fidelity tiers as stages_per_ts "
                        "fractions, ascending to 1.0 "
                        "(default: 0.25 1.0)")
    p.add_argument("--eta", type=int, default=2,
                   help="halving reduction factor (default: %(default)s)")
    p.add_argument("--robustness", type=float, default=0.0,
                   metavar="INTENSITY",
                   help="re-score finalists under the canonical noise "
                        "mix at this intensity and re-rank by the noisy "
                        "objective (0 = off)")
    p.add_argument("--top-k", type=int, default=3,
                   help="finalists kept for robustness re-scoring "
                        "(default: %(default)s)")
    p.add_argument("--no-prune", action="store_true",
                   help="disable critical-path/idle-gap pruning of "
                        "dominated ranks-per-node candidates")
    p.add_argument("--name", default="tune",
                   help="tune name used in labels and telemetry "
                        "(default: %(default)s)")
    # Outputs.
    p.add_argument("--json", default=None, metavar="PATH",
                   help="also write the TuneReport JSON here")
    p.add_argument("--spec-json", default=None, metavar="PATH",
                   help="also write the resolved TuneSpec JSON here "
                        "(submittable via `submit --tune-file`)")
    # Run-style base (ignored with --fig4/--file).
    p.add_argument("--variant", choices=sorted(VARIANTS),
                   default="tampi_dataflow",
                   help="base variant (default: %(default)s)")
    p.add_argument("--preset", choices=sorted(PRESETS),
                   default="marenostrum4_scaled")
    p.add_argument("--nodes", type=int, default=1)
    p.add_argument("--ranks-per-node", type=int, default=None)
    _add_geometry_options(p)
    _add_fault_options(p)
    _add_pdes_options(p)
    _add_engine_options(p)
    return p


def _add_status_parser(sub):
    p = sub.add_parser(
        "status",
        help="show one job's state on a serve server (omit JOB_ID "
             "for the queue + metrics overview)",
    )
    p.add_argument("job", nargs="?", default=None, metavar="JOB_ID")
    _add_client_options(p, job_arg=False)
    return p


def _add_result_parser(sub):
    p = sub.add_parser(
        "result",
        help="fetch a finished job's result JSON from a serve server "
             "(exit 1 while it is still queued/running)",
    )
    _add_client_options(p)
    p.add_argument("--profile", action="store_true",
                   help="fetch the ProfileReport instead (the spec must "
                        "have been submitted with profile=true)")
    return p


def _add_cancel_parser(sub):
    p = sub.add_parser(
        "cancel",
        help="cancel a queued (immediately) or running (best-effort) "
             "job on a serve server",
    )
    _add_client_options(p)
    return p


def _build_cfg(args, num_ranks):
    objects = (
        single_sphere(args.tsteps)
        if args.input == "single_sphere"
        else four_spheres(args.tsteps)
    )
    return build_config(
        num_ranks,
        tuple(args.root),
        objects,
        nx=args.nx,
        num_vars=args.num_vars,
        num_tsteps=args.tsteps,
        stages_per_ts=args.stages,
        refine_freq=args.refine_freq,
        checksum_freq=args.checksum_freq,
        max_refine_level=args.max_refine_level,
        payload=args.payload,
        comm_vars=args.comm_vars,
        send_faces=args.send_faces,
        separate_buffers=args.separate_buffers,
        max_comm_tasks=args.max_comm_tasks,
        stencil=args.stencil,
        lb_method=args.lb_method,
        uniform_refine=args.uniform_refine,
    )


def _make_engine(args):
    from .exec import ResultCache, RunStatsStore, SweepEngine

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    stats = None if args.no_stats else RunStatsStore(args.stats_file)
    telemetry = None
    if getattr(args, "telemetry", None):
        from .obs.telemetry import TELEMETRY_ENV, TelemetryBus

        telemetry = TelemetryBus(args.telemetry)
        # Exported so PDES worker grandchildren (and any other spawned
        # process) can attach to the same stream; deliberately not a
        # spec field — fingerprints stay identical with telemetry on.
        os.environ[TELEMETRY_ENV] = os.path.abspath(args.telemetry)

    def progress(event):
        if event["event"] in ("ok", "cached", "failed", "blocked", "retry"):
            print(
                f"[{event['index'] + 1}/{event['total']}] "
                f"{event['label']}: {event['status']}"
                f" ({event['wall_time']:.2f}s)",
                file=sys.stderr,
            )

    return SweepEngine(
        jobs=args.jobs,
        cache=cache,
        timeout=args.timeout,
        retries=args.retries,
        progress=progress if args.jobs > 1 else None,
        stats=stats,
        telemetry=telemetry,
        drain_timeout=getattr(args, "drain_timeout", 30.0),
    )


def spec_from_args(args, **extra) -> RunSpec:
    """The one canonical :class:`RunSpec` of a run/profile-style namespace.

    Shared by ``run``, ``profile``, and fault-injected runs so every
    entry point resolves geometry, machine, and ranks-per-node the same
    way.  ``extra`` passes command-specific fields (``profile=True``,
    ``trace_max_events=...``).
    """
    machine = get_preset(args.preset)()
    ranks_per_node = resolve_ranks_per_node(
        args.variant, machine, args.ranks_per_node
    )
    cfg = _build_cfg(args, args.nodes * ranks_per_node)
    return RunSpec(
        config=cfg,
        machine=args.preset,
        variant=args.variant,
        num_nodes=args.nodes,
        ranks_per_node=ranks_per_node,
        scheduler=args.scheduler,
        sched_seed=args.sched_seed,
        check_access=getattr(args, "check_access", False),
        faults=_fault_plan(args),
        pdes_workers=getattr(args, "pdes_workers", 1),
        pdes_partition=getattr(args, "pdes_partition", None),
        **extra,
    )


def cmd_run(args) -> int:
    spec = spec_from_args(args)
    res = run_simulation(spec)
    if args.check_access:
        print("access check:     clean (no undeclared task accesses)")
    print(f"variant:          {res.variant}")
    print(f"machine:          {spec.machine_spec().name}, "
          f"{spec.num_nodes} nodes x {spec.ranks_per_node} ranks")
    print(f"total time:       {res.total_time:.6f} s (simulated)")
    print(f"refinement time:  {res.refine_time:.6f} s")
    print(f"throughput:       {res.gflops:.2f} GFLOPS")
    print(f"final blocks:     {res.num_blocks} "
          f"(imbalance {res.imbalance:.3f})")
    print(f"messages:         {res.comm_stats.messages} "
          f"({res.comm_stats.bytes_sent} bytes)")
    print(f"checksums:        {len(res.checksums)} validated")
    if res.fault_stats is not None:
        fs = res.fault_stats
        print(f"injected faults:  {fs['injected_cpu_seconds']:.6f} s CPU "
              f"({fs['cpu_noise_events']} events, "
              f"{fs['cpu_bursts']} bursts), "
              f"{fs['injected_network_seconds']:.6f} s network "
              f"({fs['messages_delayed']} delayed, "
              f"{fs['messages_lost']} lost)")
    return 0


def cmd_profile(args) -> int:
    import json

    from .obs import ascii_summary, metrics_csv, write_chrome_trace

    res = run_simulation(spec_from_args(
        args, profile=True, trace_max_events=args.trace_max_events,
    ))
    report = res.profile
    # Write every requested export before printing: stdout may be a pipe
    # that closes early (e.g. `| head`), and SIGPIPE must not lose files.
    chrome_events = None
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
    if args.chrome_trace:
        chrome_events = write_chrome_trace(
            res.profiler, args.chrome_trace, variant=res.variant
        )
    if args.metrics_csv:
        with open(args.metrics_csv, "w") as fh:
            fh.write(metrics_csv(report))
    print(ascii_summary(report, top=args.top), end="")
    if report.phase_summary.dropped_events:
        print(
            f"note: tracer ring buffer dropped "
            f"{report.phase_summary.dropped_events} events "
            f"(--trace-max-events {args.trace_max_events})"
        )
    if args.json:
        print(f"profile report written: {args.json}")
    if args.chrome_trace:
        print(
            f"chrome trace written:   {args.chrome_trace} "
            f"({chrome_events} events)"
        )
    if args.metrics_csv:
        print(f"metrics CSV written:    {args.metrics_csv}")
    return 0


def cmd_report(args) -> int:
    import json

    from .obs import ProfileReport, compare_reports

    def load(path):
        with open(path) as fh:
            data = json.load(fh)
        if isinstance(data.get("profile"), dict):
            data = data["profile"]  # a serialized RunResult
        try:
            return ProfileReport.from_dict(data)
        except KeyError as exc:
            raise SystemExit(
                f"{path}: not a ProfileReport JSON (missing {exc}); "
                "produce one with `miniamr-sim profile --json PATH`"
            ) from None

    a, b = (load(path) for path in args.runs)
    print(compare_reports(a, b), end="")
    return 0


def cmd_top(args) -> int:
    from .obs.live import follow, read_stream, render_top

    if args.follow:
        follow(args.stream, interval=args.interval)
    else:
        print(render_top(read_stream(args.stream)), end="")
    return 0


def cmd_engine_report(args) -> int:
    import json

    from .obs import EngineReport

    report = EngineReport.from_file(args.stream)
    if args.chrome_trace:
        count = report.write_chrome_trace(args.chrome_trace)
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report.normalized(), fh, indent=2, sort_keys=True)
    print(report.ascii_summary(), end="")
    if args.chrome_trace:
        print(f"engine trace written: {args.chrome_trace} "
              f"({count} events)")
    if args.json:
        print(f"normalized digest written: {args.json}")
    return 0


def cmd_trend(args) -> int:
    from .obs.trend import trend_table

    text, regressions = trend_table(
        args.results_dir,
        baseline_dir=args.baseline_dir,
        rev=args.rev,
        threshold=args.threshold,
        show_all=args.all,
    )
    print(text, end="")
    return 1 if (regressions and args.strict) else 0


def cmd_sweep(args) -> int:
    machine = get_preset(args.preset)()
    specs = []
    for nodes in args.nodes:
        for variant in args.variants:
            rpn = resolve_ranks_per_node(
                variant, machine, args.ranks_per_node
            )
            cfg = _build_cfg(args, nodes * rpn)
            specs.append(RunSpec(
                config=cfg,
                machine=args.preset,
                variant=variant,
                num_nodes=nodes,
                ranks_per_node=rpn,
                scheduler=args.scheduler,
                sched_seed=args.sched_seed,
            ))
    engine = _make_engine(args)
    report = engine.run(specs)
    rows = []
    for outcome in report.outcomes:
        s = outcome.spec
        if outcome.ok:
            r = outcome.result
            rows.append((
                s.variant, s.num_nodes, s.ranks_per_node, outcome.status,
                f"{r.total_time:.4f}", f"{r.refine_time:.4f}",
                f"{r.gflops:.1f}", r.num_blocks,
            ))
        else:
            rows.append((
                s.variant, s.num_nodes, s.ranks_per_node, "FAILED",
                "-", "-", "-", "-",
            ))
    print(format_table(
        ["variant", "nodes", "ranks/node", "status", "total(s)",
         "refine(s)", "GFLOPS", "blocks"],
        rows,
        title=f"sweep on {args.preset} — {report.summary()}",
    ))
    return 1 if report.failed else 0


def cmd_bench(args) -> int:
    engine = _make_engine(args)
    if args.experiment == "table1":
        print(table1(quick=args.quick, engine=engine).text)
    elif args.experiment == "table2":
        print(table2(quick=args.quick, engine=engine).text)
    elif args.experiment == "traces":
        print(trace_runs(quick=args.quick, engine=engine).text)
    else:
        fn = weak_scaling if args.experiment == "weak" else strong_scaling
        kwargs = {"quick": args.quick, "engine": engine}
        if args.nodes:
            kwargs["node_counts"] = tuple(args.nodes)
        if args.pdes_workers > 1:
            kwargs["pdes_workers"] = args.pdes_workers
        result = fn(**kwargs)
        print(result.text)
    return 0


def cmd_faults(args) -> int:
    engine = _make_engine(args)
    result = resilience(
        intensities=tuple(args.intensities),
        variants=tuple(args.variants),
        num_nodes=args.nodes,
        quick=args.quick,
        engine=engine,
        seed=args.seed,
    )
    print(result.text)
    if args.csv:
        with open(args.csv, "w") as fh:
            fh.write(result.to_csv() + "\n")
        print(f"degradation curve written: {args.csv}")
    return 0


def cmd_pipeline(args) -> int:
    import json

    from . import bench  # noqa: F401 — registers the bench.* generators
    from .obs import pipeline_summary
    from .pipeline import JobGraph, PipelineSpec, run_pipeline

    if (args.name is None) == (args.file is None):
        raise ValueError(
            "pass exactly one of a pipeline name or --file PATH"
        )
    if args.file:
        with open(args.file) as fh:
            pipeline = PipelineSpec.from_json(fh.read())
    else:
        pipeline = bench.get_pipeline(args.name, quick=args.quick)
    engine = _make_engine(args)
    if args.show_dag:
        graph = JobGraph.from_pipeline(pipeline)
        print(graph.ascii(
            costs=engine.predict_costs(graph), workers=args.jobs,
        ))
        return 0
    report = run_pipeline(pipeline, engine=engine)
    print(pipeline_summary(report), end="")
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report.results_dict(), fh, indent=2, sort_keys=True)
        print(f"node results written: {args.json}")
    return 1 if report.sweep.failed else 0


def cmd_verify(args) -> int:
    from dataclasses import replace

    from .exec import Sweep, SweepEngine
    from .verify import (
        DEFAULT_GOLDENS_DIR,
        AccessRaceError,
        GoldenStore,
        default_golden_specs,
        fuzz_sweep,
    )

    engine = SweepEngine(
        jobs=args.jobs, cache=None, timeout=args.timeout,
        retries=args.retries,
    )
    store = GoldenStore(args.goldens_dir or DEFAULT_GOLDENS_DIR)
    specs = default_golden_specs(quick=args.quick)
    problems = []

    # 1. Golden runs (one small config per variant) through the engine.
    names = sorted(specs)
    report = engine.run(
        Sweep([specs[n] for n in names], name="goldens", labels=names)
    )
    results = {}
    for name, outcome in zip(names, report.outcomes):
        if outcome.ok:
            results[name] = outcome.result
        else:
            problems.append(f"{name}: run failed: {outcome.error}")

    if args.update_goldens:
        for name in sorted(results):
            store.save(name, specs[name], results[name])
            print(f"golden updated: {store.path(name)}")
    else:
        for name in sorted(results):
            drift = store.compare(name, specs[name], results[name])
            problems += drift
            print(f"golden {name}: {'ok' if not drift else 'DRIFT'}")

    # 2. Schedule-perturbation fuzz on the data-flow run; the MPI-only
    #    result doubles as the cross-variant reference.
    if not args.skip_fuzz and "tampi_dataflow_small" in results:
        fuzz = fuzz_sweep(
            specs["tampi_dataflow_small"],
            seeds=args.seeds,
            engine=engine,
            reference=results.get("mpi_only_small"),
        )
        print(fuzz.summary().splitlines()[0])
        if not fuzz.ok:
            problems += fuzz.mismatches + fuzz.failures

    # 3. Dependency race detector on the declared-dependency variant
    #    (in-process: the witness must observe the actual execution).
    if not args.skip_race:
        try:
            run_simulation(
                replace(specs["tampi_dataflow_small"], check_access=True)
            )
        except AccessRaceError as exc:
            problems.append(f"race detector: {exc}")
            print("race detector: VIOLATIONS")
        else:
            print("race detector: clean")

    if problems:
        print(f"\nverify FAILED ({len(problems)} problem(s)):")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print("verify: all checks passed")
    return 0


def cmd_serve(args) -> int:
    import signal

    from .serve import Broker, JobStore, serve_forever

    if args.no_cache:
        raise ValueError(
            "serve needs the result cache: it is how coalesced and "
            "restarted jobs share results (drop --no-cache)"
        )
    engine = _make_engine(args)
    store = JobStore(args.journal_dir)
    broker = Broker(
        engine=engine,
        store=store,
        queue_cap=args.queue_cap,
        quota_rate=args.quota_rate,
        quota_burst=args.quota_burst,
        aging_rate=args.aging_rate,
    )

    def _sigterm(signum, frame):
        raise KeyboardInterrupt

    try:
        signal.signal(signal.SIGTERM, _sigterm)
    except ValueError:
        pass  # not on the main thread (tests drive serve_forever directly)
    print(
        f"serving on http://{args.host}:{args.port} "
        f"(journal: {args.journal_dir}, jobs: {args.jobs}, "
        f"queue cap: {args.queue_cap}, "
        f"quota: {args.quota_rate}/s burst {args.quota_burst})",
        file=sys.stderr,
    )
    serve_forever(
        broker, host=args.host, port=args.port, verbose=args.verbose,
    )
    print("serve: drained and stopped", file=sys.stderr)
    return 0


def cmd_tune(args) -> int:
    import json

    from .tune import TuneSpec, run_tune

    sources = sum((
        args.fig4,
        args.file is not None,
        any(values is not None for values in (
            args.tune_variants, args.tune_schedulers, args.tune_rpn,
            args.tune_nx, args.tune_pdes_workers, args.tune_comm_tasks,
        )),
    ))
    if sources != 1:
        raise ValueError(
            "pass exactly one tune source: --fig4, --file T_JSON, or at "
            "least one --tune-* axis over a run-style base"
        )
    if args.file is not None:
        with open(args.file) as fh:
            tune = TuneSpec.from_dict(json.load(fh))
    elif args.fig4:
        from .bench import fig4_tune

        # Only explicit --budget/--seed override the preset's committed
        # values: the default `tune --fig4 --quick` must reproduce the
        # exact spec CI double-runs and diffs.
        kwargs = dict(
            quick=args.quick, robustness=args.robustness,
            strategy=args.strategy,
        )
        if args.budget is not None:
            kwargs["budget"] = args.budget
        if args.seed is not None:
            kwargs["seed"] = args.seed
        tune = fig4_tune(**kwargs)
    else:
        space = {
            axis: tuple(values)
            for axis, values in (
                ("variant", args.tune_variants),
                ("scheduler", args.tune_schedulers),
                ("ranks_per_node", args.tune_rpn),
                ("nx", args.tune_nx),
                ("pdes_workers", args.tune_pdes_workers),
                ("max_comm_tasks", args.tune_comm_tasks),
            )
            if values is not None
        }
        tune = TuneSpec(
            base=spec_from_args(args),
            space=space,
            objective=args.objective,
            strategy=args.strategy,
            budget=0 if args.budget is None else args.budget,
            seed=0 if args.seed is None else args.seed,
            tiers=tuple(args.tiers),
            eta=args.eta,
            robustness=args.robustness,
            fault_seed=args.fault_seed,
            top_k=args.top_k,
            prune=not args.no_prune,
            name=args.name,
        )
    if args.spec_json:
        with open(args.spec_json, "w") as fh:
            json.dump(tune.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
    report = run_tune(tune, engine=_make_engine(args))
    # Files before stdout: SIGPIPE on a closed pipe must not lose them.
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(report.to_json())
    print(report.ascii())
    return 0


def cmd_submit(args) -> int:
    import json

    from .serve import STATE_EXIT_CODES, ServeClient, ServeError

    sources = [
        source for source in (
            args.file, args.pipeline_file, args.tune_file, args.variant,
        )
        if source is not None
    ]
    if len(sources) != 1:
        raise ValueError(
            "pass exactly one spec source: --file SPEC_JSON, "
            "--pipeline-file P_JSON, --tune-file T_JSON, or run-style "
            "--variant ... options"
        )
    if args.file:
        with open(args.file) as fh:
            spec, kind = json.load(fh), "run"
    elif args.pipeline_file:
        with open(args.pipeline_file) as fh:
            spec, kind = json.load(fh), "pipeline"
    elif args.tune_file:
        with open(args.tune_file) as fh:
            spec, kind = json.load(fh), "tune"
    else:
        spec, kind = spec_from_args(args).to_dict(), "run"
    client = ServeClient(args.server, timeout=args.http_timeout)
    try:
        body = client.submit(
            spec, kind=kind, tenant=args.tenant, priority=args.priority,
        )
        job = body["job"]
        print(
            f"job {job['id']}: {job['state']} (mode: {body['mode']}, "
            f"fingerprint {job['fingerprint'][:12]})"
        )
        if not args.wait:
            return 0
        view = client.wait(job["id"], timeout=args.wait_timeout)
        if view["state"] == "done":
            print(json.dumps(
                client.result(job["id"])["result"],
                indent=2, sort_keys=True,
            ))
        else:
            detail = f": {view['error']}" if view.get("error") else ""
            print(
                f"job {job['id']}: {view['state']}{detail}",
                file=sys.stderr,
            )
        return STATE_EXIT_CODES.get(view["state"], 1)
    except ServeError as exc:
        print(f"miniamr-sim: server: {exc}", file=sys.stderr)
        return exc.exit_code


def cmd_status(args) -> int:
    import json

    from .serve import ServeClient, ServeError

    client = ServeClient(args.server, timeout=args.http_timeout)
    try:
        if args.job is not None:
            print(json.dumps(
                client.job(args.job)["job"], indent=2, sort_keys=True,
            ))
            return 0
        queue_view = client.queue()
        metrics = client.metrics()
        print(json.dumps(
            {
                "queue": {
                    key: queue_view[key]
                    for key in ("depth", "cap", "queued", "running")
                },
                "metrics": {
                    key: metrics[key]
                    for key in ("jobs", "executions", "cache", "engine")
                },
            },
            indent=2, sort_keys=True,
        ))
        return 0
    except ServeError as exc:
        print(f"miniamr-sim: server: {exc}", file=sys.stderr)
        return exc.exit_code


def cmd_result(args) -> int:
    import json

    from .serve import ServeClient, ServeError

    client = ServeClient(args.server, timeout=args.http_timeout)
    try:
        if args.profile:
            payload = client.profile(args.job)["profile"]
        else:
            payload = client.result(args.job)["result"]
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    except ServeError as exc:
        print(f"miniamr-sim: server: {exc}", file=sys.stderr)
        return exc.exit_code


def cmd_cancel(args) -> int:
    from .serve import ServeClient, ServeError

    client = ServeClient(args.server, timeout=args.http_timeout)
    try:
        job = client.cancel(args.job)["job"]
        print(f"job {job['id']}: {job['state']}")
        return 0
    except ServeError as exc:
        print(f"miniamr-sim: server: {exc}", file=sys.stderr)
        return exc.exit_code


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="miniamr-sim",
        description=(
            "Simulated miniAMR: data-flow (TAMPI+OmpSs-2), fork-join, and "
            "MPI-only parallelizations on a modelled cluster"
        ),
    )
    parser.add_argument(
        "--version", action="version",
        version=f"%(prog)s {__version__}",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    _add_run_parser(sub)
    _add_sweep_parser(sub)
    _add_bench_parser(sub)
    _add_faults_parser(sub)
    _add_pipeline_parser(sub)
    _add_verify_parser(sub)
    _add_profile_parser(sub)
    _add_report_parser(sub)
    _add_top_parser(sub)
    _add_engine_report_parser(sub)
    _add_trend_parser(sub)
    _add_serve_parser(sub)
    _add_tune_parser(sub)
    _add_submit_parser(sub)
    _add_status_parser(sub)
    _add_result_parser(sub)
    _add_cancel_parser(sub)
    args = parser.parse_args(argv)
    commands = {
        "run": cmd_run,
        "sweep": cmd_sweep,
        "bench": cmd_bench,
        "faults": cmd_faults,
        "pipeline": cmd_pipeline,
        "verify": cmd_verify,
        "profile": cmd_profile,
        "report": cmd_report,
        "top": cmd_top,
        "engine-report": cmd_engine_report,
        "trend": cmd_trend,
        "serve": cmd_serve,
        "tune": cmd_tune,
        "submit": cmd_submit,
        "status": cmd_status,
        "result": cmd_result,
        "cancel": cmd_cancel,
    }
    from .exec import SweepError

    try:
        return commands[args.command](args)
    except BrokenPipeError:
        # stdout reader went away (e.g. `| head`): exit quietly.  Point
        # stdout at devnull so the interpreter's shutdown flush does not
        # raise the same error again.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
    except SweepError as exc:
        # Failed runs within an otherwise valid sweep/experiment.
        print(f"miniamr-sim: error: {exc}", file=sys.stderr)
        return 1
    except (ValueError, KeyError, TypeError) as exc:
        # Invalid spec/scheduler/geometry combinations surface as clean
        # diagnostics with a distinct exit code, not raw tracebacks.
        message = exc.args[0] if exc.args else exc
        print(f"miniamr-sim: error: {message}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())

"""Versioned JSON protocol of the ``repro.serve`` HTTP service.

Every request and response body is a JSON object carrying the protocol
version under ``"v"`` (:data:`PROTOCOL_VERSION`).  The server rejects
versions it does not speak with ``unsupported_version`` rather than
guessing — clients and servers evolve independently once a journal can
outlive either side.

Errors are *typed*: a failing response is ``{"v": 1, "error": {"code":
..., "message": ...}}`` where ``code`` is a key of :data:`ERRORS`, which
also fixes the HTTP status and the exit code the client CLI maps it to —
the same convention the CLI already uses everywhere (0 success, 1 failed
work, 2 invalid spec/arguments).

Endpoints (all under ``/v1``)::

    POST   /v1/jobs            submit a RunSpec or PipelineSpec
    GET    /v1/jobs/<id>        job status view
    GET    /v1/jobs/<id>/result RunResult / pipeline results JSON
    GET    /v1/jobs/<id>/profile ProfileReport of a profiled run
    DELETE /v1/jobs/<id>        cancel (cooperative; best-effort running)
    GET    /v1/queue            queued/running introspection
    GET    /v1/metrics          broker aggregates (quota, cache, waits)
    GET    /v1/events           Server-Sent-Events job lifecycle stream
    GET    /v1/telemetry        raw telemetry JSONL (for ``top --follow``)

A submit body is::

    {"v": 1, "kind": "run" | "pipeline" | "tune", "spec": {...},
     "tenant": "alice", "priority": 0.0}

where ``spec`` is :meth:`RunSpec.to_dict` / :meth:`PipelineSpec.to_dict`
/ :meth:`TuneSpec.to_dict` output.  The response echoes the created job view plus ``mode``:
``"new"`` (an execution was scheduled), ``"coalesced"`` (an identical
fingerprint is already queued/running — this job attaches to that one
execution), or ``"cached"`` (the content-addressed cache already holds
the result; the job is born ``done``).
"""

from __future__ import annotations

import hashlib
import json

from ..core import RunSpec
from ..pipeline import PipelineSpec

#: Protocol version spoken by this package (bump on breaking change).
PROTOCOL_VERSION = 1

#: error code -> (HTTP status, client CLI exit code).  Exit codes follow
#: the CLI convention: 1 = the work failed, 2 = the request was invalid.
ERRORS = {
    "invalid_request": (400, 2),
    "invalid_spec": (400, 2),
    "unsupported_version": (400, 2),
    "not_found": (404, 2),
    "not_ready": (409, 1),
    "job_failed": (409, 1),
    "conflict": (409, 1),
    "quota_exceeded": (429, 1),
    "queue_full": (429, 1),
    "server_error": (500, 1),
    "shutting_down": (503, 1),
}

#: Job lifecycle states, in rough order.  ``blocked`` mirrors the
#: engine's distinct "never attempted" terminal state.
JOB_STATES = ("queued", "running", "done", "failed", "blocked", "canceled")
TERMINAL_STATES = ("done", "failed", "blocked", "canceled")

#: job terminal state -> client CLI exit code.
STATE_EXIT_CODES = {"done": 0, "failed": 1, "blocked": 1, "canceled": 1}

SUBMIT_KINDS = ("run", "pipeline", "tune")


class ProtocolError(Exception):
    """A typed request/response failure (see :data:`ERRORS`)."""

    def __init__(self, code, message, *, retry_after=None):
        if code not in ERRORS:
            raise ValueError(f"unknown error code {code!r}")
        super().__init__(message)
        self.code = code
        self.message = message
        #: Seconds after which retrying may succeed (429/503 responses
        #: surface it as the ``Retry-After`` header, rounded up).
        self.retry_after = retry_after

    @property
    def http_status(self) -> int:
        return ERRORS[self.code][0]

    @property
    def exit_code(self) -> int:
        return ERRORS[self.code][1]

    def body(self) -> dict:
        error = {"code": self.code, "message": self.message}
        if self.retry_after is not None:
            error["retry_after"] = self.retry_after
        return envelope(error=error)


def envelope(**fields) -> dict:
    """A versioned response body."""
    body = {"v": PROTOCOL_VERSION}
    body.update(fields)
    return body


def check_version(body: dict):
    """Reject bodies speaking a different protocol version.

    A body without ``"v"`` is accepted as the current version (curl
    convenience); anything explicit must match exactly.
    """
    version = body.get("v", PROTOCOL_VERSION)
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            "unsupported_version",
            f"protocol v{version!r} not supported (server speaks "
            f"v{PROTOCOL_VERSION})",
        )


# ----------------------------------------------------------------------
# Submit
# ----------------------------------------------------------------------
def parse_submit(body):
    """Validate a submit body into ``(kind, payload, tenant, priority)``.

    ``payload`` is the constructed :class:`RunSpec`/:class:`PipelineSpec`
    (construction *is* the validation — the same errors a local run
    would raise surface here as ``invalid_spec``).
    """
    if not isinstance(body, dict):
        raise ProtocolError(
            "invalid_request",
            f"submit body must be a JSON object, got "
            f"{type(body).__name__}",
        )
    check_version(body)
    kind = body.get("kind", "run")
    if kind not in SUBMIT_KINDS:
        raise ProtocolError(
            "invalid_request",
            f"kind must be one of {list(SUBMIT_KINDS)}, got {kind!r}",
        )
    spec_dict = body.get("spec")
    if not isinstance(spec_dict, dict):
        raise ProtocolError(
            "invalid_request", 'submit body needs a "spec" object',
        )
    tenant = body.get("tenant", "anon")
    if not isinstance(tenant, str) or not tenant or len(tenant) > 64:
        raise ProtocolError(
            "invalid_request",
            "tenant must be a non-empty string of at most 64 chars",
        )
    priority = body.get("priority", 0.0)
    if not isinstance(priority, (int, float)) or isinstance(priority, bool):
        raise ProtocolError(
            "invalid_request", "priority must be a number",
        )
    try:
        if kind == "run":
            payload = RunSpec.from_dict(spec_dict)
        elif kind == "tune":
            from ..tune import TuneSpec

            payload = TuneSpec.from_dict(spec_dict)
        else:
            payload = PipelineSpec.from_dict(spec_dict)
    except (ValueError, KeyError, TypeError) as exc:
        message = exc.args[0] if exc.args else exc
        raise ProtocolError(
            "invalid_spec", f"invalid {kind} spec: {message}",
        ) from None
    return kind, payload, tenant, float(priority)


def submit_fingerprint(kind, payload) -> str:
    """Content address used for coalescing and cache lookup.

    Run specs use their native :meth:`RunSpec.fingerprint` so the
    service shares cache entries with ad-hoc CLI runs byte-for-byte.
    Tunes use :meth:`TuneSpec.fingerprint` (same reason: identical to
    local ``miniamr-sim tune`` declarations).  Pipelines hash their
    canonical JSON plus the package version (the same discipline, a
    distinct keyspace).
    """
    if kind in ("run", "tune"):
        return payload.fingerprint()
    from .. import __version__

    blob = json.dumps(
        {"pipeline": payload.to_dict(), "version": __version__},
        sort_keys=True, separators=(",", ":"), allow_nan=False,
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()

"""Stdlib HTTP client for the serve protocol (urllib, no deps).

:class:`ServeClient` wraps the ``/v1`` endpoints 1:1; every typed error
the server returns surfaces as :class:`ServeError` carrying the protocol
code, the HTTP status, ``Retry-After`` when present, and the CLI exit
code the error maps to — so the ``submit``/``status``/``result``/
``cancel`` subcommands are thin shells around this class.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

from .protocol import ERRORS, PROTOCOL_VERSION

#: Default per-request timeout (seconds); ``wait`` passes its own.
DEFAULT_TIMEOUT = 30.0


class ServeError(Exception):
    """A typed protocol error relayed from the server."""

    def __init__(self, code, message, *, http_status=None,
                 retry_after=None):
        super().__init__(message)
        self.code = code
        self.message = message
        self.http_status = http_status
        self.retry_after = retry_after

    @property
    def exit_code(self) -> int:
        """The CLI exit code this error maps to (2 for malformed/unknown,
        1 for failed work — the protocol's own table)."""
        return ERRORS.get(self.code, (None, 2))[1]

    def __str__(self):
        suffix = ""
        if self.retry_after is not None:
            suffix = f" (retry after {self.retry_after}s)"
        return f"{self.code}: {self.message}{suffix}"


class ServeClient:
    """One server URL; every method is one HTTP round trip."""

    def __init__(self, base_url, *, timeout=DEFAULT_TIMEOUT):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _request(self, method, path, body=None):
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            url, data=data, headers=headers, method=method,
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            raise self._decode_error(exc) from None
        except urllib.error.URLError as exc:
            raise ServeError(
                "server_error", f"cannot reach {self.base_url}: "
                f"{exc.reason}",
            ) from None

    @staticmethod
    def _decode_error(exc: "urllib.error.HTTPError") -> ServeError:
        retry_after = exc.headers.get("Retry-After")
        if retry_after is not None:
            try:
                retry_after = int(retry_after)
            except ValueError:
                retry_after = None
        try:
            error = json.loads(exc.read().decode("utf-8"))["error"]
            return ServeError(
                error["code"], error["message"],
                http_status=exc.code,
                retry_after=error.get("retry_after", retry_after),
            )
        except (ValueError, KeyError, TypeError):
            return ServeError(
                "server_error", f"HTTP {exc.code}: {exc.reason}",
                http_status=exc.code, retry_after=retry_after,
            )

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def submit(self, spec_dict, *, kind="run", tenant="anon",
               priority=0.0) -> dict:
        """Submit one spec; returns the response envelope (``job`` view
        plus ``mode`` ∈ new/coalesced/cached)."""
        return self._request("POST", "/v1/jobs", body={
            "v": PROTOCOL_VERSION, "kind": kind, "spec": spec_dict,
            "tenant": tenant, "priority": priority,
        })

    def job(self, job_id) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def result(self, job_id) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}/result")

    def profile(self, job_id) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}/profile")

    def cancel(self, job_id) -> dict:
        return self._request("DELETE", f"/v1/jobs/{job_id}")

    def queue(self) -> dict:
        return self._request("GET", "/v1/queue")

    def metrics(self) -> dict:
        return self._request("GET", "/v1/metrics")

    def health(self) -> dict:
        return self._request("GET", "/v1/health")

    # ------------------------------------------------------------------
    # Conveniences
    # ------------------------------------------------------------------
    def wait(self, job_id, *, timeout=300.0, poll=0.2) -> dict:
        """Poll until the job is terminal; returns its final view.

        Raises :class:`ServeError` (``not_ready``) on timeout — the job
        keeps running server-side.
        """
        deadline = time.monotonic() + timeout
        while True:
            view = self.job(job_id)["job"]
            if view["state"] in ("done", "failed", "blocked", "canceled"):
                return view
            if time.monotonic() >= deadline:
                raise ServeError(
                    "not_ready",
                    f"job {job_id} still {view['state']} after "
                    f"{timeout}s",
                )
            time.sleep(poll)

    def events(self, *, timeout=None):
        """Generator over the SSE stream's decoded event dicts.

        Blocks on the connection; ends when the server closes it (on
        shutdown, after a final ``server_stop`` event).  Keepalive
        comments are skipped.
        """
        request = urllib.request.Request(
            f"{self.base_url}/v1/events",
            headers={"Accept": "text/event-stream"},
        )
        with urllib.request.urlopen(request, timeout=timeout) as stream:
            for raw in stream:
                line = raw.decode("utf-8").strip()
                if not line.startswith("data:"):
                    continue
                try:
                    yield json.loads(line[len("data:"):].strip())
                except ValueError:
                    continue

"""Stdlib HTTP front-end of the serve broker.

A :class:`ThreadingHTTPServer` whose handler threads translate HTTP
into :class:`~repro.serve.broker.Broker` calls — every policy decision
(quota, coalescing, backpressure, recovery) lives in the broker; this
module only speaks wire format:

* JSON request/response bodies with explicit ``Content-Length``;
* typed :class:`~repro.serve.protocol.ProtocolError` → its HTTP status,
  with ``Retry-After`` on 429/503;
* ``GET /v1/events`` as Server-Sent-Events (one ``data:`` line per job
  lifecycle event, ``: keepalive`` comments while idle);
* ``GET /v1/telemetry`` streams the raw telemetry JSONL file so
  ``miniamr-sim top --follow <url>`` works against a remote server.
"""

from __future__ import annotations

import json
import queue
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .protocol import ProtocolError, envelope

#: Largest accepted request body (a pipeline spec is a few KB; anything
#: near this bound is abuse, not a spec).
MAX_BODY_BYTES = 4 << 20

#: Seconds between SSE keepalive comments on an idle event stream.
SSE_KEEPALIVE = 5.0


class ServeHandler(BaseHTTPRequestHandler):
    """Routes ``/v1/...`` onto ``self.server.broker``."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve/1"

    # Quiet by default: the broker journal is the record, not stderr.
    def log_message(self, format, *args):
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    @property
    def broker(self):
        return self.server.broker

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def do_GET(self):
        self._dispatch("GET")

    def do_POST(self):
        self._dispatch("POST")

    def do_DELETE(self):
        self._dispatch("DELETE")

    def _dispatch(self, method):
        try:
            self._route(method)
        except ProtocolError as exc:
            self._send_error(exc)
        except BrokenPipeError:
            pass  # client went away mid-response
        except Exception as exc:  # never leak a traceback as HTML
            self._send_error(
                ProtocolError("server_error", f"{type(exc).__name__}: {exc}")
            )

    def _route(self, method):
        path = self.path.split("?", 1)[0].rstrip("/")
        parts = [p for p in path.split("/") if p]
        if not parts or parts[0] != "v1":
            raise ProtocolError(
                "not_found", f"unknown path {self.path!r} (try /v1/...)",
            )
        parts = parts[1:]
        if parts == ["jobs"] and method == "POST":
            body = self.broker.submit(self._read_json())
            status = 200 if body.get("mode") in ("coalesced", "cached") \
                else 201
            return self._send_json(body, status=status)
        if len(parts) >= 2 and parts[0] == "jobs":
            job_id = parts[1]
            if len(parts) == 2:
                if method == "GET":
                    return self._send_json(self.broker.job_view(job_id))
                if method == "DELETE":
                    return self._send_json(self.broker.cancel(job_id))
            elif len(parts) == 3 and method == "GET":
                if parts[2] == "result":
                    return self._send_json(self.broker.result(job_id))
                if parts[2] == "profile":
                    return self._send_json(self.broker.profile(job_id))
        if method == "GET":
            if parts == ["queue"]:
                return self._send_json(self.broker.queue_snapshot())
            if parts == ["metrics"]:
                return self._send_json(self.broker.metrics())
            if parts == ["events"]:
                return self._stream_events()
            if parts == ["telemetry"]:
                return self._send_telemetry()
            if parts == ["health"]:
                return self._send_json(envelope(ok=True))
        raise ProtocolError(
            "not_found", f"no route for {method} {self.path!r}",
        )

    # ------------------------------------------------------------------
    # Bodies
    # ------------------------------------------------------------------
    def _read_json(self) -> dict:
        try:
            length = int(self.headers.get("Content-Length", 0))
        except (TypeError, ValueError):
            raise ProtocolError(
                "invalid_request", "malformed Content-Length",
            ) from None
        if length <= 0:
            raise ProtocolError(
                "invalid_request", "request needs a JSON body",
            )
        if length > MAX_BODY_BYTES:
            raise ProtocolError(
                "invalid_request",
                f"body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte cap",
            )
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ProtocolError(
                "invalid_request", f"body is not valid JSON: {exc}",
            ) from None

    def _send_json(self, body: dict, *, status=200, extra_headers=()):
        data = json.dumps(body, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        for name, value in extra_headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(data)

    def _send_error(self, exc: ProtocolError):
        extra = []
        if exc.retry_after is not None:
            extra.append(("Retry-After", str(int(exc.retry_after))))
        try:
            self._send_json(
                exc.body(), status=exc.http_status, extra_headers=extra,
            )
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass

    # ------------------------------------------------------------------
    # Streams
    # ------------------------------------------------------------------
    def _stream_events(self):
        """SSE job-lifecycle stream; runs until the client disconnects
        or the broker shuts down (a final ``server_stop`` event)."""
        q = self.broker.subscribe()
        try:
            self.send_response(200)
            self.send_header("Content-Type", "text/event-stream")
            self.send_header("Cache-Control", "no-store")
            # One long-lived response per connection; no keep-alive
            # bookkeeping for a stream that never ends normally.
            self.send_header("Connection", "close")
            self.end_headers()
            self.close_connection = True
            while True:
                try:
                    event = q.get(timeout=SSE_KEEPALIVE)
                except queue.Empty:
                    self.wfile.write(b": keepalive\n\n")
                    self.wfile.flush()
                    continue
                payload = json.dumps(event, sort_keys=True)
                self.wfile.write(
                    f"data: {payload}\n\n".encode("utf-8")
                )
                self.wfile.flush()
                if event.get("event") == "server_stop":
                    return
        except (BrokenPipeError, ConnectionResetError, OSError):
            pass
        finally:
            self.broker.unsubscribe(q)

    def _send_telemetry(self):
        """The raw telemetry JSONL (whole current file, then EOF)."""
        bus = self.broker.telemetry
        if bus is None:
            raise ProtocolError(
                "not_found",
                "server was started without --telemetry",
            )
        try:
            with open(bus.path, "rb") as fh:
                data = fh.read()
        except OSError as exc:
            raise ProtocolError(
                "server_error", f"telemetry stream unreadable: {exc}",
            ) from None
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)


class ServeServer(ThreadingHTTPServer):
    """The listener: a threading HTTP server owning one broker."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, addr, broker, *, verbose=False):
        super().__init__(addr, ServeHandler)
        self.broker = broker
        self.verbose = verbose


def serve_forever(broker, *, host="127.0.0.1", port=8742, verbose=False,
                  ready=None, should_stop=None, poll_interval=0.2):
    """Run the HTTP front-end until ``should_stop()`` turns true.

    Binds, starts the broker threads, emits ``serve_start``, then polls
    the listener.  On stop (or KeyboardInterrupt/SIGTERM translated to
    one by the CLI) the broker drains per its ``drain_timeout`` and the
    journal is compacted.  ``ready``, when given, is a
    ``threading.Event`` set once the socket is accepting — tests and
    the CLI's startup message key off it.  Returns the bound
    ``(host, port)``.
    """
    server = ServeServer((host, port), broker, verbose=verbose)
    addr = server.server_address[:2]
    broker.start()
    if broker.telemetry is not None:
        broker.telemetry.emit("serve_start", addr=f"{addr[0]}:{addr[1]}")
    if ready is not None:
        ready.set()
    try:
        if should_stop is None:
            server.serve_forever(poll_interval=poll_interval)
        else:
            server.timeout = poll_interval
            while not should_stop():
                server.handle_request()
    except KeyboardInterrupt:
        pass
    finally:
        # Stop accepting first, then drain: a submit racing shutdown
        # gets connection-refused rather than a half-served job.
        threading.Thread(target=server.shutdown, daemon=True).start()
        server.server_close()
        broker.shutdown()
    return addr

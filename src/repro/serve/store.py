"""Crash-safe on-disk job journal for the serve broker.

One append-only JSONL file (``jobs.jsonl``) holds the full record of
every job mutation: each line is the *complete* serialized
:class:`JobRecord` after the mutation, written with a single ``os.write``
to an ``O_APPEND`` descriptor — the same one-line-one-write discipline as
:mod:`repro.obs.telemetry`, so a crash can tear at most the final line
(replay skips it).  Replay is last-wins by job id, which makes updates,
compaction, and recovery all the same trivial operation.

Compaction rewrites the journal as one line per live job via temp-file +
atomic ``os.replace`` every :attr:`JobStore.compact_every` appends, so
the file stays proportional to the job population rather than the
mutation history.

Results never live here: a ``done`` job holds only its spec fingerprint,
and the result is re-attached from the content-addressed
:class:`~repro.exec.cache.ResultCache` — which is exactly what lets a
restarted server serve results it computed in a previous life.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

from .protocol import JOB_STATES, TERMINAL_STATES

#: Journal file name inside the serve directory.
JOURNAL_NAME = "jobs.jsonl"


@dataclass
class JobRecord:
    """One tenant-visible job: identity, spec, lifecycle, attribution."""

    id: str
    tenant: str
    kind: str                       # "run" | "pipeline"
    fingerprint: str
    #: Serialized RunSpec/PipelineSpec dict (replayable after restart).
    spec: dict
    state: str = "queued"
    #: Wall-clock epoch seconds (human-facing; never fingerprinted).
    submitted_at: float = field(default_factory=time.time)
    started_at: float = None
    finished_at: float = None
    error: str = None
    #: Primary job id whose execution this job attached to (coalescing);
    #: ``None`` for primaries and cache hits.
    coalesced_with: str = None
    #: Served straight from the result cache at submit time.
    cached: bool = False
    priority: float = 0.0
    attempts: int = 0

    def __post_init__(self):
        if self.state not in JOB_STATES:
            raise ValueError(f"unknown job state {self.state!r}")

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def view(self) -> dict:
        """The API-facing status dict (spec omitted: it can be large)."""
        view = {
            "id": self.id,
            "tenant": self.tenant,
            "kind": self.kind,
            "fingerprint": self.fingerprint,
            "state": self.state,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "cached": self.cached,
            "coalesced_with": self.coalesced_with,
            "priority": self.priority,
            "attempts": self.attempts,
        }
        if self.error is not None:
            view["error"] = self.error
        return view

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "JobRecord":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in known})


class JobStore:
    """The journal plus its in-memory materialized view.

    Thread-safe (the HTTP handler pool and the broker scheduler thread
    both write).  Single-writer by design: one server process owns one
    journal directory — the multi-process sharing story belongs to the
    result cache, not here.
    """

    def __init__(self, root, *, compact_every=256):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.path = self.root / JOURNAL_NAME
        self.compact_every = compact_every
        self.jobs = {}                # id -> JobRecord, insertion order
        self._lock = threading.Lock()
        self._appends = 0
        self._torn_lines = 0
        self._replay()
        self._fd = os.open(
            self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644,
        )

    # ------------------------------------------------------------------
    def _replay(self):
        """Rebuild the job map from the journal (last line wins per id).

        A corrupt line is tolerated only in final position — that is
        the one place a crash mid-``os.write`` can tear; anywhere else
        it means the file was edited and deserves a loud error.
        """
        if not self.path.is_file():
            return
        with open(self.path, "r", encoding="utf-8") as fh:
            lines = fh.readlines()
        for lineno, line in enumerate(lines, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = JobRecord.from_dict(json.loads(line))
            except (ValueError, KeyError, TypeError) as exc:
                if lineno == len(lines):
                    self._torn_lines += 1
                    continue
                raise ValueError(
                    f"{self.path}:{lineno}: corrupt journal line ({exc})"
                ) from None
            self.jobs[record.id] = record

    # ------------------------------------------------------------------
    def record(self, job: JobRecord):
        """Persist a job's current state (both insert and update)."""
        line = (
            json.dumps(job.to_dict(), sort_keys=True,
                       separators=(",", ":"), default=str)
            + "\n"
        ).encode("utf-8")
        with self._lock:
            self.jobs[job.id] = job
            os.write(self._fd, line)
            self._appends += 1
            if self._appends >= self.compact_every:
                self._compact_locked()

    def get(self, job_id: str):
        with self._lock:
            return self.jobs.get(job_id)

    def all_jobs(self) -> list:
        with self._lock:
            return list(self.jobs.values())

    def by_fingerprint(self, fingerprint: str) -> list:
        with self._lock:
            return [
                job for job in self.jobs.values()
                if job.fingerprint == fingerprint
            ]

    def __len__(self):
        with self._lock:
            return len(self.jobs)

    # ------------------------------------------------------------------
    def compact(self):
        """Rewrite the journal as one line per live job (atomic)."""
        with self._lock:
            self._compact_locked()

    def _compact_locked(self):
        tmp = self.path.with_suffix(".jsonl.part")
        with open(tmp, "w", encoding="utf-8") as fh:
            for job in self.jobs.values():
                fh.write(json.dumps(
                    job.to_dict(), sort_keys=True,
                    separators=(",", ":"), default=str,
                ) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        if self._fd is not None:
            os.close(self._fd)
        self._fd = os.open(
            self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644,
        )
        self._appends = 0

    def close(self):
        with self._lock:
            if self._fd is not None:
                os.close(self._fd)
                self._fd = None

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()

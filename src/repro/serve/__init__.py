"""``repro.serve`` — a long-running multi-tenant sweep service.

The serving layer turns the batch :class:`~repro.exec.SweepEngine` into
a resident HTTP service (stdlib only): clients submit
:class:`~repro.core.RunSpec`/:class:`~repro.pipeline.PipelineSpec`
JSON, the broker coalesces identical fingerprints onto one execution,
enforces per-tenant token-bucket quotas with 429 + Retry-After
backpressure, journals every job transition crash-safely, and streams
job lifecycle events over SSE.  See DESIGN.md §11.

Layers (each importable on its own):

* :mod:`~repro.serve.protocol` — versioned request/response schemas and
  typed error codes (wire format, no I/O);
* :mod:`~repro.serve.store` — the append-only JSONL job journal;
* :mod:`~repro.serve.broker` — quotas, coalescing, scheduling policy;
* :mod:`~repro.serve.server` / :mod:`~repro.serve.client` — the
  stdlib HTTP front-end and its urllib client.

Serving is fingerprint-neutral by construction: tenant ids, priorities,
and job ids live in :class:`~repro.serve.store.JobRecord`, never in a
spec — a run served remotely caches, fingerprints, and results
byte-identically to the same run executed by the CLI.
"""

from .broker import Broker, TokenBucket
from .client import ServeClient, ServeError
from .protocol import (
    ERRORS,
    JOB_STATES,
    PROTOCOL_VERSION,
    STATE_EXIT_CODES,
    TERMINAL_STATES,
    ProtocolError,
    envelope,
    parse_submit,
    submit_fingerprint,
)
from .server import ServeServer, serve_forever
from .store import JobRecord, JobStore

__all__ = [
    "Broker",
    "ERRORS",
    "JOB_STATES",
    "JobRecord",
    "JobStore",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "STATE_EXIT_CODES",
    "ServeClient",
    "ServeError",
    "ServeServer",
    "TERMINAL_STATES",
    "TokenBucket",
    "envelope",
    "parse_submit",
    "serve_forever",
    "submit_fingerprint",
]

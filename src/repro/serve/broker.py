"""Admission control and scheduling policy of the serve layer.

The broker sits between the HTTP handlers and a resident
:class:`~repro.exec.EngineSession`:

* **Quotas** — each tenant draws from a token bucket (``quota_burst``
  capacity, ``quota_rate`` tokens/second refill); an empty bucket maps
  to HTTP 429 with a ``Retry-After`` telling the client when one token
  will have refilled.
* **Backpressure** — at most ``queue_cap`` *executions* (unique
  fingerprints, not attached jobs) may be queued or running; beyond
  that a new fingerprint gets 429 ``queue_full`` + Retry-After.
* **Request coalescing** — a submit whose fingerprint is already
  queued/running attaches to that one execution: both tenants' jobs
  complete from the same run, and the engine executes it exactly once.
  A fingerprint already in the content-addressed
  :class:`~repro.exec.cache.ResultCache` never executes at all — the
  job is born ``done`` (the cache-hit fast path).
* **Weighted-fair priority aging** — a job's base priority is its
  tenant's weight (plus any explicit submit priority); the session
  grows effective priority linearly with queue age, so a heavy tenant
  cannot starve a light one indefinitely.

Run jobs flow through the shared session (subprocess pool, cancelable);
pipeline and tune jobs execute on a dedicated single-worker engine
thread — they are DAGs/sweeps of runs whose inner nodes already cache
and parallelize, so serving them serially keeps the broker simple
without losing work.  Tune jobs are admitted per-tenant exactly like
everything else: they draw quota tokens, count against ``queue_cap``,
coalesce by :meth:`TuneSpec.fingerprint`, and memoize their reports.

State is journaled through :class:`~repro.serve.store.JobStore` on every
transition, so a restarted broker resumes exactly where the journal
says: ``running`` jobs demote to ``queued`` (their execution died with
the old process) and re-execute; ``done`` jobs re-attach results from
the cache.
"""

from __future__ import annotations

import math
import queue
import threading
import time
import uuid
from collections import OrderedDict, deque

from ..pipeline import run_pipeline
from .protocol import (
    ProtocolError,
    envelope,
    parse_submit,
    submit_fingerprint,
)
from .store import JobRecord

#: Bound on the in-memory result payload cache (results also live in the
#: on-disk ResultCache; this only saves re-decoding hot entries).
RESULT_MEMO_CAP = 128

#: Queue-wait histogram: power-of-two millisecond buckets up to ~17 min.
WAIT_BUCKET_MAX_EXP = 20


class TokenBucket:
    """Classic token bucket: ``capacity`` burst, ``rate`` tokens/sec."""

    __slots__ = ("capacity", "rate", "tokens", "t")

    def __init__(self, capacity, rate):
        self.capacity = float(capacity)
        self.rate = float(rate)
        self.tokens = float(capacity)
        self.t = None

    def take(self, now) -> float:
        """Consume one token; returns 0.0 on success, else the seconds
        until one token will have refilled (the Retry-After)."""
        if self.t is not None:
            self.tokens = min(
                self.capacity, self.tokens + (now - self.t) * self.rate
            )
        self.t = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return 0.0
        if self.rate <= 0:
            return 60.0
        return (1.0 - self.tokens) / self.rate


class _Execution:
    """One unique fingerprint's run: the unit coalescing attaches to."""

    __slots__ = ("fingerprint", "kind", "payload", "primary", "job_ids",
                 "ticket", "state", "priority", "canceled", "tenant")

    def __init__(self, fingerprint, kind, payload, primary, priority,
                 tenant):
        self.fingerprint = fingerprint
        self.kind = kind                  # "run" | "pipeline" | "tune"
        self.payload = payload            # RunSpec | PipelineSpec | TuneSpec
        self.primary = primary            # primary job id (names the run)
        self.job_ids = [primary]
        self.ticket = None                # session ticket once submitted
        self.state = "queued"
        self.priority = priority
        self.canceled = False
        self.tenant = tenant


class Broker:
    """See the module docstring; one broker per server process."""

    def __init__(self, *, engine, store, cache=None, queue_cap=64,
                 quota_rate=5.0, quota_burst=10, tenant_weights=None,
                 aging_rate=0.05, poll_interval=0.02):
        self.engine = engine
        self.cache = cache if cache is not None else engine.cache
        if self.cache is None:
            raise ValueError(
                "the serve broker requires a ResultCache: results are "
                "re-attached from it after a restart and shared with "
                "ad-hoc CLI runs"
            )
        self.store = store
        self.queue_cap = queue_cap
        self.quota_rate = quota_rate
        self.quota_burst = quota_burst
        self.tenant_weights = dict(tenant_weights or {})
        self.poll_interval = poll_interval
        self.telemetry = engine.telemetry
        self.session = engine.session(aging_rate=aging_rate)

        self._lock = threading.RLock()
        self._buckets = {}               # tenant -> TokenBucket
        self._inflight = {}              # fingerprint -> _Execution
        self._by_ticket = {}             # session ticket -> _Execution
        self._pending = deque()          # run executions awaiting session
        self._pipeline_q = queue.Queue()
        self._results = OrderedDict()    # fingerprint -> result payload
        self._subscribers = []
        self._tenant_counts = {}         # tenant -> {counter: n}
        self._wait_hist = {}             # "2^k ms" bucket -> count
        self._executions_started = 0
        self._executions_completed = 0
        self._coalesced_attaches = 0
        self._cache_fast_hits = 0
        self._closing = False
        self._stop = threading.Event()
        self._started_wall = time.time()
        self._threads = []
        # Pipelines and tunes run on their own single-worker engine
        # (shared cache, shared telemetry stream, no stats store to
        # avoid cross-thread writes).
        from ..exec.engine import SweepEngine

        self._pipeline_engine = SweepEngine(
            jobs=1, cache=self.cache, retries=engine.retries,
            telemetry=engine.telemetry,
        )
        self._recover()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self):
        """Spawn the scheduler and pipeline threads (idempotent)."""
        if self._threads:
            return
        for name, target in (
            ("serve-scheduler", self._scheduler_loop),
            ("serve-pipelines", self._pipeline_loop),
        ):
            thread = threading.Thread(
                target=target, name=name, daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def shutdown(self, *, drain_timeout=None, reason="shutdown"):
        """Stop accepting, drain in-flight work, journal the rest.

        Executions that finish within ``drain_timeout`` (default: the
        engine's ``drain_timeout``) complete normally.  Whatever is
        still queued or running afterwards is journaled back as
        ``queued`` — a restarted server picks those jobs up and
        finishes them, which is the recovery contract the journal
        exists for.  Idempotent.
        """
        with self._lock:
            if self._closing:
                return
            self._closing = True
        if drain_timeout is None:
            drain_timeout = self.engine.drain_timeout
        deadline = time.monotonic() + max(0.0, drain_timeout or 0.0)
        while time.monotonic() < deadline:
            with self._lock:
                if not self._inflight:
                    break
            time.sleep(self.poll_interval)
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=5.0)
        self.session.close()
        with self._lock:
            # Survivors go back to the journal as queued: their
            # execution died with this process, not their job.
            for execution in self._inflight.values():
                for job_id in execution.job_ids:
                    job = self.store.get(job_id)
                    if job is None or job.terminal:
                        continue
                    job.state = "queued"
                    job.started_at = None
                    self.store.record(job)
            self._inflight.clear()
            self._by_ticket.clear()
            self._pending.clear()
        if self.telemetry is not None:
            self.telemetry.emit("serve_stop", reason=reason)
        self.store.compact()
        self.store.close()
        self._publish({"event": "server_stop", "reason": reason})

    def _recover(self):
        """Re-enqueue journaled queued/running work after a restart."""
        by_fp = {}
        for job in self.store.all_jobs():
            if job.terminal:
                continue
            if job.state == "running":
                job.state = "queued"
                job.started_at = None
                self.store.record(job)
            # A fingerprint another process finished meanwhile (or that
            # completed between cache-put and journal-update when we
            # crashed) is served straight from the cache.
            if job.kind == "run":
                entry = self.cache.get_entry(job.fingerprint)
                if entry is not None and entry.kind == "result":
                    self._memo(job.fingerprint, entry.value.to_dict())
                    job.state = "done"
                    job.cached = True
                    job.finished_at = time.time()
                    self.store.record(job)
                    continue
            by_fp.setdefault(job.fingerprint, []).append(job)
        for fingerprint, jobs in by_fp.items():
            primary = next(
                (j for j in jobs if j.coalesced_with is None), jobs[0]
            )
            try:
                payload = self._payload_from_journal(primary)
            except Exception as exc:
                for job in jobs:
                    job.state = "failed"
                    job.error = f"unrecoverable journal spec: {exc}"
                    job.finished_at = time.time()
                    self.store.record(job)
                continue
            execution = _Execution(
                fingerprint, primary.kind, payload, primary.id,
                primary.priority, primary.tenant,
            )
            execution.job_ids = [j.id for j in jobs]
            self._inflight[fingerprint] = execution
            if primary.kind == "run":
                self._pending.append(execution)
            else:
                self._pipeline_q.put(execution)

    @staticmethod
    def _payload_from_journal(job: JobRecord):
        from ..core import RunSpec
        from ..pipeline import PipelineSpec
        from ..tune import TuneSpec

        if job.kind == "run":
            return RunSpec.from_dict(job.spec)
        if job.kind == "tune":
            return TuneSpec.from_dict(job.spec)
        return PipelineSpec.from_dict(job.spec)

    # ------------------------------------------------------------------
    # API surface (called from HTTP handler threads)
    # ------------------------------------------------------------------
    def submit(self, body: dict) -> dict:
        """Admit one submit body; returns the response envelope.

        Raises :class:`ProtocolError` for every rejection: bad spec,
        unsupported version, over-quota (429 + Retry-After), full queue
        (429 + Retry-After), or a server mid-shutdown (503).
        """
        kind, payload, tenant, priority = parse_submit(body)
        fingerprint = submit_fingerprint(kind, payload)
        now = time.monotonic()
        with self._lock:
            if self._closing:
                raise ProtocolError(
                    "shutting_down", "server is draining; resubmit to "
                    "the restarted instance", retry_after=5,
                )
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = self._buckets[tenant] = TokenBucket(
                    self.quota_burst, self.quota_rate,
                )
            retry_after = bucket.take(now)
            if retry_after > 0:
                self._count(tenant, "rejected")
                if self.telemetry is not None:
                    self.telemetry.emit(
                        "serve_reject", tenant=tenant,
                        code="quota_exceeded", run=fingerprint,
                    )
                raise ProtocolError(
                    "quota_exceeded",
                    f"tenant {tenant!r} is over quota "
                    f"({self.quota_rate}/s, burst {self.quota_burst})",
                    retry_after=math.ceil(retry_after),
                )
            job_id = f"j{uuid.uuid4().hex[:12]}"
            self._count(tenant, "submitted")

            # Fast path 1: the content-addressed cache already holds it.
            result_payload = self._lookup_result(kind, fingerprint)
            if result_payload is not None:
                job = JobRecord(
                    id=job_id, tenant=tenant, kind=kind,
                    fingerprint=fingerprint, spec=payload.to_dict(),
                    state="done", cached=True, priority=priority,
                    finished_at=time.time(),
                )
                self.store.record(job)
                self._cache_fast_hits += 1
                self._count(tenant, "done")
                self._emit_submit(job, "cached")
                return envelope(job=job.view(), mode="cached")

            # Fast path 2: coalesce onto an identical in-flight run.
            execution = self._inflight.get(fingerprint)
            if execution is not None and not execution.canceled:
                job = JobRecord(
                    id=job_id, tenant=tenant, kind=kind,
                    fingerprint=fingerprint, spec=payload.to_dict(),
                    state=execution.state,
                    coalesced_with=execution.primary,
                    priority=priority,
                )
                if execution.state == "running":
                    job.started_at = time.time()
                execution.job_ids.append(job_id)
                self.store.record(job)
                self._coalesced_attaches += 1
                self._emit_submit(job, "coalesced")
                return envelope(job=job.view(), mode="coalesced")

            # New execution: backpressure on the queue depth cap.
            if len(self._inflight) >= self.queue_cap:
                self._count(tenant, "rejected")
                if self.telemetry is not None:
                    self.telemetry.emit(
                        "serve_reject", tenant=tenant, code="queue_full",
                        run=fingerprint,
                    )
                raise ProtocolError(
                    "queue_full",
                    f"execution queue is at its cap ({self.queue_cap})",
                    retry_after=max(
                        1, math.ceil(len(self._inflight)
                                     * self.poll_interval * 10)
                    ),
                )
            job = JobRecord(
                id=job_id, tenant=tenant, kind=kind,
                fingerprint=fingerprint, spec=payload.to_dict(),
                priority=priority,
            )
            execution = _Execution(
                fingerprint, kind, payload, job_id,
                priority + self.tenant_weights.get(tenant, 1.0), tenant,
            )
            self._inflight[fingerprint] = execution
            self.store.record(job)
            if kind == "run":
                self._pending.append(execution)
            else:
                self._pipeline_q.put(execution)
            self._emit_submit(job, "new")
            return envelope(job=job.view(), mode="new")

    def job_view(self, job_id: str) -> dict:
        job = self._get_job(job_id)
        return envelope(job=job.view())

    def result(self, job_id: str) -> dict:
        job = self._get_job(job_id)
        if job.state in ("queued", "running"):
            raise ProtocolError(
                "not_ready", f"job {job_id} is {job.state}",
            )
        if job.state == "canceled":
            raise ProtocolError("conflict", f"job {job_id} was canceled")
        if job.state in ("failed", "blocked"):
            raise ProtocolError(
                "job_failed",
                f"job {job_id} {job.state}: {job.error or 'unknown'}",
            )
        payload = self._lookup_result(job.kind, job.fingerprint)
        if payload is None:
            raise ProtocolError(
                "server_error",
                f"result for {job.fingerprint[:12]} evicted from cache",
            )
        return envelope(job=job.view(), result=payload)

    def profile(self, job_id: str) -> dict:
        body = self.result(job_id)
        result = body["result"]
        profile = (
            result.get("profile") if isinstance(result, dict) else None
        )
        if profile is None:
            raise ProtocolError(
                "not_found",
                f"job {job_id} has no profile (submit the spec with "
                '"profile": true)',
            )
        return envelope(job=body["job"], profile=profile)

    def cancel(self, job_id: str) -> dict:
        """Cooperative cancel: immediate for queued, best-effort running."""
        with self._lock:
            job = self._get_job(job_id)
            if job.terminal:
                raise ProtocolError(
                    "conflict", f"job {job_id} already {job.state}",
                )
            job.state = "canceled"
            job.finished_at = time.time()
            job.error = "canceled by client"
            self.store.record(job)
            self._count(job.tenant, "canceled")
            execution = self._inflight.get(job.fingerprint)
            if execution is not None and job_id in execution.job_ids:
                execution.job_ids.remove(job_id)
                if not execution.job_ids:
                    # Nobody is waiting on this fingerprint any more.
                    execution.canceled = True
                    if execution.ticket is not None:
                        self.session.cancel(execution.ticket)
                    elif execution in self._pending:
                        self._pending.remove(execution)
                        del self._inflight[execution.fingerprint]
            if self.telemetry is not None:
                self.telemetry.emit(
                    "serve_cancel", job=job_id, tenant=job.tenant,
                    run=job.fingerprint,
                )
            self._publish({"event": "canceled", "job": job.view()})
            return envelope(job=job.view())

    def queue_snapshot(self) -> dict:
        with self._lock:
            queued, running = [], []
            for execution in self._inflight.values():
                view = {
                    "fingerprint": execution.fingerprint,
                    "kind": execution.kind,
                    "primary": execution.primary,
                    "jobs": list(execution.job_ids),
                    "tenant": execution.tenant,
                    "priority": execution.priority,
                }
                (running if execution.state == "running"
                 else queued).append(view)
            return envelope(
                queued=queued, running=running,
                depth=len(self._inflight), cap=self.queue_cap,
            )

    def metrics(self) -> dict:
        with self._lock:
            by_state = {}
            for job in self.store.all_jobs():
                by_state[job.state] = by_state.get(job.state, 0) + 1
            hits = getattr(self.cache, "hits", 0)
            misses = getattr(self.cache, "misses", 0)
            lookups = hits + misses
            busy = self.session.busy_slots
            return envelope(
                uptime=time.time() - self._started_wall,
                jobs={
                    "total": len(self.store),
                    "by_state": by_state,
                    "by_tenant": {
                        tenant: dict(counts)
                        for tenant, counts
                        in sorted(self._tenant_counts.items())
                    },
                },
                executions={
                    "started": self._executions_started,
                    "completed": self._executions_completed,
                    "coalesced_attaches": self._coalesced_attaches,
                    "cache_fast_hits": self._cache_fast_hits,
                },
                cache={
                    "hits": hits,
                    "misses": misses,
                    "hit_rate": (hits / lookups) if lookups else None,
                },
                queue={
                    "depth": len(self._inflight),
                    "cap": self.queue_cap,
                    "wait_histogram_ms": dict(sorted(
                        self._wait_hist.items(),
                        key=lambda kv: int(kv[0]),
                    )),
                },
                engine={
                    "jobs": self.engine.jobs,
                    "busy_slots": busy,
                    "utilization": busy / self.engine.jobs,
                },
            )

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------
    def subscribe(self) -> "queue.Queue":
        q = queue.Queue(maxsize=256)
        with self._lock:
            self._subscribers.append(q)
        return q

    def unsubscribe(self, q):
        with self._lock:
            if q in self._subscribers:
                self._subscribers.remove(q)

    def _publish(self, event: dict):
        with self._lock:
            subscribers = list(self._subscribers)
        for q in subscribers:
            try:
                q.put_nowait(event)
            except queue.Full:
                try:          # drop the oldest, keep the stream moving
                    q.get_nowait()
                    q.put_nowait(event)
                except (queue.Empty, queue.Full):
                    pass

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _get_job(self, job_id) -> JobRecord:
        job = self.store.get(job_id)
        if job is None:
            raise ProtocolError("not_found", f"no such job: {job_id}")
        return job

    def _count(self, tenant, counter):
        counts = self._tenant_counts.setdefault(tenant, {})
        counts[counter] = counts.get(counter, 0) + 1

    def _memo(self, fingerprint, payload):
        self._results[fingerprint] = payload
        self._results.move_to_end(fingerprint)
        while len(self._results) > RESULT_MEMO_CAP:
            self._results.popitem(last=False)

    def _lookup_result(self, kind, fingerprint):
        """Result payload dict for a fingerprint, or ``None``."""
        memo = self._results.get(fingerprint)
        if memo is not None:
            return memo
        if kind != "run":
            return None      # pipeline/tune results are memo-only
        entry = self.cache.get_entry(fingerprint)
        if entry is None or entry.kind != "result":
            return None
        payload = entry.value.to_dict()
        self._memo(fingerprint, payload)
        return payload

    def _emit_submit(self, job, mode):
        if self.telemetry is not None:
            self.telemetry.emit(
                "serve_submit", job=job.id, tenant=job.tenant,
                mode=mode, run=job.fingerprint,
            )
        self._publish({"event": "submitted", "mode": mode,
                       "job": job.view()})

    def _observe_wait(self, seconds):
        ms = max(1, int(math.ceil(seconds * 1000.0)))
        exp = min(WAIT_BUCKET_MAX_EXP, max(0, math.ceil(math.log2(ms))))
        key = str(2 ** exp)
        self._wait_hist[key] = self._wait_hist.get(key, 0) + 1

    # ------------------------------------------------------------------
    # Scheduler thread: session admission + completion handling
    # ------------------------------------------------------------------
    def _scheduler_loop(self):
        while not self._stop.is_set():
            self._scheduler_step()
            time.sleep(self.poll_interval)

    def _scheduler_step(self):
        with self._lock:
            while self._pending:
                execution = self._pending.popleft()
                if execution.canceled:
                    self._inflight.pop(execution.fingerprint, None)
                    continue
                execution.ticket = self.session.submit(
                    execution.payload, name=execution.primary,
                    priority=execution.priority,
                    tenant=execution.tenant,
                )
                self._by_ticket[execution.ticket] = execution
        step = self.session.poll()
        with self._lock:
            for ticket in step.started:
                execution = self._by_ticket.get(ticket)
                if execution is None:
                    continue
                execution.state = "running"
                self._executions_started += 1
                for job_id in execution.job_ids:
                    job = self.store.get(job_id)
                    if job is None or job.terminal:
                        continue
                    job.state = "running"
                    job.started_at = time.time()
                    job.attempts = max(1, job.attempts)
                    self.store.record(job)
                    self._observe_wait(
                        job.started_at - job.submitted_at
                    )
                    self._publish(
                        {"event": "started", "job": job.view()}
                    )
            for ticket, outcome in step.finished:
                execution = self._by_ticket.pop(ticket, None)
                if execution is None:
                    continue
                self._complete(execution, outcome)

    def _complete(self, execution, outcome):
        """Fan one terminal engine outcome out to every attached job."""
        state = {
            "ok": "done", "failed": "failed", "canceled": "canceled",
        }.get(outcome.status, "failed")
        if state == "done":
            self._memo(
                execution.fingerprint, outcome.result.to_dict(),
            )
        self._executions_completed += 1
        self._inflight.pop(execution.fingerprint, None)
        for job_id in execution.job_ids:
            job = self.store.get(job_id)
            if job is None or job.terminal:
                continue
            job.state = state
            job.finished_at = time.time()
            job.attempts = outcome.attempts
            if outcome.error is not None:
                job.error = outcome.error
            self.store.record(job)
            self._count(job.tenant, state)
            if self.telemetry is not None:
                self.telemetry.emit(
                    "serve_done", job=job.id, tenant=job.tenant,
                    state=state, run=job.fingerprint,
                )
            self._publish({"event": state, "job": job.view()})

    # ------------------------------------------------------------------
    # Pipeline thread
    # ------------------------------------------------------------------
    def _pipeline_loop(self):
        while not self._stop.is_set():
            try:
                execution = self._pipeline_q.get(timeout=0.1)
            except queue.Empty:
                continue
            if execution.canceled:
                with self._lock:
                    self._inflight.pop(execution.fingerprint, None)
                continue
            with self._lock:
                execution.state = "running"
                self._executions_started += 1
                for job_id in execution.job_ids:
                    job = self.store.get(job_id)
                    if job is None or job.terminal:
                        continue
                    job.state = "running"
                    job.started_at = time.time()
                    self.store.record(job)
                    self._observe_wait(
                        job.started_at - job.submitted_at
                    )
                    self._publish(
                        {"event": "started", "job": job.view()}
                    )
            try:
                if execution.kind == "tune":
                    # Candidate failures are part of the tune report,
                    # not a job failure; only a broken declaration or
                    # engine (the except below) fails the job.
                    from ..tune import run_tune

                    tune_report = run_tune(
                        execution.payload, engine=self._pipeline_engine,
                    )
                    outcome = _PipelineOutcome(
                        "ok", tune_report.to_dict(),
                    )
                else:
                    report = run_pipeline(
                        execution.payload, engine=self._pipeline_engine,
                    )
                    if not report.ok:
                        bad = [
                            o for o in report.sweep.outcomes if not o.ok
                        ]
                        outcome = _PipelineOutcome(
                            "failed", None,
                            error="; ".join(
                                f"{o.name} {o.status}"
                                + (
                                    ": " + str(o.error)
                                    .strip().splitlines()[-1]
                                    if o.error else ""
                                )
                                for o in bad
                            ) or "pipeline failed",
                        )
                    else:
                        outcome = _PipelineOutcome(
                            "ok", _pipeline_result(report),
                        )
            except Exception as exc:   # engine invariants violated
                outcome = _PipelineOutcome("failed", None, error=str(exc))
            with self._lock:
                if outcome.status == "ok":
                    self._memo(execution.fingerprint, outcome.payload)
                self._executions_completed += 1
                self._inflight.pop(execution.fingerprint, None)
                for job_id in execution.job_ids:
                    job = self.store.get(job_id)
                    if job is None or job.terminal:
                        continue
                    job.state = (
                        "done" if outcome.status == "ok" else "failed"
                    )
                    job.finished_at = time.time()
                    if outcome.error is not None:
                        job.error = outcome.error
                    self.store.record(job)
                    self._count(job.tenant, job.state)
                    if self.telemetry is not None:
                        self.telemetry.emit(
                            "serve_done", job=job.id, tenant=job.tenant,
                            state=job.state, run=job.fingerprint,
                        )
                    self._publish(
                        {"event": job.state, "job": job.view()}
                    )


class _PipelineOutcome:
    __slots__ = ("status", "payload", "error")

    def __init__(self, status, payload, error=None):
        self.status = status
        self.payload = payload
        self.error = error


def _pipeline_result(report) -> dict:
    """API result payload of a pipeline job: statuses + node results."""
    return {
        "pipeline": report.pipeline.name,
        "nodes": {
            o.name: o.status for o in report.sweep.outcomes
        },
        "results": report.results_dict(),
    }

"""``repro.verify`` — the correctness layer for the data-flow port.

The paper's claim is that the taskified miniAMR produces the same physics
as MPI-only *under any legal schedule*.  Our runtime, like OmpSs-2,
trusts each task's declared ``in/out/inout`` accesses — so this package
provides the tooling that makes that trust checkable:

* :class:`AccessWitness` — an access-witness race detector: tasks record
  the handles they actually touch, and any touch not covered by a declared
  dependency is flagged as a would-be data race
  (:class:`AccessViolation` / :class:`AccessRaceError`).  Enable per run
  with ``RunSpec(check_access=True)``.
* :func:`fuzz_sweep` — a schedule-perturbation fuzzer built on the seeded
  ``"fuzz"`` scheduler: N seeds of a run must produce bitwise-identical
  checksums and structural invariants (:class:`FuzzReport`,
  :class:`ScheduleVarianceError`).
* :class:`GoldenStore` — committed JSON golden results keyed by resolved
  spec content; ``miniamr-sim verify`` checks them and
  ``--update-goldens`` refreshes them (:class:`GoldenMismatchError`).
"""

from .fuzz import (
    FuzzReport,
    ScheduleVarianceError,
    compare_reference,
    fuzz_specs,
    fuzz_sweep,
    invariants,
)
from .goldens import (
    DEFAULT_GOLDENS_DIR,
    GoldenMismatchError,
    GoldenStore,
    default_golden_specs,
    expected_from_result,
    golden_key,
)
from .witness import (
    READ,
    WRITE,
    AccessRaceError,
    AccessViolation,
    AccessWitness,
    covers,
)

__all__ = [
    "AccessRaceError",
    "AccessViolation",
    "AccessWitness",
    "DEFAULT_GOLDENS_DIR",
    "FuzzReport",
    "GoldenMismatchError",
    "GoldenStore",
    "READ",
    "WRITE",
    "ScheduleVarianceError",
    "compare_reference",
    "covers",
    "default_golden_specs",
    "expected_from_result",
    "fuzz_specs",
    "fuzz_sweep",
    "golden_key",
    "invariants",
]

"""Access-witness race detection for the tasking runtime.

The OmpSs-2 model (and therefore the paper's correctness argument) rests on
every task *declaring* the data it touches: the runtime only guarantees
"same physics under any legal schedule" if the declared ``in/out/inout/
commutative`` sets cover the actual reads and writes.  An under-declared
access validates happily on one scheduler and corrupts data on another —
the worst kind of bug, because the default locality schedule often happens
to serialize the racing tasks.

This module turns declared-vs-actual checking into a first-class layer:

* the runtime installs an :class:`AccessWitness` and brackets every task
  body with :meth:`AccessWitness.task_begin` / :meth:`~AccessWitness.task_end`;
* the application's data touch points (block face extraction/insertion,
  stencils, checksums, split/consolidate, communication buffers) report
  each actual access with :meth:`AccessWitness.touch`;
* a touch not covered by the executing task's declared accesses is a
  *would-be data race* and is recorded as an :class:`AccessViolation`
  (task label, phase, rank, timestep, handle); :meth:`AccessWitness.check`
  raises :class:`AccessRaceError` naming them.

Coverage rules (race semantics, not value semantics):

* a **read** touch is covered by *any* declared access to the handle —
  ``in``/``inout`` naturally, but also ``out``/``commutative`` since those
  grant exclusive access for the task's lifetime;
* a **write** touch requires a declared ``out``, ``inout``, or
  ``commutative`` access — a write under a bare ``in`` races with every
  concurrent reader;
* a declared :class:`~repro.tasking.regions.Region` covers a touched
  region of the same base iff it fully contains it; scalar handles cover
  by equality.

Touches from the main thread (no executing task) are ignored: the main
thread's accesses are program-ordered by construction.  Tasks marked
``unchecked`` (e.g. fork-join chunks, which synchronize through the
implicit barrier) are exempt.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..tasking.regions import Region
from ..tasking.task import AccessMode

#: Touch kinds reported by the instrumentation.
READ = "read"
WRITE = "write"

#: Declared modes that permit a write touch.
_WRITE_MODES = (AccessMode.OUT, AccessMode.INOUT, AccessMode.COMMUTATIVE)


class AccessRaceError(RuntimeError):
    """Raised when a run touched data outside its declared dependencies."""


@dataclass(frozen=True)
class AccessViolation:
    """One undeclared data touch (a would-be race under another schedule)."""

    rank: int
    task_label: str
    phase: str
    timestep: object
    kind: str  # READ or WRITE
    handle: object
    time: float
    count: int = 1

    def describe(self) -> str:
        ts = "?" if self.timestep is None else self.timestep
        extra = f" (x{self.count})" if self.count > 1 else ""
        return (
            f"rank {self.rank} task {self.task_label!r} "
            f"[phase {self.phase}, timestep {ts}, t={self.time:.6f}] "
            f"performed an undeclared {self.kind} of handle "
            f"{self.handle!r}{extra}"
        )


def covers(declared_mode, declared_handle, kind, handle) -> bool:
    """Whether one declared access covers an actual touch."""
    if kind == WRITE and declared_mode not in _WRITE_MODES:
        return False
    if isinstance(handle, Region):
        return (
            isinstance(declared_handle, Region)
            and declared_handle.base == handle.base
            and declared_handle.start <= handle.start
            and handle.stop <= declared_handle.stop
        )
    return declared_handle == handle


class _Frame:
    """One executing (witnessed) task."""

    __slots__ = ("task", "rank", "timestep")

    def __init__(self, task, rank, timestep):
        self.task = task
        self.rank = rank
        self.timestep = timestep


class AccessWitness:
    """Records actual task data accesses and flags undeclared ones.

    A single witness is shared by every rank runtime of a run (the
    simulator is single-threaded, so a stack of executing tasks suffices;
    the data touch points all execute synchronously inside task bodies).
    """

    def __init__(self, env=None, max_violations=1000):
        self.env = env
        self.max_violations = max_violations
        #: Distinct violations in discovery order.
        self.violations = []
        #: Total touches checked (coverage meter for tests/reports).
        self.touches_checked = 0
        self._stack = []
        self._seen = {}  # (label, phase, kind, handle) -> AccessViolation idx

    # ------------------------------------------------------------------
    # Runtime-facing hooks
    # ------------------------------------------------------------------
    def task_begin(self, task, rank, timestep=None):
        self._stack.append(_Frame(task, rank, timestep))

    def task_end(self, task):
        # Pop by identity from the top — tolerates the (comm-task) case of
        # generator bodies finishing out of LIFO order after suspension.
        for i in range(len(self._stack) - 1, -1, -1):
            if self._stack[i].task is task:
                del self._stack[i]
                return

    @property
    def active(self):
        """The currently executing witnessed task, or ``None``."""
        return self._stack[-1].task if self._stack else None

    # ------------------------------------------------------------------
    # Application-facing instrumentation
    # ------------------------------------------------------------------
    def touch(self, kind, handle):
        """Report one actual data access of the executing task.

        ``kind`` is :data:`READ` or :data:`WRITE`.  Touches outside any
        witnessed task (main-thread code, whose accesses are
        program-ordered by construction) and touches inside ``unchecked``
        tasks are ignored.
        """
        if not self._stack:
            return
        frame = self._stack[-1]
        task = frame.task
        if task.unchecked:
            return
        self.touches_checked += 1
        for declared_mode, declared_handle in task.accesses:
            if covers(declared_mode, declared_handle, kind, handle):
                return
        self._record(frame, kind, handle)

    def _record(self, frame, kind, handle):
        key = (frame.task.label, frame.task.phase, kind, handle)
        idx = self._seen.get(key)
        if idx is not None:
            old = self.violations[idx]
            self.violations[idx] = AccessViolation(
                rank=old.rank, task_label=old.task_label, phase=old.phase,
                timestep=old.timestep, kind=old.kind, handle=old.handle,
                time=old.time, count=old.count + 1,
            )
            return
        if len(self.violations) >= self.max_violations:
            return
        self._seen[key] = len(self.violations)
        self.violations.append(AccessViolation(
            rank=frame.rank,
            task_label=frame.task.label,
            phase=frame.task.phase,
            timestep=frame.timestep,
            kind=kind,
            handle=handle,
            time=float(self.env.now) if self.env is not None else 0.0,
        ))

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def clean(self) -> bool:
        return not self.violations

    def report(self, limit=20) -> str:
        """Human-readable summary of the recorded violations."""
        if not self.violations:
            return (
                f"access witness: clean "
                f"({self.touches_checked} touches checked)"
            )
        lines = [
            f"access witness: {len(self.violations)} undeclared "
            f"access(es) detected ({self.touches_checked} touches checked):"
        ]
        for v in self.violations[:limit]:
            lines.append(f"  - {v.describe()}")
        if len(self.violations) > limit:
            lines.append(f"  ... and {len(self.violations) - limit} more")
        return "\n".join(lines)

    def check(self):
        """Raise :class:`AccessRaceError` if any violation was recorded."""
        if self.violations:
            raise AccessRaceError(self.report())

"""Golden-result regression store.

Small, committed JSON snapshots of what a handful of canonical runs must
produce — checksums, task/message counts, total simulated time — keyed by
the run's :class:`~repro.core.RunSpec` content.  Any behavioural drift
(physics, task graph shape, communication volume, or the simulated clock)
shows up as a diff against the stored golden; deliberate changes are
refreshed with ``miniamr-sim verify --update-goldens`` and reviewed like
any other diff.

Layout: one ``<name>.json`` file per golden under a directory (the repo
commits ``goldens/``)::

    {"name": ..., "key": ..., "spec": {...}, "expected": {...}}

``key`` is the sha256 of the canonical JSON of the *fully resolved* spec —
deliberately **without** the package version (unlike the result cache's
:meth:`~repro.core.RunSpec.fingerprint`): a golden asserts that behaviour
is stable *across* versions, so a version bump must compare against the
old golden rather than orphan it.  A key mismatch means the golden's spec
itself changed and the file needs regenerating.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path

import numpy as np

from ..amr import AmrConfig, sphere
# Submodule import (not the package) — repro.core.driver imports
# repro.verify at load time, so importing repro.core here would cycle.
from ..core.spec import RunSpec

#: Default on-disk location of the committed goldens (relative to the
#: repository root / current working directory; override with
#: ``miniamr-sim verify --goldens-dir``).
DEFAULT_GOLDENS_DIR = "goldens"


class GoldenMismatchError(RuntimeError):
    """Raised when a run's results drifted from its committed golden."""


def golden_key(spec: RunSpec) -> str:
    """Content key of a golden: sha256 of the resolved spec (no version)."""
    blob = json.dumps(
        spec.resolve().to_dict(), sort_keys=True, separators=(",", ":"),
        allow_nan=False,
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def expected_from_result(result) -> dict:
    """The golden payload of one :class:`~repro.core.RunResult`."""
    comm = result.comm_stats
    return {
        "total_time": result.total_time,
        "refine_time": result.refine_time,
        "flops": result.flops,
        "num_blocks": result.num_blocks,
        "imbalance": result.imbalance,
        "checksums": [
            [float(t), np.asarray(c, dtype=np.float64).tolist(), float(d)]
            for t, c, d in result.checksums
        ],
        "messages": comm.messages if comm else 0,
        "bytes_sent": comm.bytes_sent if comm else 0,
        "collectives": comm.collectives if comm else 0,
        "tasks_spawned": sum(
            s.tasks_spawned for s in result.runtime_stats
        ),
        "tasks_executed": sum(
            s.tasks_executed for s in result.runtime_stats
        ),
    }


def diff_expected(expected: dict, actual: dict) -> list:
    """Field-by-field mismatches between two golden payloads."""
    problems = []
    for key in ("total_time", "refine_time", "flops", "num_blocks",
                "imbalance", "messages", "bytes_sent", "collectives",
                "tasks_spawned", "tasks_executed"):
        if expected.get(key) != actual.get(key):
            problems.append(
                f"{key}: expected {expected.get(key)!r}, "
                f"got {actual.get(key)!r}"
            )
    exp_cs, act_cs = expected.get("checksums", []), actual.get("checksums", [])
    if len(exp_cs) != len(act_cs):
        problems.append(
            f"checksums: expected {len(exp_cs)} validations, "
            f"got {len(act_cs)}"
        )
    else:
        for i, (e, a) in enumerate(zip(exp_cs, act_cs)):
            if e != a:
                problems.append(f"checksums[{i}]: expected {e!r}, got {a!r}")
    return problems


class GoldenStore:
    """Directory of committed golden-result JSON files."""

    def __init__(self, root=DEFAULT_GOLDENS_DIR):
        self.root = Path(root)

    def path(self, name: str) -> Path:
        return self.root / f"{name}.json"

    def names(self) -> list:
        if not self.root.is_dir():
            return []
        return sorted(p.stem for p in self.root.glob("*.json"))

    def __contains__(self, name: str) -> bool:
        return self.path(name).is_file()

    # ------------------------------------------------------------------
    def load(self, name: str) -> dict:
        """The stored golden envelope (raises ``FileNotFoundError``)."""
        with open(self.path(name), "r", encoding="utf-8") as fh:
            return json.load(fh)

    def save(self, name: str, spec: RunSpec, result):
        """(Re)write one golden atomically (write-to-temp + rename)."""
        envelope = {
            "name": name,
            "key": golden_key(spec),
            "spec": spec.to_dict(),
            "expected": expected_from_result(result),
        }
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=self.root, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(envelope, fh, indent=2, sort_keys=True)
                fh.write("\n")
            os.replace(tmp, self.path(name))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    def compare(self, name: str, spec: RunSpec, result) -> list:
        """Mismatches of a fresh result against the stored golden.

        Returns a list of problem strings (empty = no drift).  A missing
        golden or a spec-key mismatch is itself a problem — the store
        must be refreshed deliberately, never silently.
        """
        if name not in self:
            return [f"{name}: no golden on file (run --update-goldens)"]
        try:
            envelope = self.load(name)
        except (OSError, ValueError) as exc:
            return [f"{name}: unreadable golden ({exc})"]
        problems = []
        key = golden_key(spec)
        if envelope.get("key") != key:
            problems.append(
                f"{name}: spec key changed "
                f"(golden {str(envelope.get('key'))[:12]}..., "
                f"current {key[:12]}...) — the golden's RunSpec itself "
                f"drifted; regenerate with --update-goldens"
            )
        problems += [
            f"{name}: {p}"
            for p in diff_expected(
                envelope.get("expected", {}), expected_from_result(result)
            )
        ]
        return problems

    def check(self, name: str, spec: RunSpec, result):
        """Raise :class:`GoldenMismatchError` on any drift."""
        problems = self.compare(name, spec, result)
        if problems:
            raise GoldenMismatchError(
                f"golden drift detected:\n" +
                "\n".join(f"  - {p}" for p in problems)
            )


# ----------------------------------------------------------------------
# The canonical golden runs
# ----------------------------------------------------------------------
def _golden_objects():
    return (
        sphere(center=(0.4, 0.45, 0.5), radius=0.2, move=(0.05, 0.0, 0.0)),
    )


def default_golden_specs(quick=False) -> dict:
    """The committed golden runs: one small config per variant.

    All three run the same physics on the ``laptop`` preset; MPI-only
    fills the 4-core node with 4 single-core ranks while the hybrids use
    2 ranks x 2 cores, exactly like the cross-variant equivalence tests.
    """
    base = dict(
        nx=4, ny=4, nz=4, num_vars=2,
        num_tsteps=1 if quick else 2, stages_per_ts=3, refine_freq=1,
        checksum_freq=3, max_refine_level=1, objects=_golden_objects(),
    )
    mpi_cfg = AmrConfig(
        npx=2, npy=2, npz=1, init_x=1, init_y=1, init_z=2, **base
    )
    hybrid_cfg = AmrConfig(
        npx=2, npy=1, npz=1, init_x=1, init_y=2, init_z=2, **base
    )
    return {
        "mpi_only_small": RunSpec(
            config=mpi_cfg, machine="laptop", variant="mpi_only",
            num_nodes=1, ranks_per_node=4,
        ),
        "fork_join_small": RunSpec(
            config=hybrid_cfg, machine="laptop", variant="fork_join",
            num_nodes=1, ranks_per_node=2,
        ),
        "tampi_dataflow_small": RunSpec(
            config=hybrid_cfg, machine="laptop", variant="tampi_dataflow",
            num_nodes=1, ranks_per_node=2,
        ),
    }

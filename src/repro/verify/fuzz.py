"""Schedule-perturbation fuzzing: N seeds, one answer.

The data-flow port is only correct if its physics is invariant under *any*
legal task schedule.  The ``"fuzz"`` scheduler
(:mod:`repro.tasking.runtime`) randomizes every free scheduling choice —
ready-queue pop order, queue placement, released-successor order (which is
where TAMPI completion interleavings funnel through) — from a seeded
stream, so each seed explores a different legal schedule while remaining
perfectly reproducible.

:func:`fuzz_sweep` runs a :class:`~repro.core.RunSpec` under N fuzz seeds
(through the PR-1 :class:`~repro.exec.SweepEngine`, so seeds run in
parallel) plus the spec's own deterministic scheduler as the baseline, and
asserts the schedule-invariant quantities are *bitwise identical* across
all of them:

* the full checksum log (values and count),
* the final block count and imbalance,
* total stencil FLOPs,
* message / collective counts and bytes on the wire.

Simulated *times* (total, per-phase) legitimately differ across schedules
and are not compared.  Optionally a reference result from another variant
(canonically MPI-only) is compared against with a relative tolerance —
different rank decompositions reduce in different orders, so bitwise
equality across variants is not required, agreement to ~1e-12 is.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np


class ScheduleVarianceError(RuntimeError):
    """Raised when fuzzed schedules produced diverging results."""


def invariants(result) -> dict:
    """The schedule-invariant fingerprint of a :class:`RunResult`."""
    comm = result.comm_stats
    return {
        "num_blocks": result.num_blocks,
        "imbalance": result.imbalance,
        "flops": result.flops,
        "checksum_count": len(result.checksums),
        "checksums": [
            np.asarray(c, dtype=np.float64).tobytes()
            for _t, c, _d in result.checksums
        ],
        "messages": comm.messages if comm else 0,
        "bytes_sent": comm.bytes_sent if comm else 0,
        "collectives": comm.collectives if comm else 0,
    }


def _diff_invariants(label, base, other) -> list:
    """Human-readable mismatches of ``other`` against ``base``."""
    problems = []
    for key in ("num_blocks", "imbalance", "flops", "checksum_count",
                "messages", "bytes_sent", "collectives"):
        if base[key] != other[key]:
            problems.append(
                f"{label}: {key} diverged "
                f"(baseline {base[key]!r} != {other[key]!r})"
            )
    if base["checksum_count"] == other["checksum_count"]:
        for i, (a, b) in enumerate(zip(base["checksums"],
                                       other["checksums"])):
            if a != b:
                problems.append(
                    f"{label}: checksum #{i} diverged bitwise"
                )
    return problems


@dataclass
class FuzzReport:
    """Outcome of one schedule-perturbation sweep."""

    spec: object
    seeds: tuple
    #: RunResult per seed (seed order; None for failed runs).
    results: list = field(default_factory=list)
    #: Baseline (deterministic-scheduler) RunResult.
    baseline: object = None
    mismatches: list = field(default_factory=list)
    failures: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches and not self.failures

    def summary(self) -> str:
        if self.ok:
            return (
                f"fuzz: {len(self.seeds)} seeds, all invariants identical "
                f"to the {self.spec.scheduler!r} baseline"
            )
        lines = [
            f"fuzz: {len(self.mismatches)} mismatch(es), "
            f"{len(self.failures)} failed run(s) over "
            f"{len(self.seeds)} seeds:"
        ]
        lines += [f"  - {m}" for m in self.mismatches]
        lines += [f"  - {f}" for f in self.failures]
        return "\n".join(lines)

    def raise_failures(self):
        if not self.ok:
            raise ScheduleVarianceError(self.summary())


def fuzz_specs(spec, seeds):
    """The fuzz-scheduler variants of ``spec``, one per seed."""
    return [
        replace(spec, scheduler="fuzz", sched_seed=seed) for seed in seeds
    ]


def fuzz_sweep(spec, seeds=8, engine=None, reference=None,
               reference_rtol=1e-12) -> FuzzReport:
    """Run ``spec`` under N fuzz seeds and check schedule invariance.

    Parameters
    ----------
    spec:
        The run to perturb.  Its own (deterministic) scheduler is run as
        the baseline; it must not itself be ``"fuzz"``.
    seeds:
        An iterable of seeds, or an int N meaning ``range(N)``.
    engine:
        A :class:`~repro.exec.SweepEngine` (defaults to in-process
        serial).  Pass ``jobs>1`` to fuzz seeds in parallel.
    reference:
        Optional :class:`~repro.core.RunResult` from another variant
        (e.g. MPI-only) whose checksums must agree to ``reference_rtol``.
    """
    from ..exec import Sweep, SweepEngine

    if spec.scheduler == "fuzz":
        raise ValueError(
            "fuzz_sweep perturbs a deterministic baseline; pass a spec "
            "with scheduler='locality' or 'fifo'"
        )
    if isinstance(seeds, int):
        seeds = range(seeds)
    seeds = tuple(seeds)
    engine = engine or SweepEngine(jobs=1)

    specs = [spec] + fuzz_specs(spec, seeds)
    labels = ["baseline"] + [f"seed{s}" for s in seeds]
    report = engine.run(Sweep(specs, name="fuzz", labels=labels))

    out = FuzzReport(spec=spec, seeds=seeds)
    out.failures = [
        f"[{o.label}] {o.status}: {(o.error or '').strip().splitlines()[-1:] or ['?']}"
        for o in report.outcomes if not o.ok
    ]
    baseline_outcome = report.outcomes[0]
    out.baseline = baseline_outcome.result
    out.results = [o.result for o in report.outcomes[1:]]
    if baseline_outcome.ok:
        base = invariants(baseline_outcome.result)
        for o in report.outcomes[1:]:
            if o.ok:
                out.mismatches += _diff_invariants(
                    o.label, base, invariants(o.result)
                )
        if reference is not None:
            out.mismatches += compare_reference(
                baseline_outcome.result, reference, rtol=reference_rtol
            )
    return out


def compare_reference(result, reference, rtol=1e-12) -> list:
    """Cross-variant checksum agreement (relative tolerance)."""
    problems = []
    a, b = result.checksums, reference.checksums
    if len(a) != len(b):
        problems.append(
            f"reference {reference.variant}: checksum count "
            f"{len(b)} != {len(a)}"
        )
        return problems
    for i, ((_ta, ca, _da), (_tb, cb, _db)) in enumerate(zip(a, b)):
        ca = np.asarray(ca, dtype=np.float64)
        cb = np.asarray(cb, dtype=np.float64)
        scale = np.maximum(np.abs(cb), 1e-300)
        worst = float(np.max(np.abs(ca - cb) / scale)) if ca.size else 0.0
        if worst > rtol:
            problems.append(
                f"reference {reference.variant}: checksum #{i} differs "
                f"by rel {worst:.3e} (> {rtol:.1e})"
            )
    if result.num_blocks != reference.num_blocks:
        problems.append(
            f"reference {reference.variant}: num_blocks "
            f"{reference.num_blocks} != {result.num_blocks}"
        )
    return problems

"""The simulated MPI world and per-rank communicator facades.

A :class:`World` owns message matching for every rank on one simulated
cluster.  Each rank's program uses a :class:`RankComm`, whose operations are
generators to be invoked with ``yield from`` inside a simulation process::

    req = yield from comm.isend(dest=1, tag=7, nbytes=4096, payload=arr)
    ...
    yield from comm.wait(req)

Semantics follow MPI: non-blocking sends/receives with envelope matching on
(source, tag), wildcard ``ANY_SOURCE``/``ANY_TAG``, per-channel
non-overtaking order, and tree-cost collectives that synchronize all ranks
of the communicator.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from .datatypes import ANY_SOURCE, ANY_TAG, SUM, Status
from .requests import Request


def payload_nbytes(value) -> int:
    """Best-effort byte size of a payload (for timing purposes)."""
    if value is None:
        return 0
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if isinstance(value, (bytes, bytearray, memoryview)):
        return len(value)
    if isinstance(value, (list, tuple)):
        return 8 * len(value)
    return 8


class _Message:
    __slots__ = ("source", "tag", "nbytes", "payload", "send_req")

    def __init__(self, source, tag, nbytes, payload, send_req):
        self.source = source
        self.tag = tag
        self.nbytes = nbytes
        self.payload = payload
        self.send_req = send_req


class _RemoteSent:
    """Stand-in send request of a message ingressed from another worker.

    The sending worker completes the real send request on its own clock
    (:meth:`World._post_send`), so on the receiving side ``_deliver``
    must only skip its completion step — a permanently-completed stub
    does exactly that without shipping the live request across workers.
    """

    __slots__ = ()
    completed = True


_REMOTE_SENT = _RemoteSent()


class _Endpoint:
    """Matching state of one (communicator, rank) destination."""

    __slots__ = ("posted", "unexpected")

    def __init__(self):
        self.posted = deque()  # of (Request, source, tag)
        self.unexpected = deque()  # of _Message


def _match(want_source, want_tag, source, tag) -> bool:
    return (want_source in (ANY_SOURCE, source)) and (
        want_tag in (ANY_TAG, tag)
    )


class _CollectiveOp:
    """One in-progress collective across all ranks of a communicator."""

    __slots__ = ("kind", "entries", "events", "meta", "nbytes_max", "times")

    def __init__(self, kind):
        self.kind = kind
        self.entries = {}  # rank -> value
        self.events = {}  # rank -> Event (local ranks only when spanning)
        self.meta = {}  # rank -> extra (e.g. root)
        self.nbytes_max = 0
        #: rank -> entry time; only maintained for partition-spanning
        #: collectives, where completion is ``max(times) + delay`` rather
        #: than an ``env.timeout`` at the moment the last entry lands.
        self.times = {}


@dataclass
class WorldStats:
    """Aggregate communication counters (for analysis and tests)."""

    messages: int = 0
    bytes_sent: int = 0
    intra_node_messages: int = 0
    inter_node_messages: int = 0
    collectives: int = 0
    by_tag_kind: dict = field(default_factory=dict)


class World:
    """All communication state of one simulated MPI world."""

    def __init__(
        self, env, machine, network, tracer=None, profiler=None, faults=None,
        partition=None,
    ):
        self.env = env
        self.machine = machine
        self.network = network
        self.tracer = tracer
        #: Optional partitioned-run link (:mod:`repro.simx.parallel`): an
        #: object with ``pmap`` (the rank→worker map), ``wid`` (this
        #: worker), and ``post(dst_worker, record)`` /
        #: ``broadcast(record)`` for boundary traffic.  ``None`` in the
        #: (default) serial kernel — every partition branch below is one
        #: ``is None`` test on that path.
        self.partition = partition
        self._owner = partition.pmap.owner if partition is not None else None
        self._wid = partition.wid if partition is not None else 0
        self._spans_cache = {}  # comm_id -> bool (members span workers?)
        #: Optional :class:`repro.obs.Profiler` (records per-call wait
        #: intervals and per-message in-flight windows).
        self.profiler = profiler
        #: Optional :class:`repro.faults.FaultInjector` — adds
        #: deterministic extra in-flight delay (degradation windows,
        #: jitter, loss retransmissions) to every point-to-point message.
        self.faults = faults
        self.size = machine.num_ranks
        self._endpoints = {}
        #: Non-overtaking clamp per directed channel.  Keyed by the packed
        #: int ``(comm_id << 32) | (src << 16) | dst`` instead of a
        #: 3-tuple: one small-int hash per message rather than a tuple
        #: allocation + tuple hash on the hottest send path.
        self._channels = {}
        #: Injection-port free time per world rank (dense list — every
        #: message indexes it, a dict would rehash the rank each time).
        self._nic_free = [0.0] * self.size
        self._pending_colls = {}  # (comm_id, index, kind-insensitive) -> op
        self._coll_seq = {}  # (comm_id, rank) -> next collective index
        self._comm_sizes = {0: self.size}
        #: comm_id -> list mapping comm-local rank to world rank (None for
        #: COMM_WORLD, which is the identity).
        self._comm_ranks = {0: None}
        self._next_comm_id = 1
        self.stats = WorldStats()
        self.comms = [RankComm(self, rank, 0) for rank in range(self.size)]

    # ------------------------------------------------------------------
    def comm(self, rank: int) -> "RankComm":
        """The COMM_WORLD facade of ``rank``."""
        return self.comms[rank]

    def _endpoint(self, comm_id, rank) -> _Endpoint:
        key = (comm_id, rank)
        ep = self._endpoints.get(key)
        if ep is None:
            ep = self._endpoints[key] = _Endpoint()
        return ep

    # ------------------------------------------------------------------
    # Point-to-point internals
    # ------------------------------------------------------------------
    def _post_send(self, comm_id, src, dst, tag, nbytes, payload, req):
        """Schedule message delivery; returns the arrival delay.

        Messages serialize through the sender's injection port (a rank can
        only push one message's bytes at a time — the physical effect that
        makes one-message-per-face configurations pay for their count),
        then take a latency to land.  Per-channel arrival order is kept
        monotonic for MPI's non-overtaking guarantee.
        """
        env = self.env
        now = env._now
        wmap = self._comm_ranks.get(comm_id)
        wsrc = wmap[src] if wmap else src
        wdst = wmap[dst] if wmap else dst
        same_node = self.machine.same_node(wsrc, wdst)
        nic_free = self._nic_free
        free = nic_free[wsrc]
        inject_start = free if free > now else now
        inject_end = inject_start + self.network.injection_time(
            nbytes, same_node
        )
        nic_free[wsrc] = inject_end
        latency = (
            self.network.latency_intra
            if same_node
            else self.network.latency_inter
        )
        key = (comm_id << 32) | (src << 16) | dst
        base_arrival = inject_end + latency
        if self.faults is not None:
            extra = self.faults.message_delay(
                wsrc, wdst, nbytes, same_node, now
            )
            if extra > 0:
                if self.profiler is not None:
                    self.profiler.fault_delay(
                        wsrc, wdst, base_arrival, base_arrival + extra
                    )
                base_arrival += extra
        # Injected delay precedes the non-overtaking clamp: a delayed
        # message holds back everything behind it on the same channel,
        # like a real retransmission would.
        channels = self._channels
        clamp = channels.get(key, 0.0)
        arrival = base_arrival if base_arrival > clamp else clamp
        channels[key] = arrival

        stats = self.stats
        stats.messages += 1
        stats.bytes_sent += nbytes
        if same_node:
            stats.intra_node_messages += 1
        else:
            stats.inter_node_messages += 1

        if self.profiler is not None:
            self.profiler.message_posted(
                wsrc, wdst, now, arrival, nbytes
            )

        owner = self._owner
        if owner is not None and owner[wdst] != self._wid:
            # Cross-partition: ship the delivery to the owning worker at
            # the exact absolute heap time the serial kernel would use —
            # ``now + (arrival - now)``, not ``arrival``, because the
            # serial path schedules a *relative* timeout and float
            # addition does not associate.  The send request stays local
            # and completes at that same instant (rendezvous semantics:
            # the sender unblocks when the message has landed).
            sched = now + (arrival - now)
            self.partition.post(
                owner[wdst],
                ("p2p", comm_id, dst, src, tag, nbytes, payload, sched),
            )
            env.schedule_at(sched, lambda _ev, r=req: r._complete())
            return arrival - now
        msg = _Message(src, tag, nbytes, payload, req)
        timer = env.timeout(arrival - now)
        timer.callbacks.append(
            lambda _ev: self._deliver(comm_id, dst, msg)
        )
        return arrival - now

    def _deliver(self, comm_id, dst, msg):
        ep = self._endpoint(comm_id, dst)
        scanned = 0
        for i, (req, source, tag) in enumerate(ep.posted):
            # Bucketed matching (real MPIs hash the posted queue by
            # source): only entries that could match this source cost a
            # scan step.  Deep per-source queues — the one-message-per-face
            # pattern — still pay.
            if source in (ANY_SOURCE, msg.source):
                scanned += 1
            if _match(source, tag, msg.source, msg.tag):
                del ep.posted[i]
                scan = (scanned - 1) * self.network.match_scan_cost
                if scan > 0:
                    timer = self.env.timeout(scan)
                    timer.callbacks.append(
                        lambda _ev, r=req, m=msg: self._complete_recv(r, m)
                    )
                else:
                    self._complete_recv(req, msg)
                break
        else:
            ep.unexpected.append(msg)
        # The send completes when the message has landed (rendezvous-ish
        # model: safe-to-reuse-buffer semantics).
        if not msg.send_req.completed:
            msg.send_req._complete()

    def _complete_recv(self, req, msg):
        req.status = Status(source=msg.source, tag=msg.tag, nbytes=msg.nbytes)
        req._complete(msg.payload)

    # ------------------------------------------------------------------
    # Collectives internals
    # ------------------------------------------------------------------
    def _enter_collective(self, comm_id, rank, kind, value, nbytes, meta):
        """Register one rank's entry; returns the rank's completion event."""
        if self._owner is not None and kind in ("dup", "split"):
            raise NotImplementedError(
                f"{kind} is not supported under pdes_workers > 1: derived "
                "communicator ids could not stay in sync across worker "
                "replicas"
            )
        seq_key = (comm_id, rank)
        index = self._coll_seq.get(seq_key, 0)
        self._coll_seq[seq_key] = index + 1

        op_key = (comm_id, index)
        op = self._pending_colls.get(op_key)
        if op is None:
            op = self._pending_colls[op_key] = _CollectiveOp(kind)
        elif op.kind != kind:
            raise RuntimeError(
                f"collective mismatch on comm {comm_id} index {index}: "
                f"rank {rank} called {kind!r} but others called {op.kind!r}"
            )
        if rank in op.entries:
            raise RuntimeError(
                f"rank {rank} entered collective {index} twice"
            )
        op.entries[rank] = value
        op.meta[rank] = meta
        op.nbytes_max = max(op.nbytes_max, nbytes)
        event = self.env.event()
        op.events[rank] = event

        size = self._comm_sizes[comm_id]
        if self._owner is not None and self._comm_spans(comm_id):
            now = self.env._now
            op.times[rank] = now
            # Replicate this entry on every other worker; the op
            # completes wherever the full entry set is assembled first
            # (here mid-window, or at a peer's next barrier ingest).
            self.partition.broadcast(
                ("coll", comm_id, index, kind, rank, value, nbytes, meta,
                 now)
            )
            if len(op.entries) == size:
                del self._pending_colls[op_key]
                self._finish_collective_spanning(comm_id, op, size)
            return event
        if len(op.entries) == size:
            del self._pending_colls[op_key]
            self._finish_collective(comm_id, op, size)
        return event

    def _comm_spans(self, comm_id) -> bool:
        """Whether the communicator's members live on >1 PDES worker."""
        spans = self._spans_cache.get(comm_id)
        if spans is None:
            owner = self._owner
            wmap = self._comm_ranks.get(comm_id)
            members = (
                wmap if wmap is not None
                else range(self._comm_sizes[comm_id])
            )
            spans = len({owner[r] for r in members}) > 1
            self._spans_cache[comm_id] = spans
        return spans

    # ------------------------------------------------------------------
    # Partitioned-kernel ingress (called by the window runner at window
    # barriers; see repro.simx.parallel.runner)
    # ------------------------------------------------------------------
    def ingest_p2p(self, comm_id, dst, src, tag, nbytes, payload, sched):
        """Accept one cross-partition message for local delivery at its
        exact serial heap time ``sched``."""
        msg = _Message(src, tag, nbytes, payload, _REMOTE_SENT)
        self.env.schedule_at(
            sched, lambda _ev: self._deliver(comm_id, dst, msg)
        )

    def ingest_collective_entry(
        self, comm_id, index, kind, rank, value, nbytes, meta, time
    ):
        """Accept one remote rank's collective entry into the local
        replica.  No local sequence number is consumed — ``index`` was
        assigned by the entering rank on its own worker (per-rank entry
        order is partition-invariant, so indices agree everywhere)."""
        op_key = (comm_id, index)
        op = self._pending_colls.get(op_key)
        if op is None:
            op = self._pending_colls[op_key] = _CollectiveOp(kind)
        elif op.kind != kind:
            raise RuntimeError(
                f"collective mismatch on comm {comm_id} index {index}: "
                f"rank {rank} called {kind!r} but others called {op.kind!r}"
            )
        op.entries[rank] = value
        op.meta[rank] = meta
        op.nbytes_max = max(op.nbytes_max, nbytes)
        op.times[rank] = time
        size = self._comm_sizes[comm_id]
        if len(op.entries) == size:
            del self._pending_colls[op_key]
            self._finish_collective_spanning(comm_id, op, size)

    def _finish_collective_spanning(self, comm_id, op, size):
        """Complete a partition-spanning collective from the full replica.

        Every participating worker assembles identical entries and runs
        this with identical inputs; each schedules completion events only
        for the member ranks it hosts, at the common absolute time
        ``max(entry times) + delay`` — the exact float the serial kernel
        produces when the last entry's completion timeout is scheduled.
        The completion time always lands at or beyond the current safe
        horizon (``delay >= collective_round > lookahead``), so workers
        that complete the op at different barriers stay consistent.
        """
        wmap = self._comm_ranks.get(comm_id)
        lowest = 0 if wmap is None else min(wmap)
        if self._owner[lowest] == self._wid:
            # Counted once across the fleet — by the owner of the lowest
            # member world rank (the WorldStats merge sums workers).
            self.stats.collectives += 1
        delay = self.network.collective_time(op.nbytes_max, size)
        done = max(op.times.values()) + delay
        results = self._collective_results(comm_id, op, size)
        env = self.env
        for rank, event in op.events.items():
            env.schedule_at(
                done, lambda _ev, e=event, r=results[rank]: e.succeed(r)
            )

    def _finish_collective(self, comm_id, op, size):
        env = self.env
        self.stats.collectives += 1
        delay = self.network.collective_time(op.nbytes_max, size)
        results = self._collective_results(comm_id, op, size)
        for rank, event in op.events.items():
            timer = env.timeout(delay)
            timer.callbacks.append(
                lambda _ev, e=event, r=results[rank]: e.succeed(r)
            )

    def _new_comm(self, world_ranks):
        """Allocate a derived communicator over ``world_ranks``."""
        comm_id = self._next_comm_id
        self._next_comm_id += 1
        self._comm_sizes[comm_id] = len(world_ranks)
        self._comm_ranks[comm_id] = list(world_ranks)
        return comm_id

    def _collective_results(self, comm_id, op, size):
        kind = op.kind
        values = [op.entries[r] for r in range(size)]
        if kind == "barrier":
            return {r: None for r in range(size)}
        if kind in ("allreduce", "reduce"):
            reducer = op.meta[0]["op"]
            result = reducer.reduce(values)
            if kind == "allreduce":
                return {r: result for r in range(size)}
            root = op.meta[0]["root"]
            return {r: (result if r == root else None) for r in range(size)}
        if kind == "reduce_scatter":
            reducer = op.meta[0]["op"]
            # values[r] is a per-destination list; rank d receives the
            # reduction of values[*][d].
            return {
                d: reducer.reduce([values[s][d] for s in range(size)])
                for d in range(size)
            }
        if kind == "bcast":
            root = op.meta[0]["root"]
            return {r: values[root] for r in range(size)}
        if kind == "gather":
            root = op.meta[0]["root"]
            return {
                r: (list(values) if r == root else None) for r in range(size)
            }
        if kind == "scatter":
            root = op.meta[0]["root"]
            sendbuf = values[root]
            return {r: sendbuf[r] for r in range(size)}
        if kind == "allgather":
            return {r: list(values) for r in range(size)}
        if kind == "alltoall":
            return {
                r: [values[s][r] for s in range(size)] for r in range(size)
            }
        if kind == "dup":
            wmap = self._comm_ranks.get(comm_id)
            ranks = list(wmap) if wmap else list(range(size))
            new_id = self._new_comm(ranks)
            return {r: (new_id, r) for r in range(size)}
        if kind == "split":
            wmap = self._comm_ranks.get(comm_id)
            to_world = (lambda r: wmap[r]) if wmap else (lambda r: r)
            groups = {}
            for r in range(size):
                color, key = values[r]
                if color is None:
                    continue
                groups.setdefault(color, []).append((key, r))
            results = {r: None for r in range(size)}
            for color in sorted(groups):
                members = sorted(groups[color])
                world_ranks = [to_world(r) for _k, r in members]
                new_id = self._new_comm(world_ranks)
                for new_rank, (_key, r) in enumerate(members):
                    results[r] = (new_id, new_rank)
            return results
        raise ValueError(f"unknown collective kind {kind!r}")


class RankComm:
    """Per-rank communicator facade (the object rank programs use)."""

    def __init__(self, world: World, rank: int, comm_id: int):
        self.world = world
        self.rank = rank
        self.comm_id = comm_id

    # ------------------------------------------------------------------
    def Get_rank(self) -> int:
        return self.rank

    def Get_size(self) -> int:
        return self.world._comm_sizes[self.comm_id]

    @property
    def env(self):
        return self.world.env

    def _trace(self, name, t0, **meta):
        world = self.world
        if world.tracer is not None:
            world.tracer.mpi_event(self.rank, name, t0, self.env.now, **meta)
        if world.profiler is not None:
            # The profiler keys everything by world rank; map comm-local
            # ranks of derived communicators back through the world.
            wmap = world._comm_ranks.get(self.comm_id)
            rank = wmap[self.rank] if wmap else self.rank
            world.profiler.mpi_call(rank, name, t0, self.env.now)

    # ------------------------------------------------------------------
    # Point-to-point (generators: use with ``yield from``)
    # ------------------------------------------------------------------
    def isend(self, dest, tag, nbytes=None, payload=None):
        """Non-blocking send; returns a :class:`Request`."""
        if not 0 <= dest < self.Get_size():
            raise ValueError(f"invalid destination rank {dest}")
        if nbytes is None:
            nbytes = payload_nbytes(payload)
        env = self.env
        t0 = env.now
        yield env.timeout(self.world.network.send_cpu_time(nbytes))
        req = Request(env, "send")
        self.world._post_send(
            self.comm_id, self.rank, dest, tag, nbytes, payload, req
        )
        self._trace("Isend", t0, dest=dest, tag=tag, nbytes=nbytes)
        return req

    def irecv(self, source=ANY_SOURCE, tag=ANY_TAG, nbytes=0):
        """Non-blocking receive; returns a :class:`Request`.

        ``nbytes`` is only a hint used to charge posting overhead.
        """
        env = self.env
        t0 = env.now
        yield env.timeout(self.world.network.recv_cpu_time(nbytes))
        req = Request(env, "recv")
        ep = self.world._endpoint(self.comm_id, self.rank)
        scanned = 0
        for i, msg in enumerate(ep.unexpected):
            if source in (ANY_SOURCE, msg.source):
                scanned += 1
            if _match(source, tag, msg.source, msg.tag):
                del ep.unexpected[i]
                scan = (scanned - 1) * self.world.network.match_scan_cost
                if scan > 0:  # walking this source's unexpected messages
                    yield env.timeout(scan)
                self.world._complete_recv(req, msg)
                break
        else:
            ep.posted.append((req, source, tag))
        self._trace("Irecv", t0, source=source, tag=tag)
        return req

    def send(self, dest, tag, nbytes=None, payload=None):
        """Blocking send (completes when the message has landed)."""
        req = yield from self.isend(dest, tag, nbytes, payload)
        yield req.event
        return req

    def recv(self, source=ANY_SOURCE, tag=ANY_TAG, nbytes=0):
        """Blocking receive; returns the completed :class:`Request`."""
        t0 = self.env.now
        req = yield from self.irecv(source, tag, nbytes)
        yield req.event
        self._trace("Recv", t0, source=source, tag=tag)
        return req

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def wait(self, request):
        """Block until ``request`` completes; returns it."""
        t0 = self.env.now
        yield request.event
        self._trace("Wait", t0, kind=request.kind)
        return request

    def waitall(self, requests):
        """Block until every request in ``requests`` completes."""
        t0 = self.env.now
        pending = [r for r in requests if r is not None and not r.completed]
        if pending:
            yield self.env.all_of([r.event for r in pending])
        self._trace("Waitall", t0, count=len(requests))
        return list(requests)

    def waitany(self, requests):
        """Block until some request completes; returns (index, request).

        Entries that are ``None`` are skipped (consumed slots), matching the
        ``MPI_Waitany`` idiom in miniAMR's communicate loop.
        """
        t0 = self.env.now
        live = [(i, r) for i, r in enumerate(requests) if r is not None]
        if not live:
            raise ValueError("waitany on empty request list")
        for i, r in live:
            if r.completed:
                self._trace("Waitany", t0, index=i)
                return i, r
        yield self.env.any_of([r.event for _i, r in live])
        for i, r in live:
            if r.completed:
                self._trace("Waitany", t0, index=i)
                return i, r
        raise RuntimeError("waitany: no request completed")  # pragma: no cover

    def test(self, request) -> bool:
        """Non-blocking completion check (no simulated time consumed)."""
        return request.completed

    # ------------------------------------------------------------------
    # Collectives (generators: use with ``yield from``)
    # ------------------------------------------------------------------
    def _collective(self, kind, value, nbytes, meta):
        env = self.env
        t0 = env.now
        yield env.timeout(self.world.network.send_cpu_time(nbytes))
        event = self.world._enter_collective(
            self.comm_id, self.rank, kind, value, nbytes, meta
        )
        result = yield event
        self._trace(kind.capitalize(), t0)
        return result

    def barrier(self):
        """Synchronize all ranks of the communicator."""
        return (yield from self._collective("barrier", None, 0, {}))

    def allreduce(self, value, op=SUM, nbytes=None):
        """Reduce ``value`` across ranks; every rank gets the result."""
        if nbytes is None:
            nbytes = payload_nbytes(value)
        return (
            yield from self._collective("allreduce", value, nbytes, {"op": op})
        )

    def reduce(self, value, op=SUM, root=0, nbytes=None):
        """Reduce to ``root``; other ranks receive ``None``."""
        if nbytes is None:
            nbytes = payload_nbytes(value)
        return (
            yield from self._collective(
                "reduce", value, nbytes, {"op": op, "root": root}
            )
        )

    def bcast(self, value, root=0, nbytes=None):
        """Broadcast ``root``'s value to all ranks."""
        if nbytes is None:
            nbytes = payload_nbytes(value)
        return (
            yield from self._collective("bcast", value, nbytes, {"root": root})
        )

    def gather(self, value, root=0, nbytes=None):
        """Gather one value per rank at ``root`` (others get ``None``)."""
        if nbytes is None:
            nbytes = payload_nbytes(value)
        return (
            yield from self._collective(
                "gather", value, nbytes, {"root": root}
            )
        )

    def scatter(self, values, root=0, nbytes=None):
        """Scatter ``root``'s list (one element per rank)."""
        if values is not None and len(values) != self.Get_size():
            raise ValueError("scatter needs one value per rank at the root")
        if nbytes is None:
            nbytes = payload_nbytes(values)
        return (
            yield from self._collective(
                "scatter", values, nbytes, {"root": root}
            )
        )

    def reduce_scatter(self, values, op=SUM, nbytes=None):
        """Element-wise reduce across ranks; rank d keeps element d."""
        if len(values) != self.Get_size():
            raise ValueError("reduce_scatter needs one value per rank")
        if nbytes is None:
            nbytes = sum(payload_nbytes(v) for v in values)
        return (
            yield from self._collective(
                "reduce_scatter", values, nbytes, {"op": op}
            )
        )

    def allgather(self, value, nbytes=None):
        """Gather one value per rank; every rank gets the full list."""
        if nbytes is None:
            nbytes = payload_nbytes(value)
        return (yield from self._collective("allgather", value, nbytes, {}))

    # ------------------------------------------------------------------
    # Communicator management
    # ------------------------------------------------------------------
    def dup(self):
        """Duplicate the communicator (collective); returns a new facade."""
        new_id, new_rank = yield from self._collective("dup", None, 0, {})
        return RankComm(self.world, new_rank, new_id)

    def split(self, color, key=0):
        """Split into sub-communicators by ``color`` (collective).

        Ranks passing the same color form a new communicator, ordered by
        ``(key, rank)``.  A ``None`` color (MPI_UNDEFINED) yields ``None``.
        """
        result = yield from self._collective("split", (color, key), 0, {})
        if result is None:
            return None
        new_id, new_rank = result
        return RankComm(self.world, new_rank, new_id)

    def alltoall(self, values, nbytes=None):
        """Personalized exchange: rank r receives ``values[r]`` of each."""
        if len(values) != self.Get_size():
            raise ValueError("alltoall needs one value per rank")
        if nbytes is None:
            nbytes = sum(payload_nbytes(v) for v in values)
        return (yield from self._collective("alltoall", values, nbytes, {}))

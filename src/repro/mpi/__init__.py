"""``repro.mpi`` — a from-scratch simulated MPI library.

Substitutes for Intel MPI on the simulated cluster: non-blocking
point-to-point messaging with envelope matching and non-overtaking order,
blocking wrappers, ``waitany``/``waitall``/``test``, and tree-cost
collectives.  All operations are generators used with ``yield from`` inside
simulation processes, mirroring how mpi4py calls appear in real code.
"""

from .comm import RankComm, World, WorldStats, payload_nbytes
from .datatypes import ANY_SOURCE, ANY_TAG, MAX, MIN, PROD, SUM, Op, Status
from .requests import Request

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "MAX",
    "MIN",
    "Op",
    "PROD",
    "RankComm",
    "Request",
    "SUM",
    "Status",
    "World",
    "WorldStats",
    "payload_nbytes",
]

"""Constants, reduction operations, and status objects for simulated MPI."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Wildcard source for receives.
ANY_SOURCE = -1
#: Wildcard tag for receives.
ANY_TAG = -1


class Op:
    """A reduction operation usable by Reduce/Allreduce.

    Works on scalars, sequences (element-wise), and numpy arrays.
    """

    def __init__(self, name, scalar_fn, array_fn):
        self.name = name
        self._scalar_fn = scalar_fn
        self._array_fn = array_fn

    def __call__(self, a, b):
        if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
            return self._array_fn(np.asarray(a), np.asarray(b))
        if isinstance(a, (list, tuple)):
            if len(a) != len(b):
                raise ValueError("reduced sequences must have equal length")
            return type(a)(self._scalar_fn(x, y) for x, y in zip(a, b))
        return self._scalar_fn(a, b)

    def reduce(self, values):
        """Fold ``values`` (ordered by rank) into a single result."""
        it = iter(values)
        acc = next(it)
        for v in it:
            acc = self(acc, v)
        return acc

    def __repr__(self):
        return f"<Op {self.name}>"

    def __reduce__(self):
        # Ops close over lambdas, which cannot pickle — but every Op is
        # one of the module-level singletons below, so serialize by name
        # (the partitioned kernel ships collective metadata, including
        # the reducer, between workers).
        return (_op_by_name, (self.name,))


def _op_by_name(name: str) -> "Op":
    return _OPS[name]


SUM = Op("sum", lambda a, b: a + b, np.add)
MAX = Op("max", lambda a, b: a if a >= b else b, np.maximum)
MIN = Op("min", lambda a, b: a if a <= b else b, np.minimum)
PROD = Op("prod", lambda a, b: a * b, np.multiply)

_OPS = {op.name: op for op in (SUM, MAX, MIN, PROD)}


@dataclass
class Status:
    """Completion information of a receive."""

    source: int = ANY_SOURCE
    tag: int = ANY_TAG
    nbytes: int = 0

    def Get_source(self) -> int:
        return self.source

    def Get_tag(self) -> int:
        return self.tag

    def Get_count(self) -> int:
        return self.nbytes

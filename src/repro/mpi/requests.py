"""Request objects for non-blocking simulated-MPI operations."""

from __future__ import annotations

from .datatypes import Status


class Request:
    """Handle to an in-flight non-blocking operation.

    Completion is represented by an underlying simulation event.  For
    receives, ``data`` carries the delivered payload and ``status`` the
    envelope.
    """

    __slots__ = ("event", "kind", "status", "data", "_seq")

    _counter = 0

    def __init__(self, env, kind):
        self.event = env.event()
        self.kind = kind  # "send" | "recv"
        self.status = Status()
        self.data = None
        Request._counter += 1
        self._seq = Request._counter

    @property
    def completed(self) -> bool:
        return self.event.triggered

    def _complete(self, data=None):
        self.data = data
        self.event.succeed(self)

    def __repr__(self):
        state = "done" if self.completed else "pending"
        return f"<Request {self.kind} {state} #{self._seq}>"

"""Run results and their typed, JSON-round-trippable statistics.

:class:`RunResult` carries the quantities the paper reports plus typed
summaries of the simulated-MPI and tasking-runtime counters.  Everything
serializes losslessly through :meth:`RunResult.to_dict` /
:meth:`RunResult.from_dict` — float64 values survive JSON exactly — so
results can cross process boundaries and live in the on-disk cache of
:mod:`repro.exec`.  The only live-only attachment is the optional
:class:`~repro.trace.Tracer`, which is excluded from serialization and
from equality.  Trace-derived *data* does serialize: a compact
:class:`~repro.obs.PhaseSummary` rides along whenever the run traced or
profiled, and a full :class:`~repro.obs.ProfileReport` when
``RunSpec(profile=True)`` — so cached results are no longer blind.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields

import numpy as np

from ..obs.report import PhaseSummary, ProfileReport


@dataclass
class CommStats:
    """Summary of one simulated MPI world's communication counters."""

    messages: int = 0
    bytes_sent: int = 0
    intra_node_messages: int = 0
    inter_node_messages: int = 0
    collectives: int = 0

    @classmethod
    def from_world(cls, stats) -> "CommStats":
        """Snapshot the live :class:`~repro.mpi.comm.WorldStats` counters."""
        return cls(
            messages=stats.messages,
            bytes_sent=stats.bytes_sent,
            intra_node_messages=stats.intra_node_messages,
            inter_node_messages=stats.inter_node_messages,
            collectives=stats.collectives,
        )

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "CommStats":
        return cls(**data)


@dataclass
class RuntimeStats:
    """Summary of one rank's tasking-runtime counters."""

    tasks_spawned: int = 0
    tasks_executed: int = 0
    locality_hits: int = 0
    steals: int = 0
    taskwaits: int = 0
    per_phase_time: dict = field(default_factory=dict)
    hits_by_phase: dict = field(default_factory=dict)
    tasks_by_phase: dict = field(default_factory=dict)

    @classmethod
    def from_runtime(cls, stats) -> "RuntimeStats":
        """Snapshot a live :class:`repro.tasking.runtime.RuntimeStats`."""
        return cls(
            tasks_spawned=stats.tasks_spawned,
            tasks_executed=stats.tasks_executed,
            locality_hits=stats.locality_hits,
            steals=stats.steals,
            taskwaits=stats.taskwaits,
            per_phase_time=dict(stats.per_phase_time),
            hits_by_phase=dict(stats.hits_by_phase),
            tasks_by_phase=dict(stats.tasks_by_phase),
        )

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "RuntimeStats":
        return cls(**data)


def _checksum_to_json(entry):
    t, total, drift = entry
    return [float(t), np.asarray(total, dtype=np.float64).tolist(),
            float(drift)]


def _checksum_from_json(entry):
    t, total, drift = entry
    return (float(t), np.asarray(total, dtype=np.float64), float(drift))


@dataclass(eq=False)
class RunResult:
    """Metrics of one simulated run (the quantities the paper reports)."""

    variant: str
    num_nodes: int
    ranks_per_node: int
    #: Total simulated execution time (seconds).
    total_time: float
    #: Simulated time rank 0 spent in refinement phases.
    refine_time: float
    #: Total stencil floating-point operations (all ranks).
    flops: float
    #: Final number of mesh blocks.
    num_blocks: int
    #: max/mean per-rank block count at the end.
    imbalance: float
    #: Global checksum log: (time, per-variable totals, drift) tuples.
    checksums: list = field(default_factory=list)
    #: Simulated-MPI communication summary.
    comm_stats: CommStats = None
    #: Tasking-runtime summary per rank.
    runtime_stats: list = field(default_factory=list)
    #: Compact trace-derived phase-time summary (present when the run
    #: traced or profiled; serialized, unlike the tracer itself).
    phase_summary: PhaseSummary = None
    #: Full profiling report (present when ``RunSpec(profile=True)``).
    profile: ProfileReport = None
    #: Injected-fault ledger (present when the run had an active
    #: :class:`~repro.faults.FaultPlan`): the
    #: :class:`~repro.faults.FaultStats` counters as a plain dict.
    fault_stats: dict = None
    #: Live-only tracer (present when tracing was requested; never
    #: serialized, ignored by equality).
    tracer: object = None
    #: Live-only :class:`~repro.obs.Profiler` (present when the run was
    #: profiled in-process; never serialized, ignored by equality — the
    #: serializable digest is :attr:`profile`).  Needed by exporters that
    #: read raw records, e.g. the Chrome trace writer.
    profiler: object = None

    @property
    def non_refine_time(self) -> float:
        return self.total_time - self.refine_time

    @property
    def gflops(self) -> float:
        """Throughput as the paper computes it: stencil FLOPs / total time."""
        if self.total_time <= 0:
            return 0.0
        return self.flops / self.total_time / 1e9

    # ------------------------------------------------------------------
    def __eq__(self, other):
        """Field equality modulo the live tracer (checksum arrays exact)."""
        if not isinstance(other, RunResult):
            return NotImplemented
        for f in fields(self):
            if f.name in ("tracer", "profiler", "checksums"):
                continue
            if getattr(self, f.name) != getattr(other, f.name):
                return False
        if len(self.checksums) != len(other.checksums):
            return False
        for (ta, ca, da), (tb, cb, db) in zip(
            self.checksums, other.checksums
        ):
            if ta != tb or da != db or not np.array_equal(
                np.asarray(ca), np.asarray(cb)
            ):
                return False
        return True

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-compatible dict (inverse of :meth:`from_dict`).

        The tracer is live-only and intentionally not included; its
        serializable derivatives (``phase_summary``, ``profile``) are
        emitted only when present, so dicts of untraced runs — and the
        goldens built from them — are unchanged by these fields.
        """
        d = {
            "variant": self.variant,
            "num_nodes": self.num_nodes,
            "ranks_per_node": self.ranks_per_node,
            "total_time": self.total_time,
            "refine_time": self.refine_time,
            "flops": self.flops,
            "num_blocks": self.num_blocks,
            "imbalance": self.imbalance,
            "checksums": [_checksum_to_json(c) for c in self.checksums],
            "comm_stats": (
                self.comm_stats.to_dict() if self.comm_stats else None
            ),
            "runtime_stats": [s.to_dict() for s in self.runtime_stats],
        }
        if self.phase_summary is not None:
            d["phase_summary"] = self.phase_summary.to_dict()
        if self.profile is not None:
            d["profile"] = self.profile.to_dict()
        if self.fault_stats is not None:
            d["fault_stats"] = dict(self.fault_stats)
        return d

    @classmethod
    def from_dict(cls, data: dict) -> "RunResult":
        comm = data.get("comm_stats")
        return cls(
            variant=data["variant"],
            num_nodes=data["num_nodes"],
            ranks_per_node=data["ranks_per_node"],
            total_time=data["total_time"],
            refine_time=data["refine_time"],
            flops=data["flops"],
            num_blocks=data["num_blocks"],
            imbalance=data["imbalance"],
            checksums=[
                _checksum_from_json(c) for c in data.get("checksums", [])
            ],
            comm_stats=CommStats.from_dict(comm) if comm else None,
            runtime_stats=[
                RuntimeStats.from_dict(s)
                for s in data.get("runtime_stats", [])
            ],
            phase_summary=(
                PhaseSummary.from_dict(data["phase_summary"])
                if data.get("phase_summary") is not None
                else None
            ),
            profile=(
                ProfileReport.from_dict(data["profile"])
                if data.get("profile") is not None
                else None
            ),
            fault_stats=data.get("fault_stats"),
        )

"""Run one simulated miniAMR execution and collect its metrics."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..amr.balance import max_imbalance
from ..machine.presets import MachineSpec
from ..mpi import World
from ..simx import Environment
from ..tasking import RankRuntime
from ..trace import Tracer
from .app import SharedState
from .variants.fork_join import ForkJoinProgram
from .variants.mpi_only import MpiOnlyProgram
from .variants.tampi_dataflow import TampiDataflowProgram

VARIANTS = {
    "mpi_only": MpiOnlyProgram,
    "fork_join": ForkJoinProgram,
    "tampi_dataflow": TampiDataflowProgram,
}


@dataclass
class RunResult:
    """Metrics of one simulated run (the quantities the paper reports)."""

    variant: str
    num_nodes: int
    ranks_per_node: int
    #: Total simulated execution time (seconds).
    total_time: float
    #: Simulated time rank 0 spent in refinement phases.
    refine_time: float
    #: Total stencil floating-point operations (all ranks).
    flops: float
    #: Final number of mesh blocks.
    num_blocks: int
    #: max/mean per-rank block count at the end.
    imbalance: float
    #: Global checksum log: (time, totals, drift) tuples.
    checksums: list = field(default_factory=list)
    #: Simulated-MPI world statistics.
    comm_stats: object = None
    #: Aggregated tasking-runtime statistics per rank.
    runtime_stats: list = field(default_factory=list)
    #: Tracer (present when tracing was requested).
    tracer: object = None

    @property
    def non_refine_time(self) -> float:
        return self.total_time - self.refine_time

    @property
    def gflops(self) -> float:
        """Throughput as the paper computes it: stencil FLOPs / total time."""
        if self.total_time <= 0:
            return 0.0
        return self.flops / self.total_time / 1e9


def run_simulation(
    config,
    spec: MachineSpec,
    *,
    variant="tampi_dataflow",
    num_nodes=1,
    ranks_per_node=None,
    scheduler="locality",
    delayed_checksum=None,
    stage_barrier=False,
    trace=False,
    cost_overrides=None,
) -> RunResult:
    """Simulate one miniAMR execution.

    Parameters
    ----------
    config:
        The :class:`~repro.amr.config.AmrConfig`; its rank grid
        (npx·npy·npz) must equal ``num_nodes × ranks_per_node``.
    spec:
        Machine preset (node hardware + network + cost model).
    variant:
        ``"mpi_only"`` (one rank per core), ``"fork_join"``, or
        ``"tampi_dataflow"``.
    ranks_per_node:
        Defaults to all cores for MPI-only and 4 for the hybrids (the
        paper's chosen configurations).
    scheduler:
        Task scheduler for the data-flow variant ("locality" or "fifo").
    delayed_checksum:
        Override the data-flow variant's delayed-checksum optimization.
    stage_barrier:
        Ablation: force a local join after every stage (removes the
        cross-stage overlap the data-flow execution model provides).
    trace:
        Collect a :class:`~repro.trace.Tracer` (slower; for Figs 1–3).
    cost_overrides:
        Optional dict of :class:`~repro.machine.CostSpec` field overrides
        (for ablations).
    """
    if variant not in VARIANTS:
        raise ValueError(
            f"unknown variant {variant!r}; choose from {sorted(VARIANTS)}"
        )
    if ranks_per_node is None:
        ranks_per_node = (
            spec.node.cores_per_node if variant == "mpi_only" else 4
        )
    if cost_overrides:
        spec = MachineSpec(
            node=spec.node,
            network=spec.network,
            cost=spec.cost.with_overrides(**cost_overrides),
            name=spec.name,
        )

    machine = spec.machine(num_nodes=num_nodes, ranks_per_node=ranks_per_node)
    if config.num_ranks != machine.num_ranks:
        raise ValueError(
            f"config rank grid {config.npx}x{config.npy}x{config.npz} = "
            f"{config.num_ranks} ranks, but the machine has "
            f"{machine.num_ranks} ({num_nodes} nodes x {ranks_per_node})"
        )

    env = Environment()
    tracer = Tracer() if trace else None
    network = spec.network.scaled_to(num_nodes)
    world = World(env, machine, network, tracer=tracer)
    shared = SharedState(config, machine, spec, world, tracer=tracer)

    cores_per_rank = 1 if variant == "mpi_only" else machine.cores_per_rank
    program_cls = VARIANTS[variant]
    programs = []
    for rank in range(machine.num_ranks):
        runtime = RankRuntime(
            env,
            rank=rank,
            num_cores=cores_per_rank,
            cost_spec=spec.cost,
            numa=machine.placement(rank).spans_numa,
            scheduler=scheduler,
            tracer=tracer,
        )
        program = program_cls(shared, rank, world.comm(rank), runtime)
        if delayed_checksum is not None and hasattr(
            program, "delayed_checksum"
        ):
            program.delayed_checksum = delayed_checksum
        program.stage_barrier = stage_barrier
        programs.append(program)

    procs = [
        env.process(p.run(), name=f"rank{p.rank}") for p in programs
    ]
    for proc in procs:
        env.run(until=proc)

    return RunResult(
        variant=variant,
        num_nodes=num_nodes,
        ranks_per_node=ranks_per_node,
        total_time=env.now,
        refine_time=programs[0].refine_seconds,
        flops=shared.flops,
        num_blocks=shared.structure.num_blocks(),
        imbalance=max_imbalance(shared.structure),
        checksums=list(shared.checksum_log),
        comm_stats=world.stats,
        runtime_stats=[p.rt.stats for p in programs],
        tracer=tracer,
    )

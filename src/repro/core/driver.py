"""Run one simulated miniAMR execution and collect its metrics."""

from __future__ import annotations

import gc
import warnings

from ..amr.balance import max_imbalance
from ..faults.injectors import FaultInjector
from ..mpi import World
from ..obs.profiler import Profiler
from ..obs.report import PhaseSummary, build_profile_report
from ..simx import Environment
from ..tasking import RankRuntime
from ..trace import Tracer
from ..verify.witness import AccessWitness
from .app import SharedState
from .results import CommStats, RunResult, RuntimeStats
from .spec import VARIANT_NAMES, RunSpec
from .variants.fork_join import ForkJoinProgram
from .variants.mpi_only import MpiOnlyProgram
from .variants.tampi_dataflow import TampiDataflowProgram

VARIANTS = {
    "mpi_only": MpiOnlyProgram,
    "fork_join": ForkJoinProgram,
    "tampi_dataflow": TampiDataflowProgram,
}
assert set(VARIANTS) == set(VARIANT_NAMES)


def run_simulation(config, spec=None, **kwargs) -> RunResult:
    """Simulate one miniAMR execution.

    The one canonical form takes a single :class:`~repro.core.RunSpec`::

        run_simulation(RunSpec(config=cfg, machine="marenostrum4", ...))

    The legacy form — ``run_simulation(config, machine_spec, variant=...,
    num_nodes=..., ranks_per_node=..., scheduler=..., delayed_checksum=...,
    stage_barrier=..., trace=..., cost_overrides=...)`` — is **deprecated**
    and will be removed next release: it emits a
    :class:`DeprecationWarning` and builds the equivalent
    :class:`RunSpec`.  Defaults (notably ranks-per-node: all cores for
    MPI-only, 4 for the hybrids) are resolved by :meth:`RunSpec.resolve`
    either way.
    """
    if isinstance(config, RunSpec):
        if spec is not None or kwargs:
            raise TypeError(
                "run_simulation(RunSpec) takes no further arguments; "
                "use dataclasses.replace() to derive a new spec"
            )
        run_spec = config
    else:
        if spec is None:
            raise TypeError(
                "run_simulation(config, machine_spec, ...) requires a "
                "machine spec (or pass a single RunSpec)"
            )
        warnings.warn(
            "run_simulation(config, machine_spec, ...) is deprecated and "
            "will be removed in the next release; pass a single RunSpec: "
            "run_simulation(RunSpec(config=cfg, machine=machine, ...))",
            DeprecationWarning,
            stacklevel=2,
        )
        run_spec = RunSpec(config=config, machine=spec, **kwargs)
    return execute(run_spec)


def execute(run_spec: RunSpec) -> RunResult:
    """Execute a (possibly unresolved) :class:`RunSpec`."""
    # The simulation allocates events/tasks at a rate that makes Python's
    # cyclic collector scan the (large, mostly immortal) object graph over
    # and over — at paper-scale world sizes GC is ~40% of wall-clock.
    # Refcounting still reclaims nearly everything promptly (kernel and
    # runtime avoid cycles on the hot path), so collection is suspended
    # for the run and cyclic garbage is swept once afterwards.  The sweep
    # sits *outside* the worker frame: only once that frame is gone is
    # the simulation graph (generators, events, world) actually dead, so
    # a single collect here reclaims it all and the caller inherits no
    # deferred GC debt.  Generation 1 suffices: every object the run
    # allocated sits in generation 0 (no collections ran while disabled),
    # so the young-generation sweep frees the whole graph without also
    # scanning the embedding process's long-lived heap on every run.
    gc_was_enabled = gc.isenabled()
    if gc_was_enabled:
        gc.disable()
    try:
        return _execute(run_spec)
    finally:
        if gc_was_enabled:
            gc.enable()
            gc.collect(1)


class _Sim:
    """The constructed pieces of one run (or one PDES worker's share)."""

    __slots__ = (
        "machine", "env", "world", "shared", "programs", "procs",
        "profiler", "tracer", "witness", "injector", "cores_per_rank",
    )


def _build_simulation(rs, machine, local_ranks=None, partition=None):
    """Construct the full simulation state of one run.

    ``rs`` must already be resolved and consistent with ``machine``.
    When ``local_ranks``/``partition`` are given (one PDES worker of a
    partitioned run, :mod:`repro.simx.parallel`), the World and the
    shared application state still span *all* ranks — replicated state
    evolves identically on every worker — but rank programs and their
    simulation processes are instantiated only for the local subset.
    """
    config, spec = rs.config, rs.machine

    profiler = Profiler() if rs.profile else None
    env = Environment(
        metrics=profiler.metrics if profiler is not None else None
    )
    # Profiled runs always collect a tracer internally (phase spans feed
    # the ProfileReport); it is only attached to the result — live-only —
    # when tracing was explicitly requested.
    tracer = (
        Tracer(max_events=rs.trace_max_events)
        if (rs.trace or rs.profile)
        else None
    )
    witness = AccessWitness(env) if rs.check_access else None
    network = spec.network.scaled_to(rs.num_nodes)
    # resolve() normalized inactive plans away, so a non-None plan here
    # always perturbs something.  Fault streams are keyed per rank, so a
    # worker instantiating all of them but drawing only from its local
    # ranks' streams reproduces the serial draws exactly.
    injector = (
        FaultInjector(
            rs.faults, network, machine.num_ranks, profiler=profiler
        )
        if rs.faults is not None
        else None
    )
    world = World(
        env, machine, network, tracer=tracer, profiler=profiler,
        faults=injector, partition=partition,
    )
    shared = SharedState(config, machine, spec, world, tracer=tracer)

    cores_per_rank = 1 if rs.variant == "mpi_only" else machine.cores_per_rank
    program_cls = VARIANTS[rs.variant]
    ranks = range(machine.num_ranks) if local_ranks is None else local_ranks
    programs = []
    for rank in ranks:
        runtime = RankRuntime(
            env,
            rank=rank,
            num_cores=cores_per_rank,
            cost_spec=spec.cost,
            numa=machine.placement(rank).spans_numa,
            scheduler=rs.scheduler,
            sched_seed=rs.sched_seed,
            witness=witness,
            tracer=tracer,
            profiler=profiler,
            faults=injector,
        )
        program = program_cls(shared, rank, world.comm(rank), runtime)
        if rs.delayed_checksum is not None and hasattr(
            program, "delayed_checksum"
        ):
            program.delayed_checksum = rs.delayed_checksum
        program.stage_barrier = rs.stage_barrier
        programs.append(program)

    sim = _Sim()
    sim.machine = machine
    sim.env = env
    sim.world = world
    sim.shared = shared
    sim.programs = programs
    sim.procs = [
        env.process(p.run(), name=f"rank{p.rank}") for p in programs
    ]
    sim.profiler = profiler
    sim.tracer = tracer
    sim.witness = witness
    sim.injector = injector
    sim.cores_per_rank = cores_per_rank
    return sim


def _execute(run_spec: RunSpec) -> RunResult:
    rs = run_spec.resolve()
    config, spec = rs.config, rs.machine
    num_nodes, ranks_per_node = rs.num_nodes, rs.ranks_per_node

    machine = spec.machine(num_nodes=num_nodes, ranks_per_node=ranks_per_node)
    if config.num_ranks != machine.num_ranks:
        raise ValueError(
            f"config rank grid {config.npx}x{config.npy}x{config.npz} = "
            f"{config.num_ranks} ranks, but the machine has "
            f"{machine.num_ranks} ({num_nodes} nodes x {ranks_per_node})"
        )

    if rs.pdes_workers > 1:
        from ..simx.parallel.runner import (
            can_partition,
            effective_workers,
            run_partitioned,
        )

        if can_partition() and effective_workers(rs, machine) > 1:
            return run_partitioned(rs)

    sim = _build_simulation(rs, machine)
    env, programs = sim.env, sim.programs
    for proc in sim.procs:
        env.run(until=proc)

    if sim.witness is not None:
        sim.witness.check()  # raises AccessRaceError on undeclared accesses

    env.flush_metrics()
    profiler, tracer, injector = sim.profiler, sim.tracer, sim.injector
    profile = (
        build_profile_report(
            profiler,
            rs,
            num_ranks=machine.num_ranks,
            cores_per_rank=sim.cores_per_rank,
            makespan=env.now,
            tracer=tracer,
            fault_injector=injector,
        )
        if profiler is not None
        else None
    )

    return RunResult(
        variant=rs.variant,
        num_nodes=num_nodes,
        ranks_per_node=ranks_per_node,
        total_time=env.now,
        refine_time=programs[0].refine_seconds,
        flops=sim.shared.flops,
        num_blocks=sim.shared.structure.num_blocks(),
        imbalance=max_imbalance(sim.shared.structure),
        checksums=list(sim.shared.checksum_log),
        comm_stats=CommStats.from_world(sim.world.stats),
        runtime_stats=[RuntimeStats.from_runtime(p.rt.stats) for p in programs],
        phase_summary=(
            PhaseSummary.from_tracer(tracer) if tracer is not None else None
        ),
        profile=profile,
        fault_stats=(
            injector.stats.to_dict() if injector is not None else None
        ),
        tracer=tracer if rs.trace else None,
        profiler=profiler,
    )

"""The three miniAMR parallelization variants the paper compares."""

from .fork_join import ForkJoinProgram
from .mpi_only import MpiOnlyProgram
from .tampi_dataflow import TampiDataflowProgram

__all__ = ["ForkJoinProgram", "MpiOnlyProgram", "TampiDataflowProgram"]

"""The MPI+OpenMP fork-join hybrid variant.

Matches the experimental hybrid in the official miniAMR repository (plus
the fairness additions the paper made): ``omp parallel for`` with static
scheduling around the stencil, intra-process copies, face pack/unpack, the
local checksum reduction, and block split/consolidate in refinement.  All
MPI stays on the master thread, and every parallel region is an implicit
barrier — the structure whose scaling limits the paper demonstrates.
"""

from __future__ import annotations

import numpy as np

from ...amr.comm_plan import direction_tag, group_nbytes, message_groups
from ...tasking import ForkJoinTeam
from ..app import BaseRankProgram


class ForkJoinProgram(BaseRankProgram):
    """MPI + OpenMP fork-join (master-only MPI)."""

    name = "fork_join"

    def __init__(self, shared, rank, comm, runtime):
        super().__init__(shared, rank, comm, runtime)
        self.team = ForkJoinTeam(runtime)

    # ------------------------------------------------------------------
    def communicate(self, group):
        cfg = self.cfg
        vs = cfg.group_slice(group)
        plans = self.plans_for_group(group)

        for dplan in plans:
            axis = dplan.axis

            # Master posts every receive up front.
            recv_reqs = []
            recv_groups = []
            for peer in sorted(dplan.recvs):
                groups = message_groups(
                    dplan.recvs[peer], cfg.send_faces, cfg.max_comm_tasks
                )
                for gi, mgroup in enumerate(groups):
                    req = yield from self.comm.irecv(
                        peer, direction_tag(axis, gi), group_nbytes(mgroup)
                    )
                    recv_reqs.append(req)
                    recv_groups.append(mgroup)

            # Parallel pack (fork-join region), then master sends.
            send_jobs = []  # (peer, gi, mgroup, payload_slots)
            pack_costs = []
            pack_bodies = []
            for peer in sorted(dplan.sends):
                groups = message_groups(
                    dplan.sends[peer], cfg.send_faces, cfg.max_comm_tasks
                )
                for gi, mgroup in enumerate(groups):
                    slots = [None] * len(mgroup)
                    send_jobs.append((peer, gi, mgroup, slots))
                    for fi, t in enumerate(mgroup):
                        pack_costs.append(self.copy_cost(t.nbytes))
                        pack_bodies.append(
                            self._pack_body(slots, fi, t, vs)
                        )
            if pack_costs:
                yield from self.team.parallel_for(
                    pack_costs, pack_bodies, label="pack", phase="pack"
                )

            send_reqs = []
            for peer, gi, mgroup, slots in send_jobs:
                req = yield from self.comm.isend(
                    peer,
                    direction_tag(axis, gi),
                    nbytes=group_nbytes(mgroup),
                    payload=slots,
                )
                send_reqs.append(req)

            # Parallel intra-process copies.
            if dplan.local:
                costs = [self.copy_cost(t.nbytes) for t in dplan.local]
                bodies = [self._copy_body(t, vs) for t in dplan.local]
                yield from self.team.parallel_for(
                    costs, bodies, label="intra", phase="intra"
                )

            # Master waits for every receive, then a parallel unpack.
            yield from self.comm.waitall(recv_reqs)
            unpack_costs = []
            unpack_bodies = []
            for req, mgroup in zip(recv_reqs, recv_groups):
                planes = req.data if req.data is not None else [None] * len(
                    mgroup
                )
                for t, plane in zip(mgroup, planes):
                    unpack_costs.append(self.copy_cost(t.nbytes))
                    unpack_bodies.append(self._unpack_body(t, plane, vs))
            if unpack_costs:
                yield from self.team.parallel_for(
                    unpack_costs, unpack_bodies, label="unpack", phase="unpack"
                )

            yield from self.comm.waitall(send_reqs)

    def _pack_body(self, slots, fi, transfer, vs):
        def run():
            slots[fi] = self.make_face_payload(transfer, vs)

        return run

    def _copy_body(self, transfer, vs):
        def run():
            self.copy_local_face(transfer, vs)

        return run

    def _unpack_body(self, transfer, plane, vs):
        def run():
            self.apply_face_payload(transfer, plane, vs)

        return run

    # ------------------------------------------------------------------
    def stencil(self, group):
        cfg = self.cfg
        vs = cfg.group_slice(group)
        nvars = cfg.group_size(group)
        bids = sorted(self.blocks)
        if not bids:
            return
        cost = self.stencil_cost(nvars)
        costs = [cost] * len(bids)
        bodies = [self._stencil_body(bid, vs) for bid in bids]
        yield from self.team.parallel_for(
            costs, bodies, label="stencil", phase="stencil"
        )
        for _ in bids:
            self.count_stencil_flops(nvars)

    def _stencil_body(self, bid, vs):
        def run():
            self.apply_stencil(bid, vs)

        return run

    # ------------------------------------------------------------------
    def checksum_local(self):
        cfg = self.cfg
        bids = sorted(self.blocks)
        total = np.zeros(cfg.num_vars, dtype=np.float64)
        for group in range(cfg.num_groups):
            vs = cfg.group_slice(group)
            if not bids:
                continue
            cost = self.checksum_cost(cfg.group_size(group))
            partials = []
            bodies = [
                self._csum_body(partials, bid, vs) for bid in bids
            ]
            yield from self.team.parallel_for(
                [cost] * len(bids), bodies, label="checksum", phase="checksum"
            )
            # Partials land in chunk-execution order; FP addition is not
            # associative, so reduce in canonical block order to keep the
            # checksum bitwise identical under every legal schedule.
            for _bid, part in sorted(partials, key=lambda p: p[0]):
                total[vs] += part
        return total

    def _csum_body(self, partials, bid, vs):
        def run():
            partials.append((bid, self.block_checksum(bid, vs)))

        return run

    # ------------------------------------------------------------------
    def refine_data_ops(self, plan, split_owner, coarsen_owner):
        """Split/consolidate copies in parallel regions (the fairness
        addition the paper made to the fork-join variant)."""
        nbytes = self.cfg.block_bytes()
        splits = self.my_splits(split_owner)
        if splits:
            costs = [self.copy_cost(nbytes)] * len(splits)
            bodies = [self._split_body(bid) for bid in splits]
            yield from self.team.parallel_for(
                costs, bodies, label="split", phase="split"
            )
        merges = self.my_consolidations(coarsen_owner)
        if merges:
            costs = [self.copy_cost(nbytes)] * len(merges)
            bodies = [self._merge_body(p) for p in merges]
            yield from self.team.parallel_for(
                costs, bodies, label="consolidate", phase="consolidate"
            )

    def _split_body(self, bid):
        def run():
            self.do_split(bid)

        return run

    def _merge_body(self, parent):
        def run():
            self.do_consolidate(parent)

        return run

"""The MPI-only reference variant (one rank per core).

Faithful to Algorithm 2: per direction, post all receives, pack and send
every outgoing message, perform intra-process copies while transfers are in
flight, drain receives with ``MPI_Waitany`` unpacking as they land, and
wait for the sends before the next direction.  Everything runs sequentially
on the rank's single core.
"""

from __future__ import annotations

import numpy as np

from ...amr.checksum import local_checksum
from ...amr.comm_plan import direction_tag, group_nbytes, message_groups
from ..app import BaseRankProgram


class MpiOnlyProgram(BaseRankProgram):
    """The reference implementation (with the Rico et al. data layout)."""

    name = "mpi_only"

    # ------------------------------------------------------------------
    def communicate(self, group):
        cfg = self.cfg
        vs = cfg.group_slice(group)
        plans = self.plans_for_group(group)

        for dplan in plans:
            axis = dplan.axis

            # 1. Post receives for every remote neighbor in this direction.
            recv_reqs = []
            recv_groups = []
            for peer in sorted(dplan.recvs):
                groups = message_groups(
                    dplan.recvs[peer], cfg.send_faces, cfg.max_comm_tasks
                )
                for gi, mgroup in enumerate(groups):
                    req = yield from self.comm.irecv(
                        peer, direction_tag(axis, gi), group_nbytes(mgroup)
                    )
                    recv_reqs.append(req)
                    recv_groups.append(mgroup)

            # 2. Pack faces into the send buffer and send.
            send_reqs = []
            for peer in sorted(dplan.sends):
                groups = message_groups(
                    dplan.sends[peer], cfg.send_faces, cfg.max_comm_tasks
                )
                for gi, mgroup in enumerate(groups):
                    payload = []
                    for t in mgroup:
                        yield from self.charge(self.copy_cost(t.nbytes))
                        payload.append(self.make_face_payload(t, vs))
                    req = yield from self.comm.isend(
                        peer,
                        direction_tag(axis, gi),
                        nbytes=group_nbytes(mgroup),
                        payload=payload,
                    )
                    send_reqs.append(req)

            # 3. Intra-process exchanges while MPI transfers are in flight.
            for t in dplan.local:
                yield from self.charge(self.copy_cost(t.nbytes))
                self.copy_local_face(t, vs)

            # 4. Drain receives with Waitany, unpacking as messages land.
            pending = list(recv_reqs)
            for _ in range(len(pending)):
                idx, req = yield from self.comm.waitany(pending)
                pending[idx] = None
                mgroup = recv_groups[idx]
                planes = req.data if req.data is not None else [None] * len(
                    mgroup
                )
                for t, plane in zip(mgroup, planes):
                    yield from self.charge(self.copy_cost(t.nbytes))
                    self.apply_face_payload(t, plane, vs)

            # 5. Sends must finish before the buffers are reused.
            yield from self.comm.waitall(send_reqs)

    # ------------------------------------------------------------------
    def stencil(self, group):
        cfg = self.cfg
        vs = cfg.group_slice(group)
        nvars = cfg.group_size(group)
        cost = self.stencil_cost(nvars)
        for bid in sorted(self.blocks):
            yield from self.charge(cost)
            self.apply_stencil(bid, vs)
            self.count_stencil_flops(nvars)

    # ------------------------------------------------------------------
    def checksum_local(self):
        cfg = self.cfg
        total = np.zeros(cfg.num_vars, dtype=np.float64)
        blocks = [self.blocks[b] for b in sorted(self.blocks)]
        for group in range(cfg.num_groups):
            vs = cfg.group_slice(group)
            yield from self.charge(
                self.checksum_cost(cfg.group_size(group)) * max(len(blocks), 1)
            )
            total[vs] = local_checksum(blocks, vs)
        return total

    # ------------------------------------------------------------------
    def refine_data_ops(self, plan, split_owner, coarsen_owner):
        nbytes = self.cfg.block_bytes()
        for bid in self.my_splits(split_owner):
            yield from self.charge(self.copy_cost(nbytes))
            self.do_split(bid)
        for parent in self.my_consolidations(coarsen_owner):
            yield from self.charge(self.copy_cost(nbytes))
            self.do_consolidate(parent)

"""The TAMPI+OSS data-flow variant — the paper's contribution.

Every phase is taskified and connected through data dependencies
(Algorithm 3 for communication, Algorithm 4 for the main loop):

* **receive tasks** call ``TAMPI_Irecv`` and declare an *out* dependency on
  their receive-buffer section; they complete (and release unpackers) only
  when the message lands;
* **pack tasks** read a block face (*in* on the block/group handle) and
  write a send-buffer section (*out*);
* **send tasks** call ``TAMPI_Isend`` with a multi-dependency *in* on every
  buffer section of their message; the buffer is reusable when they
  complete;
* **unpack tasks** read the receive buffer and update the block ghosts;
* **intra-process copy tasks** link the two blocks they touch;
* **stencil / checksum / split / consolidate** tasks depend on blocks at
  (block, variable-group) granularity — the paper's deliberate choice
  ("dependencies only consider the mesh blocks and their range of
  variables, not faces").

The ``--separate_buffers`` option namespaces buffer handles per direction,
removing the false dependencies of miniAMR's shared buffer space;
``--send_faces`` + ``--max_comm_tasks`` control communication granularity.
The checksum uses OmpSs-2's taskwait-with-dependencies to validate the
*previous* checksum stage (Section IV-C), avoiding a full barrier.
"""

from __future__ import annotations

import numpy as np

from ... import tampi
from ...amr.comm_plan import direction_tag, group_nbytes, message_groups
from ...verify.witness import READ, WRITE
from ..app import BaseRankProgram


class TampiDataflowProgram(BaseRankProgram):
    """MPI + OmpSs-2 + TAMPI full taskification."""

    name = "tampi_dataflow"

    #: Enable the delayed-checksum optimization (Section IV-C).
    delayed_checksum = True

    def __init__(self, shared, rank, comm, runtime):
        super().__init__(shared, rank, comm, runtime)
        #: Pending delayed checksum: (handles, partials, vslice layout).
        self._pending_checksum = None
        self._csum_seq = 0

    # ------------------------------------------------------------------
    # ``block_handle`` is inherited from BaseRankProgram so the shared
    # data ops report their accesses with the very handles declared here.
    def _buffer_ns(self, axis):
        """Buffer namespace: per-direction iff --separate_buffers."""
        return axis if self.cfg.separate_buffers else 0

    # ------------------------------------------------------------------
    def communicate(self, group):
        cfg = self.cfg
        vs = cfg.group_slice(group)
        plans = self.plans_for_group(group)
        rt = self.rt
        # Cache-locality key: tasks touching the same block chain on a
        # core under the immediate-successor policy (the IPC mechanism the
        # paper identifies in Section V-B).
        boost = self.cost.locality_ipc_boost

        for dplan in plans:
            axis = dplan.axis
            ns = self._buffer_ns(axis)

            # --- Receive tasks (Algorithm 3 line 4) --------------------
            # Unpackers are spawned LAST (lines 19-20): creating them
            # before the pack tasks would make a pack whose source block
            # also receives a ghost depend on this stage's unpack — a
            # cross-rank dependency cycle.
            recv_jobs = []  # (slot, mgroup, rbuf)
            for peer in sorted(dplan.recvs):
                groups = message_groups(
                    dplan.recvs[peer], cfg.send_faces, cfg.max_comm_tasks
                )
                for gi, mgroup in enumerate(groups):
                    rbuf = ("rbuf", ns, peer, gi)
                    slot = {}
                    yield from rt.spawn(
                        f"recv d{axis} p{peer} m{gi}",
                        body=self._recv_body(
                            slot, peer, direction_tag(axis, gi),
                            group_nbytes(mgroup), rbuf,
                        ),
                        outs=[rbuf],
                        phase="recv",
                    )
                    recv_jobs.append((slot, mgroup, rbuf))

            # --- Pack tasks + send tasks (lines 9-12) ------------------
            for peer in sorted(dplan.sends):
                groups = message_groups(
                    dplan.sends[peer], cfg.send_faces, cfg.max_comm_tasks
                )
                for gi, mgroup in enumerate(groups):
                    sections = [
                        ("sbuf", ns, peer, gi, fi)
                        for fi in range(len(mgroup))
                    ]
                    slots = [None] * len(mgroup)
                    for fi, t in enumerate(mgroup):
                        yield from rt.spawn(
                            f"pack d{axis} {t.src.coords}",
                            cost=self.copy_cost(t.nbytes),
                            body=self._pack_body(slots, fi, t, vs, sections[fi]),
                            ins=[self.block_handle(t.src, group)],
                            outs=[sections[fi]],
                            affinity=t.src,
                            locality_factor=boost,
                            phase="pack",
                        )
                    # Multi-dependency on every section of the message.
                    yield from rt.spawn(
                        f"send d{axis} p{peer} m{gi}",
                        body=self._send_body(
                            slots, peer, direction_tag(axis, gi),
                            group_nbytes(mgroup), sections,
                        ),
                        ins=sections,
                        phase="send",
                    )

            # --- Intra-process copies (line 16) ------------------------
            # Ghost fills write disjoint planes of the destination block;
            # with --commutative_ghosts they take a commutative access
            # (mutual exclusion, any order) instead of inout.
            commutative = cfg.commutative_ghosts
            for t in dplan.local:
                dst_handle = self.block_handle(t.dst, group)
                yield from rt.spawn(
                    f"intra d{axis} {t.dst.coords}",
                    cost=self.copy_cost(t.nbytes),
                    body=self._local_copy_body(t, vs),
                    ins=[self.block_handle(t.src, group)],
                    inouts=[] if commutative else [dst_handle],
                    commutatives=[dst_handle] if commutative else [],
                    affinity=t.dst,
                    locality_factor=boost,
                    phase="intra",
                )

            # --- Unpack tasks (lines 19-20) ----------------------------
            for slot, mgroup, rbuf in recv_jobs:
                for fi, t in enumerate(mgroup):
                    dst_handle = self.block_handle(t.dst, group)
                    yield from rt.spawn(
                        f"unpack d{axis} {t.dst.coords}",
                        cost=self.copy_cost(t.nbytes),
                        body=self._unpack_body(slot, fi, t, vs, rbuf),
                        ins=[rbuf],
                        inouts=[] if commutative else [dst_handle],
                        commutatives=[dst_handle] if commutative else [],
                        affinity=t.dst,
                        locality_factor=boost,
                        phase="unpack",
                    )

    # Task bodies ------------------------------------------------------
    # Generator bodies report their touches before the first yield, so
    # the witness's executing-task stack attributes them correctly even
    # though the task later suspends inside TAMPI.
    def _recv_body(self, slot, peer, tag, nbytes, rbuf):
        def body(ctx):
            self.touch(WRITE, rbuf)
            slot["req"] = yield from tampi.irecv(
                ctx, self.comm, peer, tag, nbytes
            )

        return body

    def _send_body(self, slots, peer, tag, nbytes, sections):
        def body(ctx):
            for section in sections:
                self.touch(READ, section)
            yield from tampi.isend(
                ctx, self.comm, peer, tag, nbytes=nbytes, payload=slots
            )

        return body

    def _pack_body(self, slots, fi, transfer, vs, section):
        def run():
            self.touch(WRITE, section)
            slots[fi] = self.make_face_payload(transfer, vs)

        return run

    def _unpack_body(self, slot, fi, transfer, vs, rbuf):
        def run():
            self.touch(READ, rbuf)
            data = slot["req"].data
            plane = data[fi] if data is not None else None
            self.apply_face_payload(transfer, plane, vs)

        return run

    def _local_copy_body(self, transfer, vs):
        def run():
            self.copy_local_face(transfer, vs)

        return run

    # ------------------------------------------------------------------
    def stencil(self, group):
        cfg = self.cfg
        vs = cfg.group_slice(group)
        nvars = cfg.group_size(group)
        cost = self.stencil_cost(nvars)
        boost = self.cost.locality_ipc_boost
        for bid in sorted(self.blocks):
            yield from self.rt.spawn(
                f"stencil {bid.coords}",
                cost=cost,
                body=self._stencil_body(bid, vs),
                inouts=[self.block_handle(bid, group)],
                affinity=bid,
                locality_factor=boost,
                phase="stencil",
            )
            self.count_stencil_flops(nvars)

    def _stencil_body(self, bid, vs):
        def run():
            self.apply_stencil(bid, vs)

        return run

    # ------------------------------------------------------------------
    # Checksum (Section IV-C): task-local reductions + delayed validation
    # ------------------------------------------------------------------
    def checksum(self, stage_index):
        cfg = self.cfg
        self._csum_seq += 1
        seq = self._csum_seq
        partials = []
        handles = []
        for group in range(cfg.num_groups):
            vs = cfg.group_slice(group)
            cost = self.checksum_cost(cfg.group_size(group))
            for bid in sorted(self.blocks):
                handle = ("csum", seq, bid, group)
                handles.append(handle)
                yield from self.rt.spawn(
                    f"checksum {bid.coords}",
                    cost=cost,
                    body=self._csum_body(partials, bid, vs, handle),
                    ins=[self.block_handle(bid, group)],
                    outs=[handle],
                    affinity=bid,
                    locality_factor=self.cost.locality_ipc_boost,
                    phase="checksum",
                )

        current = (handles, partials)
        if self.delayed_checksum:
            # Validate the PREVIOUS checksum stage; the current one keeps
            # executing in the background (taskwait-with-deps).
            if self._pending_checksum is not None:
                yield from self._validate_pending()
            self._pending_checksum = current
        else:
            self._pending_checksum = current
            yield from self._validate_pending()

    def _csum_body(self, partials, bid, vs, handle):
        def run():
            self.touch(WRITE, handle)
            partials.append((bid, vs, self.block_checksum(bid, vs)))

        return run

    def _validate_pending(self):
        handles, partials = self._pending_checksum
        self._pending_checksum = None
        yield from self.rt.taskwait_with_deps(ins=handles)
        total = np.zeros(self.cfg.num_vars, dtype=np.float64)
        # Partials arrive in task-execution order; FP addition is not
        # associative, so sum them in a canonical order to keep checksums
        # bitwise identical under every legal schedule.
        for bid, vs, part in sorted(partials, key=lambda p: (p[0], p[1].start)):
            total[vs] += part
        yield from self.validate_checksum(total)

    def checksum_local(self):  # pragma: no cover - not used by this variant
        raise NotImplementedError

    def finalize(self):
        if self._pending_checksum is not None:
            yield from self._validate_pending()
        yield from super().finalize()

    # ------------------------------------------------------------------
    def join_all(self):
        yield from self.rt.taskwait()

    def refine_control_factor(self) -> float:
        """The taskified refinement removes most serial control work from
        the critical path (the paper measures ~80%)."""
        return self.cost.taskified_refine_factor

    # ------------------------------------------------------------------
    def refine_data_ops(self, plan, split_owner, coarsen_owner):
        cfg = self.cfg
        nbytes = cfg.block_bytes()
        groups = range(cfg.num_groups)
        for bid in self.my_splits(split_owner):
            child_handles = [
                self.block_handle(c, g)
                for c in bid.children()
                for g in groups
            ]
            yield from self.rt.spawn(
                f"split {bid.coords}",
                cost=self.copy_cost(nbytes),
                body=self._split_body(bid),
                ins=[self.block_handle(bid, g) for g in groups],
                outs=child_handles,
                phase="split",
            )
        for parent in self.my_consolidations(coarsen_owner):
            child_handles = [
                self.block_handle(c, g)
                for c in parent.children()
                for g in groups
            ]
            yield from self.rt.spawn(
                f"consolidate {parent.coords}",
                cost=self.copy_cost(nbytes),
                body=self._merge_body(parent),
                ins=child_handles,
                outs=[self.block_handle(parent, g) for g in groups],
                phase="consolidate",
            )

    def _split_body(self, bid):
        def run():
            self.do_split(bid)

        return run

    def _merge_body(self, parent):
        def run():
            self.do_consolidate(parent)

        return run

    # ------------------------------------------------------------------
    # Taskified block transfer (refinement exchange, Section IV-B)
    # ------------------------------------------------------------------
    def transfer_blocks(self, moves, tag_base):
        """Pack/send/recv/unpack as tasks with TAMPI; the main thread only
        coordinates.  Parallelism is closed before returning, as the paper
        does at the end of the exchange."""
        cfg = self.cfg
        rt = self.rt
        groups = range(cfg.num_groups)
        nbytes = cfg.block_bytes()

        for bid, src, dst, idx in moves:
            if dst == self.rank:
                rbuf = ("xrbuf", idx)
                slot = {}
                yield from rt.spawn(
                    f"xrecv {bid.coords}",
                    body=self._recv_body(
                        slot, src, tag_base + idx, nbytes, rbuf
                    ),
                    outs=[rbuf],
                    phase="exchange-recv",
                )
                yield from rt.spawn(
                    f"xunpack {bid.coords}",
                    cost=self.copy_cost(nbytes),
                    body=self._xunpack_body(slot, bid, rbuf),
                    ins=[rbuf],
                    outs=[self.block_handle(bid, g) for g in groups],
                    phase="exchange-unpack",
                )
            elif src == self.rank:
                sbuf = ("xsbuf", idx)
                slot = [None]
                yield from rt.spawn(
                    f"xpack {bid.coords}",
                    cost=self.copy_cost(nbytes),
                    body=self._xpack_body(slot, bid, sbuf),
                    ins=[self.block_handle(bid, g) for g in groups],
                    outs=[sbuf],
                    phase="exchange-pack",
                )
                yield from rt.spawn(
                    f"xsend {bid.coords}",
                    body=self._xsend_body(
                        slot, dst, tag_base + idx, nbytes, sbuf
                    ),
                    ins=[sbuf],
                    phase="exchange-send",
                )
        yield from rt.taskwait()
        # Sent blocks have left this rank.
        for bid, src, dst, _idx in moves:
            if src == self.rank and bid in self.blocks:
                del self.blocks[bid]

    def _xpack_body(self, slot, bid, sbuf):
        def run():
            self.touch_block_all_groups(READ, bid)
            self.touch(WRITE, sbuf)
            block = self.blocks[bid]
            slot[0] = block.data if block.is_real else block.surrogate

        return run

    def _xsend_body(self, slot, dst, tag, nbytes, sbuf):
        def body(ctx):
            self.touch(READ, sbuf)
            yield from tampi.isend(
                ctx, self.comm, dst, tag, nbytes=nbytes, payload=slot[0]
            )

        return body

    def _xunpack_body(self, slot, bid, rbuf):
        def run():
            self.touch(READ, rbuf)
            self.touch_block_all_groups(WRITE, bid)
            self.blocks[bid] = self._block_from_payload(
                bid, slot["req"].data
            )

        return run

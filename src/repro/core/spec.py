"""Serializable run specification — the single source of truth for one run.

A :class:`RunSpec` bundles everything :func:`~repro.core.driver.run_simulation`
needs into one frozen, JSON-round-trippable value: the
:class:`~repro.amr.config.AmrConfig`, the machine (a preset name or an
explicit :class:`~repro.machine.presets.MachineSpec`), the variant, and all
execution options.  Because it serializes deterministically it can be
shipped to worker processes and *fingerprinted* for the content-addressed
result cache of :mod:`repro.exec`:

    key = sha256(canonical JSON of the fully-resolved spec + package version)

"Fully resolved" means preset names are expanded to their full machine
description, ``cost_overrides`` are folded into the cost spec, and the
default ``ranks_per_node`` is materialized — so two specs that describe the
same run share one cache entry regardless of how they were written.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, fields, replace

from ..amr.config import AmrConfig
from ..amr.objects import ObjectSpec, Shape
from ..faults.plan import FaultPlan
from ..machine.costmodel import CostSpec
from ..machine.network import NetworkSpec
from ..machine.presets import MachineSpec, get_preset
from ..machine.topology import NodeSpec
from ..tasking.runtime import SCHEDULERS

#: The three parallelization variants under study (must match
#: :data:`repro.core.driver.VARIANTS`; asserted there).
VARIANT_NAMES = ("mpi_only", "fork_join", "tampi_dataflow")

#: Ranks per node the paper settles on for the hybrid variants (Table I
#: shows 4 ranks/node as the best configuration on 48-core nodes).
DEFAULT_HYBRID_RPN = 4


def resolve_ranks_per_node(variant, machine, ranks_per_node=None) -> int:
    """Default ranks-per-node policy (the paper's chosen configurations).

    MPI-only fills the node (one rank per core); the hybrids use
    :data:`DEFAULT_HYBRID_RPN`.  Every entry point (driver, CLI, sweep
    engine) resolves through here so the default cannot diverge again.
    """
    if ranks_per_node is not None:
        return ranks_per_node
    if variant == "mpi_only":
        return machine.node.cores_per_node
    return DEFAULT_HYBRID_RPN


# ----------------------------------------------------------------------
# Component (de)serialization
# ----------------------------------------------------------------------
def config_to_dict(config: AmrConfig) -> dict:
    """An :class:`AmrConfig` as a JSON-compatible dict."""
    d = asdict(config)
    d["objects"] = [
        {
            "shape": int(o.shape),
            "center": list(o.center),
            "size": list(o.size),
            "move": list(o.move),
            "grow": list(o.grow),
            "bounce": bool(o.bounce),
        }
        for o in config.objects
    ]
    return d


def config_from_dict(data: dict) -> AmrConfig:
    d = dict(data)
    d["objects"] = tuple(
        ObjectSpec(
            shape=Shape(int(o["shape"])),
            center=tuple(o["center"]),
            size=tuple(o["size"]),
            move=tuple(o.get("move", (0.0, 0.0, 0.0))),
            grow=tuple(o.get("grow", (0.0, 0.0, 0.0))),
            bounce=bool(o.get("bounce", False)),
        )
        for o in d.get("objects", ())
    )
    return AmrConfig(**d)


def machine_to_dict(spec: MachineSpec) -> dict:
    """A :class:`MachineSpec` as a JSON-compatible dict."""
    return {
        "name": spec.name,
        "node": asdict(spec.node),
        "network": asdict(spec.network),
        "cost": asdict(spec.cost),
    }


def machine_from_dict(data: dict) -> MachineSpec:
    return MachineSpec(
        node=NodeSpec(**data["node"]),
        network=NetworkSpec(**data["network"]),
        cost=CostSpec(**data["cost"]),
        name=data.get("name", "custom"),
    )


# ----------------------------------------------------------------------
# RunSpec
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunSpec:
    """Everything needed to execute one simulated miniAMR run."""

    #: The miniAMR configuration (rank grid must match the machine).
    config: AmrConfig
    #: Machine: a preset name (see :data:`repro.machine.PRESETS`) or an
    #: explicit :class:`MachineSpec`.
    machine: object = "marenostrum4_scaled"
    variant: str = "tampi_dataflow"
    num_nodes: int = 1
    #: ``None`` = the paper's default (all cores for MPI-only,
    #: :data:`DEFAULT_HYBRID_RPN` for the hybrids).
    ranks_per_node: int = None
    #: Task scheduler for the tasking runtime (one of
    #: :data:`repro.tasking.SCHEDULERS`: "locality", "fifo", or the
    #: seeded schedule-perturbation "fuzz" scheduler).
    scheduler: str = "locality"
    #: Seed of the "fuzz" scheduler's perturbation stream (ignored by the
    #: deterministic schedulers; see :mod:`repro.verify`).
    sched_seed: int = 0
    #: Enable the access-witness race detector: tasks record the handles
    #: they actually touch and the run fails with
    #: :class:`~repro.verify.AccessRaceError` on any touch not covered by
    #: a declared dependency.
    check_access: bool = False
    #: Override the data-flow variant's delayed-checksum optimization.
    delayed_checksum: bool = None
    #: Ablation: force a local join after every stage.
    stage_barrier: bool = False
    #: :class:`~repro.machine.CostSpec` field overrides (for ablations).
    cost_overrides: dict = None
    #: Collect a live :class:`~repro.trace.Tracer` (never cached).
    trace: bool = False
    #: Profile the run: collect a serializable
    #: :class:`~repro.obs.ProfileReport` (metrics, critical path, idle-gap
    #: taxonomy) attached to the result.  Off by default; the default is
    #: omitted from :meth:`to_dict` so fingerprints and goldens of
    #: unprofiled runs are unchanged by this field's existence.
    profile: bool = False
    #: Bound the tracer's memory: keep at most this many events (ring
    #: buffer; evictions counted in ``Tracer.dropped_events``).  ``None``
    #: (the default, omitted from :meth:`to_dict`) keeps everything.
    trace_max_events: int = None
    #: Deterministic fault injection: a :class:`~repro.faults.FaultPlan`
    #: (or ``None`` = clean run).  Omitted from :meth:`to_dict` when
    #: ``None``, and :meth:`resolve` normalizes *inactive* plans to
    #: ``None``, so fault-off fingerprints, cache keys, and goldens are
    #: byte-identical to pre-faults specs.
    faults: FaultPlan = None
    #: Conservative-PDES worker processes (:mod:`repro.simx.parallel`):
    #: partition the simulated ranks across this many OS processes, each
    #: running its own event kernel, synchronized in lookahead windows.
    #: ``1`` (the default, omitted from :meth:`to_dict` so pre-existing
    #: fingerprints/goldens/cache keys are byte-identical) runs the
    #: classic single-process kernel.  Results are bitwise identical
    #: either way — the differential suite in
    #: ``tests/test_pdes_equivalence.py`` enforces it.
    pdes_workers: int = 1
    #: Rank→worker partition policy: ``"node"`` (default when ``None``)
    #: keeps whole nodes on one worker (falling back to a contiguous rank
    #: split when there are fewer nodes than workers) so the lookahead is
    #: the inter-node latency; ``"contiguous"`` splits the rank range
    #: evenly regardless of node boundaries.  Omitted from
    #: :meth:`to_dict` when ``None``.
    pdes_partition: str = None

    def __post_init__(self):
        if not isinstance(self.config, AmrConfig):
            raise TypeError(f"config must be an AmrConfig, got {self.config!r}")
        if not isinstance(self.machine, (str, MachineSpec)):
            raise TypeError(
                "machine must be a preset name or a MachineSpec, got "
                f"{self.machine!r}"
            )
        if self.variant not in VARIANT_NAMES:
            raise ValueError(
                f"unknown variant {self.variant!r}; choose from "
                f"{sorted(VARIANT_NAMES)}"
            )
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if self.ranks_per_node is not None and self.ranks_per_node < 1:
            raise ValueError("ranks_per_node must be >= 1")
        if self.scheduler not in SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {self.scheduler!r}; choose from "
                f"{sorted(SCHEDULERS)}"
            )
        if not isinstance(self.sched_seed, int) or self.sched_seed < 0:
            raise ValueError("sched_seed must be a non-negative int")
        if self.cost_overrides is not None:
            bad = set(self.cost_overrides) - {
                f.name for f in fields(CostSpec)
            }
            if bad:
                raise ValueError(f"unknown cost_overrides: {sorted(bad)}")
        if self.trace_max_events is not None and (
            not isinstance(self.trace_max_events, int)
            or self.trace_max_events < 1
        ):
            raise ValueError("trace_max_events must be a positive int")
        if self.faults is not None and not isinstance(self.faults, FaultPlan):
            raise TypeError(
                f"faults must be a FaultPlan or None, got {self.faults!r}"
            )
        if not isinstance(self.pdes_workers, int) or self.pdes_workers < 1:
            raise ValueError("pdes_workers must be an int >= 1")
        if self.pdes_partition not in (None, "node", "contiguous"):
            raise ValueError(
                f"unknown pdes_partition {self.pdes_partition!r}; choose "
                "'node' or 'contiguous'"
            )

    # ------------------------------------------------------------------
    def machine_spec(self) -> MachineSpec:
        """The machine with preset resolved and cost overrides applied."""
        spec = (
            get_preset(self.machine)()
            if isinstance(self.machine, str)
            else self.machine
        )
        if self.cost_overrides:
            spec = MachineSpec(
                node=spec.node,
                network=spec.network,
                cost=spec.cost.with_overrides(**self.cost_overrides),
                name=spec.name,
            )
        return spec

    def resolve(self) -> "RunSpec":
        """A fully-resolved copy: explicit machine, defaults materialized.

        Idempotent; resolution is what fingerprints and executions use, so
        equivalent specs (preset name vs expanded spec, implicit vs
        explicit default ranks-per-node) behave identically.
        """
        machine = self.machine_spec()
        rpn = resolve_ranks_per_node(
            self.variant, machine, self.ranks_per_node
        )
        return replace(
            self,
            machine=machine,
            ranks_per_node=rpn,
            cost_overrides=None,
            faults=(
                self.faults
                if self.faults is not None and self.faults.is_active()
                else None
            ),
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-compatible dict (inverse of :meth:`from_dict`).

        Fields added after the golden store was seeded (``profile``,
        ``trace_max_events``, ``faults``) are emitted only at non-default
        values, so
        the canonical JSON — and therefore every fingerprint and golden
        key — of a pre-existing spec is byte-identical.
        """
        d = {
            "config": config_to_dict(self.config),
            "machine": (
                self.machine
                if isinstance(self.machine, str)
                else machine_to_dict(self.machine)
            ),
            "variant": self.variant,
            "num_nodes": self.num_nodes,
            "ranks_per_node": self.ranks_per_node,
            "scheduler": self.scheduler,
            "sched_seed": self.sched_seed,
            "check_access": self.check_access,
            "delayed_checksum": self.delayed_checksum,
            "stage_barrier": self.stage_barrier,
            "cost_overrides": (
                dict(self.cost_overrides) if self.cost_overrides else None
            ),
            "trace": self.trace,
        }
        if self.profile:
            d["profile"] = True
        if self.trace_max_events is not None:
            d["trace_max_events"] = self.trace_max_events
        if self.faults is not None:
            d["faults"] = self.faults.to_dict()
        if self.pdes_workers != 1:
            d["pdes_workers"] = self.pdes_workers
        if self.pdes_partition is not None:
            d["pdes_partition"] = self.pdes_partition
        return d

    @classmethod
    def from_dict(cls, data: dict) -> "RunSpec":
        machine = data["machine"]
        if not isinstance(machine, str):
            machine = machine_from_dict(machine)
        return cls(
            config=config_from_dict(data["config"]),
            machine=machine,
            variant=data.get("variant", "tampi_dataflow"),
            num_nodes=data.get("num_nodes", 1),
            ranks_per_node=data.get("ranks_per_node"),
            scheduler=data.get("scheduler", "locality"),
            sched_seed=data.get("sched_seed", 0),
            check_access=data.get("check_access", False),
            delayed_checksum=data.get("delayed_checksum"),
            stage_barrier=data.get("stage_barrier", False),
            cost_overrides=data.get("cost_overrides"),
            trace=data.get("trace", False),
            profile=data.get("profile", False),
            trace_max_events=data.get("trace_max_events"),
            faults=(
                FaultPlan.from_dict(data["faults"])
                if data.get("faults") is not None
                else None
            ),
            pdes_workers=data.get("pdes_workers", 1),
            pdes_partition=data.get("pdes_partition"),
        )

    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Deterministic content key of this run.

        The sha256 of the canonical JSON of the fully-resolved spec plus
        the package version: any change to any field (or to the package)
        produces a new key; equivalent ways of writing the same run
        produce the same one.
        """
        from .. import __version__

        payload = {
            "version": __version__,
            "spec": self.resolve().to_dict(),
        }
        blob = json.dumps(
            payload, sort_keys=True, separators=(",", ":"), allow_nan=False
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

"""Shared machinery of the three miniAMR parallelization variants.

:class:`SharedState` holds the per-simulation replicated metadata (mesh
structure, plan boards, FLOP counter); :class:`BaseRankProgram` implements
the variant-independent skeleton of Algorithm 1 — the main loop, refinement
coordination, the ACK-based block exchange, checksum validation — and
declares the hooks (communicate / stencil / checksum reduction / data ops)
each variant overrides.
"""

from __future__ import annotations

import numpy as np

from ..amr.balance import PARTITIONERS, plan_moves
from ..amr.block import (
    Block,
    consolidate_blocks,
    prolong_plane,
    restrict_plane,
    split_block,
)
from ..amr.checksum import validate
from ..amr.comm_plan import EXCHANGE_TAG_BASE, build_all_rank_plans
from ..amr.ids import HI, LO
from ..amr.mesh import MeshStructure, PlanBoard, apply_plan, plan_refinement
from ..amr.objects import MovingObject
from ..verify.witness import READ, WRITE

#: Tag offsets inside the exchange tag space.
_ACK_TAG = EXCHANGE_TAG_BASE
_DATA_TAG = EXCHANGE_TAG_BASE + (1 << 17)
_COARSEN_TAG = EXCHANGE_TAG_BASE + (2 << 17)


class SharedState:
    """Replicated simulation metadata shared by every rank program.

    The mesh *structure* is replicated (a documented substitution — see
    DESIGN.md); block *data* lives only in the per-rank programs and moves
    exclusively through simulated messages.
    """

    def __init__(self, config, machine, spec, world, tracer=None):
        self.config = config
        self.machine = machine
        self.spec = spec
        self.world = world
        self.tracer = tracer
        self.structure = MeshStructure(config)
        self.board = PlanBoard(config.num_ranks)
        #: Total stencil FLOPs executed (all ranks).
        self.flops = 0.0
        #: Global checksums in validation order (shared by construction —
        #: every rank computes the same values).
        self.checksum_log = []

    def commplans(self, epoch, nvars):
        """Per-rank direction plans for the current mesh (computed once)."""
        return self.board.get(
            ("commplan", epoch, nvars),
            lambda: build_all_rank_plans(self.structure, self.config, nvars),
        )


class BaseRankProgram:
    """One rank's program: state + the variant-independent control flow."""

    #: Variant identifier (overridden).
    name = "base"

    def __init__(self, shared: SharedState, rank: int, comm, runtime):
        self.shared = shared
        self.cfg = shared.config
        self.rank = rank
        self.comm = comm
        self.rt = runtime
        self.env = comm.env
        self.cost = shared.spec.cost
        self.numa = shared.machine.placement(rank).spans_numa
        self.tracer = shared.tracer

        self.blocks = {}
        for bid in shared.structure.blocks_of_rank(rank):
            self.blocks[bid] = Block.initial(bid, self.cfg)

        #: (vslice.start, vslice.stop) -> variable-group index, used by the
        #: access-witness instrumentation to name the touched handle.
        self._group_of_slice = {}
        for g in range(self.cfg.num_groups):
            s = self.cfg.group_slice(g)
            self._group_of_slice[(s.start, s.stop)] = g

        #: Per-rank copies of the moving objects (advanced identically on
        #: every rank, like miniAMR's replicated object state).
        self.objects = [MovingObject(spec) for spec in self.cfg.objects]
        self.prev_checksum = None
        self.epoch = 0
        self._plan_cache = {}
        #: Simulated seconds this rank spent inside refinement phases.
        self.refine_seconds = 0.0
        #: Ablation: join all local work after every stage (destroys the
        #: cross-stage overlap the data-flow model provides).
        self.stage_barrier = False

    # ------------------------------------------------------------------
    # Cost helpers
    # ------------------------------------------------------------------
    def charge(self, seconds):
        """Consume CPU time on the calling thread (with system noise)."""
        if seconds > 0:
            t0 = self.env.now
            yield self.env.timeout(self.rt.noise.stretch(seconds))
            profiler = self.rt.profiler
            if profiler is not None:
                profiler.inline_busy(self.rank, t0, self.env.now)

    def stencil_cost(self, nvars) -> float:
        return self.cost.stencil_time(
            self.cfg.cells_per_block,
            nvars,
            numa=self.numa,
            flops_per_cell=float(self.cfg.stencil),
        )

    def copy_cost(self, nbytes) -> float:
        return self.cost.copy_time(nbytes, numa=self.numa)

    def checksum_cost(self, nvars) -> float:
        nbytes = self.cfg.cells_per_block * nvars * 8
        return self.cost.checksum_time(nbytes, numa=self.numa)

    def count_stencil_flops(self, nvars):
        self.shared.flops += self.cost.stencil_flops(
            self.cfg.cells_per_block, nvars, float(self.cfg.stencil)
        )

    # ------------------------------------------------------------------
    # Dependency handles & access-witness instrumentation
    # ------------------------------------------------------------------
    def block_handle(self, bid, group):
        """The dependency handle of (mesh block, variable group).

        Defined here (not only in the data-flow variant) so the shared
        data ops below can report their actual accesses to the access
        witness using the same handles the task graph declares.
        """
        return ("blk", bid, group)

    def touch_block(self, kind, bid, vslice):
        """Report an actual (block, variable-group) access to the witness."""
        w = self.rt.witness
        if w is not None:
            group = self._group_of_slice[(vslice.start, vslice.stop)]
            w.touch(kind, self.block_handle(bid, group))

    def touch_block_all_groups(self, kind, bid):
        """Report an access spanning every variable group of a block."""
        w = self.rt.witness
        if w is not None:
            for g in range(self.cfg.num_groups):
                w.touch(kind, self.block_handle(bid, g))

    def touch(self, kind, handle):
        """Report an actual access to an arbitrary handle (e.g. a comm
        buffer section) to the witness."""
        w = self.rt.witness
        if w is not None:
            w.touch(kind, handle)

    # ------------------------------------------------------------------
    # Plans
    # ------------------------------------------------------------------
    def plans_for_group(self, group):
        """This rank's three DirectionPlans for a variable group."""
        nvars = self.cfg.group_size(group)
        key = (self.epoch, nvars)
        plans = self._plan_cache.get(key)
        if plans is None:
            all_plans = self.shared.commplans(self.epoch, nvars)
            plans = all_plans[self.rank]
            self._plan_cache = {key: plans}
        return plans

    # ------------------------------------------------------------------
    # Face payload helpers (real mode; synthetic returns None)
    # ------------------------------------------------------------------
    def make_face_payload(self, transfer, vslice):
        """Extract (and restrict if needed) the source face of a transfer."""
        self.touch_block(READ, transfer.src, vslice)
        src = self.blocks[transfer.src]
        if not src.is_real:
            return None
        src_side = LO if transfer.side == HI else HI
        if transfer.rel == "same":
            return src.extract_face(transfer.axis, src_side, vslice)
        if transfer.rel == "finer":
            plane = src.extract_face(transfer.axis, src_side, vslice)
            return restrict_plane(plane)
        # src coarser: send the destination's quadrant of our face
        return src.extract_face_quadrant(
            transfer.axis, src_side, vslice, transfer.quadrant
        )

    def apply_face_payload(self, transfer, plane, vslice):
        """Write a received (or locally copied) face into the dst ghosts."""
        # Touched even when synthetic payloads skip the array write: the
        # algorithm's access pattern is the same, so the witness stays
        # useful in synthetic mode.
        self.touch_block(WRITE, transfer.dst, vslice)
        dst = self.blocks[transfer.dst]
        if not dst.is_real or plane is None:
            return
        if transfer.rel == "same":
            dst.insert_ghost(transfer.axis, transfer.side, vslice, plane)
        elif transfer.rel == "finer":
            dst.insert_ghost_quadrant(
                transfer.axis, transfer.side, vslice, transfer.quadrant, plane
            )
        else:  # coarser source: prolong the quadrant to a full fine plane
            dst.insert_ghost(
                transfer.axis, transfer.side, vslice, prolong_plane(plane)
            )

    def copy_local_face(self, transfer, vslice):
        """Intra-rank ghost copy (both blocks owned by this rank)."""
        plane = self.make_face_payload(transfer, vslice)
        self.apply_face_payload(transfer, plane, vslice)

    # ------------------------------------------------------------------
    # Main loop (Algorithm 1 / Algorithm 4)
    # ------------------------------------------------------------------
    def run(self):
        """The rank's program (a simulation process generator)."""
        cfg = self.cfg
        self.rt.timestep = "init"
        yield from self.initial_refinement()
        stage_index = 0
        for ts in range(cfg.num_tsteps):
            self.rt.timestep = ts
            if self.tracer:
                self.tracer.phase_begin(self.rank, "timestep", self.env.now)
            for _stage in range(cfg.stages_per_ts):
                for group in range(cfg.num_groups):
                    yield from self.communicate(group)
                    yield from self.stencil(group)
                stage_index += 1
                if self.stage_barrier:
                    yield from self.join_all()
                if cfg.checksum_freq and stage_index % cfg.checksum_freq == 0:
                    yield from self.checksum(stage_index)
            if self.tracer:
                self.tracer.phase_end(self.rank, "timestep", self.env.now)
            last = ts + 1 == cfg.num_tsteps
            if cfg.refine_freq and (ts + 1) % cfg.refine_freq == 0 and not last:
                yield from self.refinement_phase(move_objects=True)
        yield from self.finalize()

    def initial_refinement(self):
        """Refine until the objects are resolved (before the main loop)."""
        for _ in range(self.cfg.max_refine_level):
            changed = yield from self.refinement_phase(move_objects=False)
            if not changed:
                break

    def finalize(self):
        """Drain outstanding work and synchronize before exiting."""
        yield from self.join_all()
        yield from self.comm.barrier()

    # ------------------------------------------------------------------
    # Refinement & load balancing (Section IV-B)
    # ------------------------------------------------------------------
    def refinement_phase(self, move_objects):
        """One refinement stage; returns True if the mesh changed."""
        cfg = self.cfg
        yield from self.join_all()  # explicit barrier before refinement
        t_enter = self.env.now
        if self.tracer:
            self.tracer.phase_begin(self.rank, "refine", self.env.now)

        # Global synchronization: nobody may still be using the old
        # structure when the shared plan mutates it (miniAMR performs
        # collectives here too — the dense areas in Fig 1).
        yield from self.comm.allreduce(len(self.blocks))

        if move_objects:
            for obj in self.objects:
                obj.advance(cfg.refine_freq)

        self.epoch += 1
        nblocks_before = len(self.blocks)
        bundle = self.shared.board.get(
            ("refine", self.epoch), self._compute_refine_bundle
        )
        plan, split_owner, coarsen_owner, coarsen_moves = bundle

        # Serial control work: marking, connectivity surgery.  This is the
        # poorly-parallelizable part every variant pays on its main thread;
        # MPI-only amortizes it over many more ranks (paper Section IV-B).
        my_changes = sum(
            1 for b, r in split_owner.items() if r == self.rank
        ) + sum(
            1
            for p, info in coarsen_owner.items()
            if info["rank"] == self.rank
        )
        control = (
            self.cost.refine_control_per_block * nblocks_before
            + self.cost.refine_change_overhead * my_changes
        )
        control *= self.refine_control_factor()
        yield from self.charge(control)

        # Move coarsen children to their designated consolidator rank.
        yield from self.transfer_blocks(coarsen_moves, _COARSEN_TAG)

        # Split / consolidate payloads (variant-specific parallelism).
        yield from self.refine_data_ops(plan, split_owner, coarsen_owner)
        yield from self.join_all()

        # Load balancing over the post-refinement mesh.
        balance_moves = self.shared.board.get(
            ("balance", self.epoch), self._compute_balance_moves
        )
        yield from self.exchange_blocks(balance_moves)

        self._plan_cache = {}
        self.refine_seconds += self.env.now - t_enter
        if self.tracer:
            self.tracer.phase_end(self.rank, "refine", self.env.now)
        return not plan.is_empty or bool(balance_moves)

    def refine_control_factor(self) -> float:
        """Fraction of serial refinement control work this variant pays."""
        return 1.0

    def _compute_refine_bundle(self):
        structure = self.shared.structure
        plan = plan_refinement(
            structure, self.objects, uniform=self.cfg.uniform_refine
        )
        split_owner, coarsen_owner = apply_plan(structure, plan)
        # Children that must travel to their consolidator, with stable
        # indices for tagging: (bid, src, dst, index).
        moves = []
        for parent in sorted(coarsen_owner):
            info = coarsen_owner[parent]
            for child, owner in sorted(info["child_owners"].items()):
                if owner != info["rank"]:
                    moves.append((child, owner, info["rank"]))
        coarsen_moves = [
            (bid, src, dst, i) for i, (bid, src, dst) in enumerate(moves)
        ]
        return plan, split_owner, coarsen_owner, coarsen_moves

    def _compute_balance_moves(self):
        structure = self.shared.structure
        partitioner = PARTITIONERS[self.cfg.lb_method]
        target = partitioner(structure, self.cfg.num_ranks)
        moveplan = plan_moves(structure, target)
        moves = [
            (bid, src, dst, i)
            for i, (bid, (src, dst)) in enumerate(sorted(moveplan.moves.items()))
        ]
        # Apply the new ownership to the shared structure now; the data
        # follows through the exchange protocol below.
        for bid, _src, dst, _i in moves:
            structure.set_owner(bid, dst)
        return moves

    # ------------------------------------------------------------------
    # Block transfer (plain, used for coarsen-child moves)
    # ------------------------------------------------------------------
    def transfer_blocks(self, moves, tag_base):
        """Ship whole blocks between ranks (serial baseline implementation;
        the data-flow variant overrides this with tasks + TAMPI)."""
        incoming = [
            (bid, src, idx) for bid, src, dst, idx in moves if dst == self.rank
        ]
        outgoing = [
            (bid, dst, idx) for bid, src, dst, idx in moves if src == self.rank
        ]
        nbytes = self.cfg.block_bytes()

        recv_reqs = []
        for bid, src, idx in incoming:
            req = yield from self.comm.irecv(src, tag_base + idx, nbytes)
            recv_reqs.append((bid, req))

        send_reqs = []
        for bid, dst, idx in outgoing:
            block = self.blocks[bid]
            yield from self.charge(self.copy_cost(nbytes))  # pack
            payload = block.data if block.is_real else block.surrogate
            req = yield from self.comm.isend(
                dst, tag_base + idx, nbytes=nbytes, payload=payload
            )
            send_reqs.append((bid, req))

        for bid, req in recv_reqs:
            yield req.event
            yield from self.charge(self.copy_cost(nbytes))  # unpack
            self.blocks[bid] = self._block_from_payload(bid, req.data)

        yield from self.comm.waitall([r for _b, r in send_reqs])
        for bid, _req in send_reqs:
            del self.blocks[bid]

    def _block_from_payload(self, bid, payload):
        if self.cfg.payload == "synthetic":
            return Block(bid, surrogate=np.asarray(payload, dtype=np.float64))
        return Block(bid, data=payload)

    # ------------------------------------------------------------------
    # Load-balance exchange (ACK protocol, Section IV-B)
    # ------------------------------------------------------------------
    def exchange_blocks(self, moves):
        """Multi-round ACK-gated block exchange.

        Receivers acknowledge each pending incoming block (positively while
        they have capacity); senders ship acknowledged blocks; a global
        reduction decides whether another round is needed (the paper:
        "the exchange function may return with blocks pending ... so a
        subsequent call is required").
        """
        cfg = self.cfg
        pending_in = [
            (bid, src, idx) for bid, src, dst, idx in moves if dst == self.rank
        ]
        pending_out = [
            (bid, dst, idx) for bid, src, dst, idx in moves if src == self.rank
        ]
        nbytes = cfg.block_bytes()
        rounds = 0

        while True:
            rounds += 1
            accepted_in, deferred_in = self._acceptance(pending_in)

            # Control messages: ACKs are plain (non-task) MPI, as in the
            # paper ("standard blocking MPI operations for control
            # messages, sequentially issued by the main thread").
            ack_sends = []
            for bid, src, idx in pending_in:
                ok = (bid, src, idx) in accepted_in
                req = yield from self.comm.isend(
                    src, _ACK_TAG + idx, nbytes=8, payload=ok
                )
                ack_sends.append(req)

            granted_out = []
            for bid, dst, idx in pending_out:
                req = yield from self.comm.recv(dst, _ACK_TAG + idx, nbytes=8)
                if req.data:
                    granted_out.append((bid, dst, idx))
            yield from self.comm.waitall(ack_sends)

            # Data movement (variant hook: tasks + TAMPI in the data-flow
            # port, serial pack/send here).
            yield from self.exchange_data(granted_out, accepted_in, _DATA_TAG)

            pending_out = [m for m in pending_out if m not in granted_out]
            pending_in = deferred_in
            remaining = yield from self.comm.allreduce(
                len(pending_out) + len(pending_in)
            )
            if remaining == 0:
                break
        return rounds

    def _acceptance(self, pending_in):
        """Split pending incoming moves into (accepted, deferred)."""
        cap = self.cfg.max_blocks_per_rank
        if cap <= 0:
            return list(pending_in), []
        room = max(cap - len(self.blocks), 0)
        accepted = list(pending_in[:room])
        deferred = list(pending_in[room:])
        return accepted, deferred

    def exchange_data(self, granted_out, accepted_in, tag_base):
        """Ship granted blocks (serial baseline; overridden by TAMPI+OSS)."""
        moves = [
            (bid, self.rank, dst, idx) for bid, dst, idx in granted_out
        ] + [(bid, src, self.rank, idx) for bid, src, idx in accepted_in]
        yield from self.transfer_blocks(moves, tag_base)

    # ------------------------------------------------------------------
    # Checksums (Section IV-C)
    # ------------------------------------------------------------------
    def checksum(self, stage_index):
        """Strict checksum: local reduce, join, global reduce, validate."""
        local = yield from self.checksum_local()
        yield from self.join_all()
        yield from self.validate_checksum(local)

    def validate_checksum(self, local_total):
        total = yield from self.comm.allreduce(
            local_total, nbytes=local_total.nbytes
        )
        drift = validate(
            self.prev_checksum, total, self.cfg.checksum_tolerance
        )
        self.prev_checksum = total
        if self.rank == 0:
            self.shared.checksum_log.append((self.env.now, total, drift))
        return total

    # ------------------------------------------------------------------
    # Variant hooks
    # ------------------------------------------------------------------
    def communicate(self, group):  # pragma: no cover - abstract
        raise NotImplementedError

    def stencil(self, group):  # pragma: no cover - abstract
        raise NotImplementedError

    def checksum_local(self):  # pragma: no cover - abstract
        raise NotImplementedError

    def refine_data_ops(self, plan, split_owner, coarsen_owner):
        raise NotImplementedError  # pragma: no cover - abstract

    def join_all(self):
        """Wait for all outstanding local parallel work (no-op when the
        variant has none)."""
        return
        yield  # pragma: no cover - makes this a generator

    # ------------------------------------------------------------------
    # Shared payload ops used by the variants' data stages
    # ------------------------------------------------------------------
    def do_split(self, bid):
        """Split one owned block into its 8 children (payload op)."""
        self.touch_block_all_groups(READ, bid)
        block = self.blocks.pop(bid)
        self.blocks.update(split_block(block, self.cfg))
        for child in bid.children():
            self.touch_block_all_groups(WRITE, child)

    def do_consolidate(self, parent):
        """Consolidate 8 owned children into their parent (payload op)."""
        children = {}
        for cid in parent.children():
            self.touch_block_all_groups(READ, cid)
            children[cid] = self.blocks.pop(cid)
        self.touch_block_all_groups(WRITE, parent)
        self.blocks[parent] = consolidate_blocks(parent, children, self.cfg)

    def block_checksum(self, bid, vslice):
        """Checksum one block's variable group (a witnessed read)."""
        self.touch_block(READ, bid, vslice)
        return self.blocks[bid].checksum(vslice)

    def apply_stencil(self, bid, vslice):
        """Functional stencil on one block (real mode; no-op otherwise)."""
        self.touch_block(READ, bid, vslice)
        self.touch_block(WRITE, bid, vslice)
        block = self.blocks[bid]
        if block.is_real:
            block.fill_boundary_ghosts(
                vslice, self.shared.structure.open_faces(bid)
            )
            block.apply_stencil_kind(vslice, self.cfg.stencil)

    def my_splits(self, split_owner):
        return sorted(b for b, r in split_owner.items() if r == self.rank)

    def my_consolidations(self, coarsen_owner):
        return sorted(
            p for p, info in coarsen_owner.items()
            if info["rank"] == self.rank
        )

"""``repro.core`` — the paper's contribution: the data-flow port + driver.

The three variants (MPI-only, MPI+OMP fork-join, TAMPI+OmpSs-2 data-flow)
run the same miniAMR workload on the simulated cluster;
:func:`run_simulation` executes one :class:`RunSpec` (or the legacy
``(config, machine_spec, **options)`` form) and returns a serializable
:class:`RunResult` with the metrics the paper reports (total / refinement
time, GFLOPS throughput, checksums, communication and runtime statistics).
"""

from .app import BaseRankProgram, SharedState
from .driver import VARIANTS, execute, run_simulation
from .results import CommStats, RunResult, RuntimeStats
from .spec import (
    DEFAULT_HYBRID_RPN,
    VARIANT_NAMES,
    RunSpec,
    resolve_ranks_per_node,
)
from .variants import ForkJoinProgram, MpiOnlyProgram, TampiDataflowProgram

__all__ = [
    "BaseRankProgram",
    "CommStats",
    "DEFAULT_HYBRID_RPN",
    "ForkJoinProgram",
    "MpiOnlyProgram",
    "RunResult",
    "RunSpec",
    "RuntimeStats",
    "SharedState",
    "TampiDataflowProgram",
    "VARIANTS",
    "VARIANT_NAMES",
    "execute",
    "resolve_ranks_per_node",
    "run_simulation",
]

"""``repro.core`` — the paper's contribution: the data-flow port + driver.

The three variants (MPI-only, MPI+OMP fork-join, TAMPI+OmpSs-2 data-flow)
run the same miniAMR workload on the simulated cluster;
:func:`run_simulation` executes one configuration and returns the metrics
the paper reports (total / refinement time, GFLOPS throughput, checksums).
"""

from .app import BaseRankProgram, SharedState
from .driver import VARIANTS, RunResult, run_simulation
from .variants import ForkJoinProgram, MpiOnlyProgram, TampiDataflowProgram

__all__ = [
    "BaseRankProgram",
    "ForkJoinProgram",
    "MpiOnlyProgram",
    "RunResult",
    "SharedState",
    "TampiDataflowProgram",
    "VARIANTS",
    "run_simulation",
]

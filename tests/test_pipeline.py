"""Pipelines: spec validation, DAG scheduling, deps flow, caching."""

import json
import random
import time

import pytest

from repro import AmrConfig, RunSpec, sphere
from repro.exec import ResultCache, SweepEngine, SweepError, run_spec_dict
from repro.pipeline import (
    JobGraph,
    JobNode,
    PipelineNode,
    PipelineSpec,
    get_generator,
    register_generator,
    run_pipeline,
)


def small_config(num_ranks=2, **overrides):
    kwargs = dict(
        npx=num_ranks, npy=1, npz=1, init_x=1, init_y=2, init_z=2,
        nx=4, ny=4, nz=4, num_vars=2, num_tsteps=1, stages_per_ts=2,
        refine_freq=1, checksum_freq=2, max_refine_level=1,
        payload="synthetic",
        objects=(sphere(center=(0.3, 0.3, 0.3), radius=0.25),),
    )
    kwargs.update(overrides)
    return AmrConfig(**kwargs)


def small_spec(**overrides):
    kwargs = dict(
        config=small_config(), machine="laptop", variant="tampi_dataflow",
        num_nodes=1, ranks_per_node=2,
    )
    kwargs.update(overrides)
    return RunSpec(**kwargs)


# ----------------------------------------------------------------------
# Test generators (module level: registered once, picklable by name)
# ----------------------------------------------------------------------
@register_generator("test.echo_spec")
def _echo_spec(params, deps):
    """Build the canonical small RunSpec, varied by ``sched_seed``."""
    return small_spec(sched_seed=int(params.get("sched_seed", 0)))


@register_generator("test.spec_from_dep")
def _spec_from_dep(params, deps):
    """A downstream run sized from its predecessor's *measured* result."""
    base = deps[params["dep"]]
    # The dependency's result must be a real RunResult by the time the
    # builder runs; fold a derived quantity into the new spec.
    seed = int(base.num_blocks % 7)
    return small_spec(scheduler="fuzz", sched_seed=seed)


@register_generator("test.join_stats")
def _join_stats(params, deps):
    """Analysis node: reduce every predecessor to plain JSON."""
    return {
        name: {"blocks": deps[name].num_blocks,
               "total_time": deps[name].total_time}
        for name in sorted(deps)
    }


@register_generator("test.boom")
def _boom(params, deps):
    raise RuntimeError("builder exploded")


# ----------------------------------------------------------------------
# PipelineSpec validation and round trips
# ----------------------------------------------------------------------
def test_node_requires_exactly_one_of_run_or_generator():
    with pytest.raises(ValueError, match="exactly one"):
        PipelineNode("n")
    with pytest.raises(ValueError, match="exactly one"):
        PipelineNode("n", run=small_spec(), generator="test.echo_spec")


def test_params_only_allowed_on_generator_nodes():
    with pytest.raises(ValueError, match="params"):
        PipelineNode("n", run=small_spec(), params={"x": 1})


def test_self_dependency_rejected():
    with pytest.raises(ValueError, match="itself"):
        PipelineNode("n", run=small_spec(), after=("n",))


def test_duplicate_node_names_rejected():
    with pytest.raises(ValueError, match="duplicate"):
        PipelineSpec(name="p", nodes=(
            PipelineNode("a", run=small_spec()),
            PipelineNode("a", run=small_spec()),
        ))


def test_unknown_dependency_rejected():
    with pytest.raises(ValueError, match="ghost"):
        PipelineSpec(name="p", nodes=(
            PipelineNode("a", run=small_spec(), after=("ghost",)),
        ))


def test_cycle_rejected_naming_the_stuck_nodes():
    with pytest.raises(ValueError) as exc:
        PipelineSpec(name="p", nodes=(
            PipelineNode("a", run=small_spec(), after=("b",)),
            PipelineNode("b", run=small_spec(), after=("a",)),
        ))
    assert "a" in str(exc.value) and "b" in str(exc.value)


def test_pipeline_json_round_trip():
    spec = PipelineSpec(name="diamond", nodes=(
        PipelineNode("root", run=small_spec()),
        PipelineNode("left", generator="test.echo_spec",
                     params={"sched_seed": 1}, after=("root",)),
        PipelineNode("right", generator="test.echo_spec",
                     params={"sched_seed": 2}, after=("root",)),
        PipelineNode("join", generator="test.join_stats",
                     after=("left", "right")),
    ))
    again = PipelineSpec.from_json(spec.to_json())
    assert again == spec
    assert json.loads(spec.to_json())["pipeline"] == "diamond"


def test_unknown_generator_error_lists_registered_names():
    with pytest.raises(KeyError, match="test.echo_spec"):
        get_generator("no.such.generator")


# ----------------------------------------------------------------------
# Graph mechanics: priorities and virtual-time scheduling
# ----------------------------------------------------------------------
def synthetic_graph(nodes, edges, name="synthetic"):
    preds = [[] for _ in range(nodes)]
    for a, b in edges:
        preds[b].append(a)
    return JobGraph(
        [JobNode(index=i, name=f"n{i}", label=f"n{i}") for i in range(nodes)],
        preds, name=name,
    )


def test_critical_path_priorities_are_downward_ranks():
    g = synthetic_graph(3, [(0, 1), (1, 2)])
    assert g.critical_path_priorities([1.0, 2.0, 4.0]) == [7.0, 6.0, 4.0]


def test_critical_path_first_beats_fifo_on_a_crafted_dag():
    # Four cheap independents (low indices: FIFO starts them first) plus
    # a 4-3-2 chain.  On two workers FIFO delays the chain behind the
    # cheap work; critical-path-first starts the chain immediately.
    g = synthetic_graph(7, [(4, 5), (5, 6)])
    costs = [1.0, 1.0, 1.0, 1.0, 4.0, 3.0, 2.0]
    cp = g.simulate_makespan(costs, workers=2, policy="critical_path")
    fifo = g.simulate_makespan(costs, workers=2, policy="fifo")
    assert cp == 9.0
    assert fifo == 11.0


def test_critical_path_beats_fifo_across_seeded_random_dags():
    """List scheduling is a heuristic (anomalies exist), so the claim is
    statistical: over a seeded ensemble, critical-path-first wins in
    aggregate and on the large majority of DAGs."""
    wins = ties = losses = 0
    cp_total = fifo_total = 0.0
    for seed in range(40):
        rng = random.Random(seed)
        n = rng.randint(4, 14)
        edges = [
            (i, j)
            for i in range(n) for j in range(i + 1, n)
            if rng.random() < 0.25
        ]
        g = synthetic_graph(n, edges, name=f"seed{seed}")
        costs = [rng.uniform(0.1, 5.0) for _ in range(n)]
        workers = rng.randint(1, 3)
        cp = g.simulate_makespan(costs, workers, "critical_path")
        fifo = g.simulate_makespan(costs, workers, "fifo")
        cp_total += cp
        fifo_total += fifo
        if cp < fifo - 1e-9:
            wins += 1
        elif cp > fifo + 1e-9:
            losses += 1
        else:
            ties += 1
    assert cp_total <= fifo_total
    assert losses <= (wins + ties) // 4, (wins, ties, losses)


def test_schedule_respects_dependencies_and_worker_count():
    g = synthetic_graph(4, [(0, 2), (1, 2)])
    makespan, sched = g.simulate_schedule([2.0, 1.0, 1.0, 3.0], workers=2)
    for a, b in ((0, 2), (1, 2)):
        assert sched[b][0] >= sched[a][1]
    # Never more than 2 tasks overlapping.
    for t in (s for s, _ in sched):
        active = sum(1 for s, f in sched if s <= t < f)
        assert active <= 2
    assert makespan == max(f for _, f in sched)


def test_ascii_dag_marks_the_critical_path():
    g = synthetic_graph(4, [(0, 2), (1, 2), (2, 3)])
    text = g.ascii(costs=[5.0, 1.0, 1.0, 1.0], workers=2)
    assert "*" in text
    # Node 1 (the cheap root off the path) is not marked.
    n1 = next(l for l in text.splitlines() if "] n1" in l)
    assert not n1.rstrip().endswith("*")
    for idx in (0, 2, 3):
        line = next(l for l in text.splitlines() if f"] n{idx}" in l)
        assert line.rstrip().endswith("*")


def test_graph_cycle_detection():
    g = synthetic_graph(2, [(0, 1), (1, 0)])
    with pytest.raises(ValueError, match="cycle"):
        g.topo_order()


# ----------------------------------------------------------------------
# End-to-end execution: deps flow, caching, blocking
# ----------------------------------------------------------------------
def diamond(name="diamond"):
    return PipelineSpec(name=name, nodes=(
        PipelineNode("root", run=small_spec()),
        PipelineNode("left", generator="test.spec_from_dep",
                     params={"dep": "root"}, after=("root",)),
        PipelineNode("right", generator="test.echo_spec",
                     params={"sched_seed": 3}, after=("root",)),
        PipelineNode("join", generator="test.join_stats",
                     after=("left", "right")),
    ))


def test_predecessor_results_reach_dependent_builders():
    report = run_pipeline(diamond())
    assert report.ok
    base = report.result("root")
    left = report.outcome("left")
    # test.spec_from_dep derives sched_seed from the measured result.
    assert left.spec.sched_seed == base.num_blocks % 7
    assert left.spec.scheduler == "fuzz"
    join = report.result("join")
    assert join["left"]["blocks"] == report.result("left").num_blocks
    assert join["right"]["total_time"] == report.result("right").total_time


def test_diamond_second_run_is_fully_cached_and_byte_identical(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    first = run_pipeline(diamond(), engine=SweepEngine(jobs=1, cache=cache))
    second = run_pipeline(diamond(), engine=SweepEngine(jobs=1, cache=cache))
    assert first.sweep.executed == 4 and first.sweep.cached == 0
    assert second.sweep.executed == 0 and second.sweep.cached == 4
    blob1 = json.dumps(first.results_dict(), sort_keys=True)
    blob2 = json.dumps(second.results_dict(), sort_keys=True)
    assert blob1 == blob2


def test_analysis_fingerprint_tracks_inputs(tmp_path):
    """Changing a *direct* input re-runs the join; unchanged nodes stay
    cached."""
    cache = ResultCache(tmp_path / "cache")
    run_pipeline(diamond(), engine=SweepEngine(jobs=1, cache=cache))
    changed = PipelineSpec(name="diamond", nodes=(
        PipelineNode("root", run=small_spec()),
        PipelineNode("left", generator="test.spec_from_dep",
                     params={"dep": "root"}, after=("root",)),
        PipelineNode("right", generator="test.echo_spec",
                     params={"sched_seed": 5}, after=("root",)),
        PipelineNode("join", generator="test.join_stats",
                     after=("left", "right")),
    ))
    rerun = run_pipeline(changed, engine=SweepEngine(jobs=1, cache=cache))
    assert rerun.outcome("root").status == "cached"  # untouched
    assert rerun.outcome("left").status == "cached"  # same derived spec
    assert rerun.outcome("right").status == "ok"     # new params
    assert rerun.outcome("join").status == "ok"      # a dep changed


def test_failed_predecessor_blocks_the_dependent_subtree():
    bad = small_spec(config=small_config(num_ranks=2), ranks_per_node=4)
    pipe = PipelineSpec(name="p", nodes=(
        PipelineNode("bad", run=bad),
        PipelineNode("good", run=small_spec()),
        PipelineNode("child", generator="test.echo_spec",
                     params={"sched_seed": 4}, after=("bad",)),
        PipelineNode("grandchild", generator="test.join_stats",
                     after=("child",)),
        PipelineNode("unaffected", generator="test.join_stats",
                     after=("good",)),
    ))
    report = run_pipeline(pipe)
    assert report.outcome("bad").status == "failed"
    assert report.outcome("child").status == "blocked"
    assert report.outcome("grandchild").status == "blocked"
    assert report.outcome("unaffected").status == "ok"
    assert report.sweep.failed == 1 and report.sweep.blocked == 2
    assert "2 blocked" in report.sweep.summary()
    with pytest.raises(SweepError, match="blocked downstream"):
        report.sweep.raise_failures()
    # Blocked != failed: the blocked outcomes name their blocker.
    assert "bad" in report.outcome("child").error


def test_builder_exception_fails_the_node_and_blocks_children():
    pipe = PipelineSpec(name="p", nodes=(
        PipelineNode("root", run=small_spec()),
        PipelineNode("boom", generator="test.boom", after=("root",)),
        PipelineNode("after", generator="test.join_stats",
                     after=("boom",)),
    ))
    report = run_pipeline(pipe)
    assert report.outcome("root").status == "ok"
    assert report.outcome("boom").status == "failed"
    assert "builder exploded" in report.outcome("boom").error
    assert report.outcome("after").status == "blocked"


def test_strict_run_pipeline_raises_on_failure():
    bad = small_spec(config=small_config(num_ranks=2), ranks_per_node=4)
    pipe = PipelineSpec(name="p", nodes=(PipelineNode("bad", run=bad),))
    with pytest.raises(SweepError):
        run_pipeline(pipe, strict=True)


def test_flat_sweeps_still_run_through_the_same_engine():
    specs = [small_spec(), small_spec(variant="fork_join")]
    report = SweepEngine(jobs=1).run(specs)
    assert report.failed == 0
    assert report.blocked == 0
    assert "blocked" not in report.summary()


# ----------------------------------------------------------------------
# Acceptance (a): eager start — no level barriers
# ----------------------------------------------------------------------
def _sleepy_runner(spec_dict):
    """Worker body sleeping ``sched_seed`` hundredths before running."""
    time.sleep(int(spec_dict.get("sched_seed", 0)) * 0.01)
    return run_spec_dict(spec_dict)


def test_node_starts_as_soon_as_its_own_predecessors_finish():
    """With two workers, ``child`` (after the fast root) must start while
    the unrelated slow root is still running — a level-barrier scheduler
    would stall it until the whole first level drained."""
    pipe = PipelineSpec(name="eager", nodes=(
        PipelineNode("slow", run=small_spec(scheduler="fuzz",
                                            sched_seed=120)),
        PipelineNode("fast", run=small_spec(sched_seed=1)),
        PipelineNode("child", generator="test.echo_spec",
                     params={"sched_seed": 2}, after=("fast",)),
    ))
    events = []
    engine = SweepEngine(jobs=2, retries=0, mp_context="fork",
                         runner=_sleepy_runner, progress=events.append)
    report = run_pipeline(pipe, engine=engine)
    assert report.ok
    order = [(e["event"], e["name"]) for e in events]
    child_start = order.index(("start", "child"))
    slow_done = order.index(("ok", "slow"))
    assert child_start < slow_done, order

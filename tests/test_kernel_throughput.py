"""Tier-1 smoke test for simulator throughput.

A tiny deterministic world (the TAMPI golden config) pins the exact
event and task counts — any hot-path change that alters scheduling
shows up here before it reaches the golden gate — and enforces a very
loose events/sec floor so a catastrophic kernel slowdown (e.g. an
accidental re-enable of per-event allocation or cyclic GC churn) fails
fast even on slow CI boxes.  Real throughput numbers live in
``benchmarks/test_kernel_throughput.py``.
"""

import dataclasses
import time

from repro.core.driver import execute
from repro.verify import default_golden_specs

#: Exact counts for the tampi_dataflow golden spec.  These are pinned by
#: the byte-identical golden gate already — the assertion here just makes
#: a count drift point straight at the kernel instead of at a golden
#: mismatch three layers up.
EXPECTED_EVENTS = 5667
EXPECTED_TASKS = 2592

#: Deliberately ~2 orders of magnitude below the slowest observed CI
#: hardware (the reference host retires > 1M events/sec on this world).
EVENTS_PER_SEC_FLOOR = 10_000


def test_tiny_world_event_and_task_counts_are_pinned():
    spec = dataclasses.replace(
        default_golden_specs()["tampi_dataflow_small"], profile=True
    )
    res = execute(spec)
    events = next(
        m["total"] for m in res.profile.metrics
        if m["name"] == "kernel.events"
    )
    tasks = sum(rs.tasks_executed for rs in res.runtime_stats)
    assert events == EXPECTED_EVENTS
    assert tasks == EXPECTED_TASKS


def test_tiny_world_meets_loose_throughput_floor():
    spec = default_golden_specs()["tampi_dataflow_small"]
    execute(spec)  # warm imports/caches outside the timed window
    t0 = time.process_time()
    execute(spec)
    elapsed = time.process_time() - t0
    assert EXPECTED_EVENTS / elapsed > EVENTS_PER_SEC_FLOOR, elapsed

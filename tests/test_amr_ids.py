"""Unit and property tests for octree block ids and grid geometry."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amr.ids import (
    FACES,
    HI,
    LO,
    BlockId,
    Grid,
    face_quadrant,
)


def test_faces_enumeration_order():
    assert FACES == ((0, 0), (0, 1), (1, 0), (1, 1), (2, 0), (2, 1))


def test_parent_child_roundtrip():
    bid = BlockId(2, 5, 3, 7)
    for child in bid.children():
        assert child.parent() == bid
        assert child.level == 3


def test_children_are_distinct_and_eight():
    bid = BlockId(0, 0, 0, 0)
    children = bid.children()
    assert len(children) == 8
    assert len(set(children)) == 8


def test_root_has_no_parent():
    with pytest.raises(ValueError):
        BlockId(0, 0, 0, 0).parent()


def test_octant_indexing():
    parent = BlockId(1, 2, 3, 4)
    octants = [c.octant() for c in parent.children()]
    assert octants == list(range(8))


def test_sibling_group_contains_self():
    bid = BlockId(1, 1, 0, 1)
    assert bid in bid.sibling_group()
    assert len(bid.sibling_group()) == 8


def test_grid_dims_at_level():
    grid = Grid((2, 3, 4))
    assert grid.dims_at(0) == (2, 3, 4)
    assert grid.dims_at(2) == (8, 12, 16)


def test_grid_rejects_bad_dims():
    with pytest.raises(ValueError):
        Grid((0, 1, 1))


def test_grid_contains():
    grid = Grid((2, 2, 2))
    assert grid.contains(BlockId(0, 1, 1, 1))
    assert not grid.contains(BlockId(0, 2, 0, 0))
    assert grid.contains(BlockId(1, 3, 3, 3))
    assert not grid.contains(BlockId(1, 4, 0, 0))


def test_bounds_unit_cube_cover():
    grid = Grid((2, 2, 2))
    b = grid.bounds(BlockId(0, 0, 0, 0))
    assert b == ((0.0, 0.5), (0.0, 0.5), (0.0, 0.5))
    b = grid.bounds(BlockId(1, 3, 0, 0))
    assert b[0] == (0.75, 1.0)


def test_face_coord_interior_and_boundary():
    grid = Grid((2, 2, 2))
    bid = BlockId(0, 0, 0, 0)
    assert grid.face_coord(bid, 0, HI) == BlockId(0, 1, 0, 0)
    assert grid.face_coord(bid, 0, LO) is None  # domain boundary
    assert grid.face_coord(BlockId(0, 1, 0, 0), 0, HI) is None


def test_finer_face_neighbors_touch_shared_face():
    grid = Grid((2, 1, 1))
    me = BlockId(0, 0, 0, 0)
    slot = grid.face_coord(me, 0, HI)
    finer = grid.finer_face_neighbors(slot, 0, HI)
    assert len(finer) == 4
    # All children touching my face have even x-coordinate (low side of
    # the neighbor slot).
    assert all(c.i % 2 == 0 for c in finer)


def test_face_quadrant_values():
    # A child of slot at level 1 — quadrant from the in-plane coordinates.
    child = BlockId(1, 2, 1, 0)
    assert face_quadrant(child, 0) == (1, 0)  # (j odd, k even)
    assert face_quadrant(child, 1) == (0, 0)  # (i even, k even)
    assert face_quadrant(child, 2) == (0, 1)  # (i even, j odd)


def test_morton_parent_sorts_before_children():
    grid = Grid((2, 2, 2))
    parent = BlockId(0, 1, 0, 1)
    keys = [grid.morton_key(c, 3) for c in parent.children()]
    pkey = grid.morton_key(parent, 3)
    assert pkey < min(keys)


def test_morton_key_rejects_too_deep():
    grid = Grid((1, 1, 1))
    with pytest.raises(ValueError):
        grid.morton_key(BlockId(3, 0, 0, 0), max_level=2)


@settings(max_examples=200, deadline=None)
@given(
    level=st.integers(min_value=0, max_value=3),
    i=st.integers(min_value=0, max_value=15),
    j=st.integers(min_value=0, max_value=15),
    k=st.integers(min_value=0, max_value=15),
)
def test_property_bounds_nest_in_parent(level, i, j, k):
    """A child's bounding box is contained in its parent's."""
    grid = Grid((2, 2, 2))
    dims = grid.dims_at(level + 1)
    bid = BlockId(level + 1, i % dims[0], j % dims[1], k % dims[2])
    cb = grid.bounds(bid)
    pb = grid.bounds(bid.parent())
    for (clo, chi), (plo, phi) in zip(cb, pb):
        assert plo <= clo < chi <= phi


@settings(max_examples=200, deadline=None)
@given(
    i=st.integers(min_value=0, max_value=7),
    j=st.integers(min_value=0, max_value=7),
    k=st.integers(min_value=0, max_value=7),
)
def test_property_morton_distinct(i, j, k):
    """Distinct same-level blocks get distinct Morton keys."""
    grid = Grid((8, 8, 8))
    a = BlockId(0, i, j, k)
    b = BlockId(0, (i + 1) % 8, j, k)
    assert grid.morton_key(a, 2) != grid.morton_key(b, 2)


@settings(max_examples=100, deadline=None)
@given(
    level=st.integers(min_value=0, max_value=2),
    i=st.integers(min_value=0, max_value=7),
    j=st.integers(min_value=0, max_value=7),
    k=st.integers(min_value=0, max_value=7),
    axis=st.integers(min_value=0, max_value=2),
    side=st.integers(min_value=0, max_value=1),
)
def test_property_face_neighbors_are_symmetric(level, i, j, k, axis, side):
    """If B is A's same-level face neighbor, A is B's on the other side."""
    grid = Grid((2, 2, 2))
    dims = grid.dims_at(level)
    bid = BlockId(level, i % dims[0], j % dims[1], k % dims[2])
    n = grid.face_coord(bid, axis, side)
    if n is not None:
        back = grid.face_coord(n, axis, 1 - side)
        assert back == bid

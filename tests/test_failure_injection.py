"""Failure-injection tests: corruption must be detected, not silently
propagated — the purpose of miniAMR's checksum machinery."""

import numpy as np
import pytest

from repro import AmrConfig, RunSpec, laptop, run_simulation, sphere
from repro.amr import ChecksumError


def cfg(**kw):
    """Hybrid-variant config (2 ranks)."""
    d = dict(
        npx=2, npy=1, npz=1, init_x=1, init_y=2, init_z=2,
        nx=4, ny=4, nz=4, num_vars=2,
        num_tsteps=2, stages_per_ts=3, refine_freq=0, checksum_freq=3,
        max_refine_level=0, objects=(),
    )
    d.update(kw)
    return AmrConfig(**d)


def mpi_cfg(**kw):
    """MPI-only config (4 ranks, one per laptop core)."""
    kw.setdefault("npx", 2)
    kw.setdefault("npy", 2)
    kw.setdefault("npz", 1)
    kw.setdefault("init_x", 1)
    kw.setdefault("init_y", 1)
    kw.setdefault("init_z", 2)
    return cfg(**kw)


def test_overtight_tolerance_detected_as_failure():
    """The stencil's natural drift trips an absurdly tight tolerance —
    the validation path actually fires.  (A refining mesh makes the
    drift non-trivial: cross-level ghost averaging is not conservative.)"""
    with pytest.raises(ChecksumError, match="drift"):
        run_simulation(RunSpec(
            config=mpi_cfg(
                checksum_tolerance=1e-12,
                max_refine_level=1,
                refine_freq=1,
                objects=(sphere(center=(0.3, 0.3, 0.3), radius=0.25),),
            ),
            machine=laptop(),
            variant="mpi_only", num_nodes=1, ranks_per_node=4,
        ))


def test_corrupted_block_data_detected():
    """Inject NaN into a block mid-run: the next checksum must abort."""
    from repro.core.variants.mpi_only import MpiOnlyProgram

    original = MpiOnlyProgram.stencil
    hits = {"n": 0}

    def sabotaged(self, group):
        yield from original(self, group)
        hits["n"] += 1
        if hits["n"] == 4:  # corrupt after 4 stencil calls (any rank)
            bid = next(iter(self.blocks))
            self.blocks[bid].data[0, 2, 2, 2] = np.nan

    MpiOnlyProgram.stencil = sabotaged
    try:
        with pytest.raises(ChecksumError, match="finite"):
            run_simulation(RunSpec(
                config=mpi_cfg(), machine=laptop(), variant="mpi_only",
                num_nodes=1, ranks_per_node=4,
            ))
    finally:
        MpiOnlyProgram.stencil = original


def test_lost_ghost_exchange_changes_checksums():
    """If intra-rank ghost copies were skipped, the physics would differ —
    proving the communication path matters to the result."""
    from repro.core.app import BaseRankProgram

    healthy = run_simulation(RunSpec(
        config=mpi_cfg(), machine=laptop(), variant="mpi_only",
        num_nodes=1, ranks_per_node=4,
    ))

    original = BaseRankProgram.copy_local_face
    BaseRankProgram.copy_local_face = lambda self, t, vs: None
    try:
        broken = run_simulation(RunSpec(
            config=mpi_cfg(), machine=laptop(), variant="mpi_only",
            num_nodes=1, ranks_per_node=4,
        ))
    finally:
        BaseRankProgram.copy_local_face = original

    (_, a, _), (_, b, _) = healthy.checksums[-1], broken.checksums[-1]
    assert not np.allclose(a, b), "dropping ghost copies must change results"


def test_delayed_checksum_eventually_detects_corruption():
    """The paper: with delayed validation, an error aborts 'after executing
    some more stages' — but it still aborts."""
    from repro.core.variants.tampi_dataflow import TampiDataflowProgram

    original = TampiDataflowProgram.stencil
    hits = {"n": 0}

    def sabotaged(self, group):
        yield from original(self, group)
        hits["n"] += 1
        if hits["n"] == 2:  # corrupt after 2 stencil calls (any rank)
            bid = next(iter(self.blocks))
            self.blocks[bid].data[0, 2, 2, 2] = np.inf

    TampiDataflowProgram.stencil = sabotaged
    try:
        with pytest.raises(ChecksumError):
            run_simulation(RunSpec(
                config=cfg(num_tsteps=3), machine=laptop(),
                variant="tampi_dataflow", num_nodes=1, ranks_per_node=2,
                delayed_checksum=True,
            ))
    finally:
        TampiDataflowProgram.stencil = original

"""Structural tests: each variant creates the task/message pattern the
paper describes (phases, task types, message counts)."""

import pytest

from repro import AmrConfig, RunSpec, laptop, run_simulation, sphere
from repro.trace import task_time_by_phase


def cfg(**kw):
    d = dict(
        npx=2, npy=1, npz=1, init_x=1, init_y=2, init_z=2,
        nx=4, ny=4, nz=4, num_vars=4,
        num_tsteps=2, stages_per_ts=3, refine_freq=1, checksum_freq=3,
        max_refine_level=1,
        objects=(sphere(center=(0.3, 0.3, 0.3), radius=0.25),),
    )
    d.update(kw)
    return AmrConfig(**d)


def run(variant, c=None, **kw):
    kw.setdefault("ranks_per_node", 2)
    return run_simulation(RunSpec(
        config=c or cfg(), machine=laptop(), variant=variant, num_nodes=1,
        trace=True, **kw,
    ))


def test_tampi_task_phases_match_algorithm3():
    res = run("tampi_dataflow", cfg(send_faces=True, separate_buffers=True))
    phases = task_time_by_phase(res.tracer)
    # Algorithm 3's task types all appear.
    for expected in ("recv", "pack", "send", "intra", "unpack", "stencil",
                     "checksum"):
        assert expected in phases, (expected, sorted(phases))
    # Refinement task types (Section IV-B).
    assert "split" in phases
    # Every phase actually consumed time.
    assert all(v > 0 for v in phases.values())


def test_fork_join_uses_parallel_regions():
    res = run("fork_join")
    phases = task_time_by_phase(res.tracer)
    # Fork-join parallelizes stencil/pack/unpack/intra/checksum as chunk
    # tasks, but has NO communication tasks (master-only MPI).
    assert "stencil" in phases
    assert "intra" in phases
    assert "checksum" in phases
    assert "recv" not in phases
    assert "send" not in phases


def test_mpi_only_has_no_tasks_at_all():
    res = run("mpi_only", cfg(npx=2, npy=2, npz=1, init_x=1, init_y=1,
                              init_z=2), ranks_per_node=4)
    assert res.tracer.by_kind("task") == []
    # ...but plenty of MPI call events (Algorithm 2).
    names = {e.name for e in res.tracer.by_kind("mpi")}
    assert {"Isend", "Irecv", "Waitany", "Waitall"} <= names


def test_tampi_fewer_but_larger_messages_when_aggregated():
    fine = run("tampi_dataflow", cfg(send_faces=True, separate_buffers=True))
    agg = run("tampi_dataflow")
    assert agg.comm_stats.messages < fine.comm_stats.messages
    # Identical bytes moved in face payloads regardless of aggregation is
    # not exactly true (block exchange etc.), but same order of magnitude.
    assert agg.comm_stats.bytes_sent == pytest.approx(
        fine.comm_stats.bytes_sent, rel=0.2
    )


def test_mpi_only_uses_more_ranks_and_messages():
    mpi = run("mpi_only", cfg(npx=2, npy=2, npz=1, init_x=1, init_y=1,
                              init_z=2), ranks_per_node=4)
    tampi = run("tampi_dataflow")
    assert mpi.ranks_per_node > tampi.ranks_per_node
    assert mpi.comm_stats.messages > tampi.comm_stats.messages


def test_refine_phase_markers_present_in_all_variants():
    for variant in ("mpi_only", "fork_join", "tampi_dataflow"):
        c = (
            cfg(npx=2, npy=2, npz=1, init_x=1, init_y=1, init_z=2)
            if variant == "mpi_only"
            else cfg()
        )
        rpn = 4 if variant == "mpi_only" else 2
        res = run_simulation(RunSpec(
            config=c, machine=laptop(), variant=variant, num_nodes=1,
            ranks_per_node=rpn, trace=True,
        ))
        spans = res.tracer.phases("refine")
        assert spans, variant
        assert sum(s.duration for s in spans if s.rank == 0) == (
            pytest.approx(res.refine_time)
        )

"""Quick-mode runs of the experiment harness (structure, not timing)."""

import pytest

from repro.bench import (
    ScalingPoint,
    ScalingResult,
    table1,
    table2,
    trace_runs,
    weak_scaling,
)


@pytest.fixture(scope="module")
def weak():
    return weak_scaling(node_counts=(1, 2), quick=True)


def test_weak_scaling_has_all_points(weak):
    assert len(weak.points) == 6  # 2 node counts x 3 variants
    for variant in ("mpi_only", "fork_join", "tampi_dataflow"):
        series = weak.series(variant)
        assert [p.num_nodes for p in series] == [1, 2]
        for p in series:
            assert p.gflops > 0
            assert p.total_time > 0
            assert p.flops > 0


def test_weak_scaling_doubles_work(weak):
    """Weak scaling: FLOPs grow with the node count."""
    for variant in ("mpi_only", "tampi_dataflow"):
        series = weak.series(variant)
        assert series[1].flops > 1.5 * series[0].flops


def test_efficiency_is_one_at_base(weak):
    for variant in ("mpi_only", "fork_join", "tampi_dataflow"):
        assert weak.efficiency(variant, 1) == pytest.approx(1.0)


def test_speedup_vs_self_is_one(weak):
    assert weak.speedup_vs("mpi_only", "mpi_only", 2) == pytest.approx(1.0)


def test_gflops_at_unknown_point_raises(weak):
    with pytest.raises(KeyError):
        weak.gflops_at("mpi_only", 99)


def test_scaling_result_text_rendering(weak):
    assert "weak scaling" in weak.text
    assert "tampi_dataflow" in weak.text


def test_non_refine_time_property():
    p = ScalingPoint(
        variant="x", num_nodes=1, gflops=1.0, total_time=10.0,
        refine_time=2.0, flops=1e9,
    )
    assert p.non_refine_time == 8.0


def test_table1_quick_structure():
    result = table1(ranks_per_node_list=(2, 4), quick=True)
    assert len(result.rows) == 4  # 2 configs x 2 variants
    variants = {v for _rpn, v, *_ in result.rows}
    assert variants == {"fork_join", "tampi_dataflow"}
    assert "Table I" in result.text


def test_table2_quick_structure():
    result = table2(task_counts=(1, 0), num_nodes=2, quick=True)
    labels = [l for l, _t in result.rows]
    assert labels == ["1", "all"]
    assert all(t > 0 for _l, t in result.rows)


def test_trace_runs_quick_structure():
    exp = trace_runs(quick=True)
    assert set(exp.results) == {"mpi_only", "tampi_dataflow"}
    for res in exp.results.values():
        assert res.tracer is not None
        assert res.tracer.events
    assert "speedup" in exp.text


def test_scaling_result_csv_export(weak):
    csv = weak.to_csv()
    lines = csv.splitlines()
    assert lines[0].startswith("nodes,variant")
    assert len(lines) == 1 + len(weak.points)
    assert any("tampi_dataflow" in l for l in lines[1:])


# ----------------------------------------------------------------------
# Fig 4 tuning problem
# ----------------------------------------------------------------------
def test_fig4_tune_keeps_the_paper_default_in_the_space():
    from repro.bench import SCALED_RPN, fig4_tune

    tune = fig4_tune(quick=True)
    assert tune.base.variant == "tampi_dataflow"
    assert tune.base.num_nodes == 4
    # The baseline point must be searchable, so the winner is provably
    # no worse than the paper default.
    assert tune.base.variant in tune.space["variant"]
    assert SCALED_RPN["tampi_dataflow"] in tune.space["ranks_per_node"]
    # Construction is deterministic: CI diffs reports built from it.
    assert tune.fingerprint() == fig4_tune(quick=True).fingerprint()
    assert tune.fingerprint() != fig4_tune(quick=False).fingerprint()


def test_tune_pipeline_orders_tune_behind_calibration():
    from repro.bench import PIPELINES, get_pipeline, tune_pipeline

    flow = tune_pipeline(quick=True)
    names = [node.name for node in flow.nodes]
    assert names == ["calibrate", "tune"]
    tune_node = flow.nodes[1]
    assert tune_node.generator == "bench.tune_report"
    assert tune_node.after == ("calibrate",)
    assert PIPELINES["tune"] is tune_pipeline
    assert get_pipeline("tune", quick=True).name == flow.name


def test_tune_report_generator_runs_a_declared_tune():
    from repro import AmrConfig, RunSpec, sphere
    from repro.pipeline.spec import get_generator
    from repro.tune import TuneSpec

    base = RunSpec(
        config=AmrConfig(
            npx=2, npy=1, npz=1, init_x=1, init_y=2, init_z=2,
            nx=4, ny=4, nz=4, num_vars=2, num_tsteps=1,
            stages_per_ts=2, refine_freq=1, checksum_freq=2,
            max_refine_level=1, payload="synthetic",
            objects=(sphere(center=(0.3, 0.3, 0.3), radius=0.25),),
        ),
        machine="laptop", variant="tampi_dataflow", ranks_per_node=2,
    )
    tune = TuneSpec(
        base=base, space={"variant": ("mpi_only", "tampi_dataflow")},
        name="node-tune",
    )
    generator = get_generator("bench.tune_report")
    report = generator({"tune": tune.to_dict()}, {})
    assert report["name"] == "node-tune"
    assert [e["rank"] for e in report["entries"]] == [1, 2]
    assert report["fingerprint"] == tune.fingerprint()

"""Tests for simulation resources: Store, Semaphore, Gate."""

import pytest

from repro.simx import Environment, Gate, Semaphore, Store


# ----------------------------------------------------------------------
# Store
# ----------------------------------------------------------------------
def test_store_put_then_get():
    env = Environment()
    store = Store(env)
    got = []

    def consumer():
        item = yield store.get()
        got.append(item)

    store.put("x")
    env.process(consumer())
    env.run()
    assert got == ["x"]


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    got = []

    def consumer():
        item = yield store.get()
        got.append((item, env.now))

    def producer():
        yield env.timeout(3.0)
        store.put("late")

    env.process(consumer())
    env.process(producer())
    env.run()
    assert got == [("late", 3.0)]


def test_store_fifo_order_of_items():
    env = Environment()
    store = Store(env)
    got = []

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    for i in range(3):
        store.put(i)
    env.process(consumer())
    env.run()
    assert got == [0, 1, 2]


def test_store_fifo_order_of_getters():
    env = Environment()
    store = Store(env)
    got = []

    def consumer(name):
        item = yield store.get()
        got.append((name, item))

    env.process(consumer("first"))
    env.process(consumer("second"))

    def producer():
        yield env.timeout(1)
        store.put("a")
        store.put("b")

    env.process(producer())
    env.run()
    assert got == [("first", "a"), ("second", "b")]


def test_store_len_and_items():
    env = Environment()
    store = Store(env)
    store.put(1)
    store.put(2)
    assert len(store) == 2
    assert store.items == (1, 2)


def test_store_get_nowait():
    env = Environment()
    store = Store(env)
    assert store.get_nowait() is None
    assert store.get_nowait(default="empty") == "empty"
    store.put(5)
    assert store.get_nowait() == 5


# ----------------------------------------------------------------------
# Semaphore
# ----------------------------------------------------------------------
def test_semaphore_limits_concurrency():
    env = Environment()
    sem = Semaphore(env, value=1)
    active = []
    max_active = []

    def worker(name):
        yield sem.acquire()
        active.append(name)
        max_active.append(len(active))
        yield env.timeout(1.0)
        active.remove(name)
        sem.release()

    for n in range(3):
        env.process(worker(n))
    env.run()
    assert max(max_active) == 1
    assert env.now == pytest.approx(3.0)


def test_semaphore_multiple_units():
    env = Environment()
    sem = Semaphore(env, value=2)
    done = []

    def worker(n):
        yield sem.acquire()
        yield env.timeout(1.0)
        done.append(env.now)
        sem.release()

    for n in range(4):
        env.process(worker(n))
    env.run()
    assert env.now == pytest.approx(2.0)


def test_semaphore_negative_value_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        Semaphore(env, value=-1)


def test_semaphore_release_without_waiters_increments():
    env = Environment()
    sem = Semaphore(env, value=0)
    sem.release()
    assert sem.value == 1


# ----------------------------------------------------------------------
# Gate
# ----------------------------------------------------------------------
def test_gate_broadcast_wakes_all_waiters():
    env = Environment()
    gate = Gate(env)
    woken = []

    def waiter(name):
        yield gate.wait()
        woken.append((name, env.now))

    for n in range(3):
        env.process(waiter(n))

    def opener():
        yield env.timeout(2.0)
        gate.open()

    env.process(opener())
    env.run()
    assert len(woken) == 3
    assert all(t == 2.0 for _n, t in woken)


def test_gate_open_is_immediate_for_late_waiters():
    env = Environment()
    gate = Gate(env)
    gate.open()
    times = []

    def late(env):
        yield env.timeout(5)
        yield gate.wait()
        times.append(env.now)

    env.process(late(env))
    env.run()
    assert times == [5]


def test_gate_reset_allows_reuse():
    env = Environment()
    gate = Gate(env)
    events = []

    def cycle():
        yield gate.wait()
        events.append(("first", env.now))
        gate.reset()
        yield gate.wait()
        events.append(("second", env.now))

    def opener():
        yield env.timeout(1)
        gate.open()
        yield env.timeout(1)
        gate.open()  # no-op: still open until reset by cycle()
        yield env.timeout(1)
        gate.open()

    env.process(cycle())
    env.process(opener())
    env.run()
    assert events[0] == ("first", 1)
    assert events[1][0] == "second"


def test_gate_is_open_flag():
    env = Environment()
    gate = Gate(env)
    assert not gate.is_open
    gate.open()
    assert gate.is_open
    gate.reset()
    assert not gate.is_open

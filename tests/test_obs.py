"""repro.obs: metrics, attribution invariants, reports, exporters.

The load-bearing checks:

* the critical path of a real run is ≤ the makespan and ≥ the heaviest
  single task (the chain is a non-overlapping sequence by construction);
* the cross-variant contrast the paper draws (Fig 2 vs Fig 3) falls out
  of the profiler: TAMPI+OSS overlaps communication tasks with stencils
  and shows less comm-blocked idle than MPI-only;
* everything serializes losslessly (report round-trips, cached profiled
  results keep their report, profile-off specs fingerprint exactly as
  before the field existed).
"""

import json

import pytest

from repro import AmrConfig, RunSpec, run_simulation, sphere
from repro.exec import ResultCache, SweepEngine
from repro.obs import (
    BLOCKERS,
    COMM_BLOCKED,
    MetricsRegistry,
    ProfileReport,
    Profiler,
    ascii_summary,
    chrome_trace_events,
    compare_reports,
    critical_path,
    idle_gaps,
    merge_intervals,
    metrics_csv,
    metrics_json,
    overlap_length,
    phase_overlap_fraction,
    write_chrome_trace,
)
from repro.obs.attribution import comm_blocked_fraction


def small_config(num_ranks=2, **overrides):
    kwargs = dict(
        npx=num_ranks, npy=1, npz=1, init_x=1, init_y=2, init_z=2,
        nx=4, ny=4, nz=4, num_vars=2, num_tsteps=2, stages_per_ts=2,
        refine_freq=1, checksum_freq=2, max_refine_level=1,
        objects=(sphere(center=(0.3, 0.3, 0.3), radius=0.25),),
    )
    kwargs.update(overrides)
    return AmrConfig(**kwargs)


def profiled_spec(variant, **overrides):
    return RunSpec(
        config=small_config(), machine="laptop", variant=variant,
        ranks_per_node=2, profile=True, **overrides,
    )


@pytest.fixture(scope="module")
def tampi_result():
    return run_simulation(profiled_spec("tampi_dataflow"))


@pytest.fixture(scope="module")
def mpi_result():
    return run_simulation(profiled_spec("mpi_only"))


@pytest.fixture(scope="module")
def fork_result():
    return run_simulation(profiled_spec("fork_join"))


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_gauge_histogram(self):
        reg = MetricsRegistry()
        reg.inc("c", rank=0)
        reg.inc("c", 2, rank=0)
        reg.inc("c", rank=1)
        reg.set_gauge("g", 5.0)
        reg.set_gauge("g", 3.0)
        reg.observe("h", 1.5)
        reg.observe("h", 6.0)
        assert reg.value("c", rank=0) == 3
        assert reg.value("c", rank=1) == 1
        assert reg.value("c", rank=99) == 0
        assert reg.value("g") == 3.0  # latest, not sum
        assert reg.count("h") == 2
        assert reg.mean("h") == pytest.approx(3.75)
        assert reg.names() == ["c", "g", "h"]

    def test_label_order_is_irrelevant(self):
        reg = MetricsRegistry()
        reg.inc("x", a=1, b=2)
        reg.inc("x", b=2, a=1)
        assert reg.value("x", a=1, b=2) == 2

    def test_round_trip_is_exact(self):
        reg = MetricsRegistry()
        reg.inc("c", 7, rank=3, kind="steal")
        reg.set_gauge("g", 2.5, rank=0)
        for v in (0.0, 0.001, 3.0, 1024.0):
            reg.observe("h", v, call="Waitany")
        dump = json.loads(json.dumps(reg.to_dict()))
        back = MetricsRegistry.from_dict(dump)
        assert back.to_dict() == reg.to_dict()
        assert back.value("c", rank=3, kind="steal") == 7
        assert back.mean("h", call="Waitany") == reg.mean("h", call="Waitany")

    def test_csv_has_one_row_per_series(self):
        reg = MetricsRegistry()
        reg.inc("c", rank=0)
        reg.inc("c", rank=1)
        text = reg.to_csv()
        lines = text.strip().splitlines()
        assert lines[0] == "name,labels,type,count,total,min,max"
        assert len(lines) == 3
        assert "rank=0" in lines[1]


# ----------------------------------------------------------------------
# Interval helpers
# ----------------------------------------------------------------------
def test_merge_intervals():
    assert merge_intervals([]) == []
    assert merge_intervals([(1, 1), (2, 1)]) == []  # empty/inverted dropped
    assert merge_intervals([(0, 2), (1, 3), (5, 6)]) == [(0, 3), (5, 6)]
    assert merge_intervals([(0, 1), (1, 2)]) == [(0, 2)]  # touching merge


def test_overlap_length():
    merged = [(0, 2), (4, 6)]
    assert overlap_length((1, 5), merged) == pytest.approx(2.0)
    assert overlap_length((2, 4), merged) == 0.0
    assert overlap_length((-1, 10), merged) == pytest.approx(4.0)


# ----------------------------------------------------------------------
# Critical path on a hand-built DAG
# ----------------------------------------------------------------------
class _FakeTask:
    def __init__(self, tid, label="t", phase="stencil"):
        self.tid = tid
        self.label = label
        self.phase = phase
        self.successors = []


def _run_task(prof, task, rank, core, t0, t1, t_complete=None):
    # Successors are spawned before their predecessors complete in the
    # real runtime (that ordering is what makes the executed-DAG edge
    # recording in task_completed work), so spawn separately when a task
    # has predecessors.
    if task.tid not in prof.tasks:
        prof.task_spawned(task, rank, t0)
    prof.task_ready(task, t0)
    prof.task_ran(task, core, t0, t1)
    prof.task_completed(task, t_complete if t_complete is not None else t1)


def test_critical_path_synthetic_chain():
    # a(1s) -> b(2s), plus an unrelated c(0.5s): CP = a + b = 3s.
    prof = Profiler()
    a, b, c = _FakeTask(1, "a"), _FakeTask(2, "b"), _FakeTask(3, "c")
    a.successors = [b]
    prof.task_spawned(a, 0, 0.0)
    prof.task_spawned(b, 0, 0.0)
    _run_task(prof, a, 0, 0, 0.0, 1.0)
    _run_task(prof, b, 0, 0, 1.0, 3.0)
    _run_task(prof, c, 0, 1, 0.0, 0.5)
    cp = critical_path(prof)
    assert cp["length"] == pytest.approx(3.0)
    assert cp["tasks"] == 2
    assert cp["task_labels"] == ["a", "b"]
    assert cp["composition"]["stencil"] == pytest.approx(3.0)


def test_critical_path_counts_release_pending():
    # Task body ends at 1.0 but releases deps at 1.4 (TAMPI window);
    # its successor runs 1.4 -> 2.0.  CP = 1.0 + 0.4 + 0.6.
    prof = Profiler()
    a, b = _FakeTask(1, "send", "send"), _FakeTask(2, "stencil")
    a.successors = [b]
    prof.task_spawned(a, 0, 0.0)
    prof.task_spawned(b, 0, 0.0)
    _run_task(prof, a, 0, 0, 0.0, 1.0, t_complete=1.4)
    _run_task(prof, b, 0, 0, 1.4, 2.0)
    cp = critical_path(prof)
    assert cp["length"] == pytest.approx(2.0)
    assert cp["composition"]["tampi_release"] == pytest.approx(0.4)


def test_critical_path_empty_profiler():
    cp = critical_path(Profiler())
    assert cp == {
        "length": 0.0, "tasks": 0, "composition": {}, "task_labels": []
    }


# ----------------------------------------------------------------------
# Idle-gap taxonomy on synthetic timelines
# ----------------------------------------------------------------------
def test_idle_gap_classification_priorities():
    # One rank, one core, busy [0, 1] and [3, 4]; the [1, 3] gap is fully
    # covered by a blocking Waitany, which outranks the network evidence.
    prof = Profiler()
    t1, t2 = _FakeTask(1), _FakeTask(2)
    _run_task(prof, t1, 0, 0, 0.0, 1.0)
    _run_task(prof, t2, 0, 0, 3.0, 4.0)
    prof.mpi_call(0, "Waitany", 1.0, 3.0)
    prof.message_posted(0, 1, 1.0, 3.0, 4096)
    idle = idle_gaps(prof, {0: 1}, makespan=4.0)
    assert idle["core_seconds"] == pytest.approx(4.0)
    assert idle["busy_seconds"] == pytest.approx(2.0)
    assert idle["by_blocker"] == {"mpi_wait": pytest.approx(2.0)}
    assert idle["gap_count"] == 1
    assert idle["max_gap"] == pytest.approx(2.0)


def test_idle_gap_no_ready_work_default():
    prof = Profiler()
    t1 = _FakeTask(1)
    _run_task(prof, t1, 0, 0, 0.0, 1.0)
    idle = idle_gaps(prof, {0: 1}, makespan=3.0)
    assert idle["by_blocker"] == {"no_ready_work": pytest.approx(2.0)}


def test_idle_gap_inline_busy_counts_on_core0():
    prof = Profiler()
    t1 = _FakeTask(1)
    _run_task(prof, t1, 0, 0, 0.0, 1.0)
    prof.inline_busy(0, 1.0, 3.0)  # main-thread untasked work
    idle = idle_gaps(prof, {0: 1}, makespan=3.0)
    assert idle["busy_seconds"] == pytest.approx(3.0)
    assert idle["by_blocker"] == {}


def test_idle_gap_taskless_rank_reads_mpi_intervals():
    # MPI-only shape: no tasks at all; blocked time comes from the
    # blocking-call and collective intervals directly.
    prof = Profiler()
    prof.mpi_call(0, "Waitany", 1.0, 2.0)
    prof.mpi_call(0, "Allreduce", 3.0, 3.5)
    prof.mpi_call(0, "Isend", 0.0, 0.0)  # non-blocking: ignored
    idle = idle_gaps(prof, {0: 1}, makespan=4.0)
    assert idle["by_blocker"]["mpi_wait"] == pytest.approx(1.0)
    assert idle["by_blocker"]["collective"] == pytest.approx(0.5)
    assert idle["busy_seconds"] == pytest.approx(2.5)
    assert comm_blocked_fraction(idle) == pytest.approx(0.25)


def test_phase_overlap_fraction_synthetic():
    prof = Profiler()
    s = _FakeTask(1, "stencil", "stencil")
    p = _FakeTask(2, "pack", "pack")
    _run_task(prof, s, 0, 0, 0.0, 2.0)
    _run_task(prof, p, 0, 1, 1.0, 3.0)  # covers half the stencil span
    assert phase_overlap_fraction(prof) == pytest.approx(0.5)
    assert phase_overlap_fraction(Profiler()) == 0.0


# ----------------------------------------------------------------------
# Invariants on real runs
# ----------------------------------------------------------------------
@pytest.mark.parametrize("which", ["tampi_result", "fork_result"])
def test_critical_path_bounds(which, request):
    res = request.getfixturevalue(which)
    prof, report = res.profiler, res.profile
    cp = report.critical_path_length
    assert 0.0 < cp <= res.total_time + 1e-9
    heaviest = max(
        r.exec_time + r.release_pending for r in prof.executed_tasks()
    )
    assert cp >= heaviest - 1e-12


def test_idle_accounting_closes(tampi_result):
    idle = tampi_result.profile.idle
    assert idle["core_seconds"] == pytest.approx(
        idle["busy_seconds"] + idle["idle_seconds"]
    )
    assert sum(idle["by_blocker"].values()) == pytest.approx(
        idle["idle_seconds"], rel=1e-6
    )
    assert set(idle["by_blocker"]) <= set(BLOCKERS)
    assert 0.0 < idle["busy_fraction"] <= 1.0


def test_fig2_vs_fig3_contrast():
    """The paper's qualitative claim, quantified: the data-flow variant
    overlaps phases; MPI-only spends more core-time blocked on comm.

    Uses the golden small configs (the tiny fixtures above are too short
    for the steady-state contrast to emerge through startup effects).
    """
    import dataclasses

    from repro.verify import default_golden_specs

    specs = default_golden_specs()
    a = run_simulation(
        dataclasses.replace(specs["mpi_only_small"], profile=True)
    ).profile
    b = run_simulation(
        dataclasses.replace(specs["tampi_dataflow_small"], profile=True)
    ).profile
    assert a.overlap_fraction == 0.0  # no tasks: alternation by definition
    assert b.overlap_fraction > 0.1
    assert b.comm_blocked_fraction < a.comm_blocked_fraction


def test_mpi_only_idle_is_wait_dominated(mpi_result):
    by = mpi_result.profile.idle["by_blocker"]
    assert by.get("mpi_wait", 0.0) > 0.0
    assert set(by) <= {"mpi_wait", "collective"}


def test_profiler_metrics_cover_all_layers(tampi_result):
    reg = tampi_result.profile.metrics_registry()
    names = set(reg.names())
    assert "kernel.events" in names
    assert "runtime.tasks_spawned" in names
    assert "runtime.ready_depth" in names
    assert "runtime.wait_to_run" in names
    assert "runtime.pops" in names
    assert "tampi.requests_bound" in names
    assert "tampi.iwait" in names
    assert "mpi.calls" in names
    assert "mpi.message_bytes" in names


def test_phase_summary_attached(tampi_result):
    ps = tampi_result.phase_summary
    assert ps is not None
    assert ps.phase_times.get("timestep", 0.0) > 0.0
    assert ps.events > 0
    assert ps.dropped_events == 0


# ----------------------------------------------------------------------
# Serialization: report round-trip, cache flow-through, fingerprints
# ----------------------------------------------------------------------
def test_profile_report_json_round_trip(tampi_result):
    report = tampi_result.profile
    dump = json.dumps(report.to_dict(), sort_keys=True)
    back = ProfileReport.from_dict(json.loads(dump))
    assert back == report
    assert json.dumps(back.to_dict(), sort_keys=True) == dump


def test_run_result_round_trip_keeps_profile(tampi_result):
    from repro.core.results import RunResult

    dump = json.loads(json.dumps(tampi_result.to_dict()))
    back = RunResult.from_dict(dump)
    assert back == tampi_result
    assert back.profile == tampi_result.profile
    assert back.phase_summary == tampi_result.phase_summary
    assert back.tracer is None and back.profiler is None


def test_profiled_run_flows_through_cache(tmp_path):
    spec = profiled_spec("tampi_dataflow")
    cache = ResultCache(tmp_path / "cache")
    first = SweepEngine(jobs=1, cache=cache).run([spec])
    assert first.failed == 0
    assert len(cache) == 1
    second = SweepEngine(jobs=1, cache=cache).run([spec])
    (res,) = second.results
    assert res.profile is not None
    assert res.profile == first.results[0].profile
    assert res.profile.overlap_fraction > 0.0


def test_profile_off_spec_dict_is_unchanged():
    """Fingerprint stability: a profile-off spec serializes without the
    new fields, so pre-existing fingerprints (and goldens) are intact."""
    spec = RunSpec(
        config=small_config(), machine="laptop", variant="mpi_only",
        ranks_per_node=2,
    )
    d = spec.resolve().to_dict()
    assert "profile" not in d
    assert "trace_max_events" not in d
    on = profiled_spec("mpi_only")
    assert on.resolve().to_dict()["profile"] is True
    assert on.fingerprint() != spec.fingerprint()
    assert RunSpec.from_dict(on.resolve().to_dict()).profile is True


def test_profile_field_survives_spec_round_trip():
    spec = profiled_spec("tampi_dataflow", trace_max_events=500)
    back = RunSpec.from_dict(spec.resolve().to_dict())
    assert back.profile is True
    assert back.trace_max_events == 500


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
def test_chrome_trace_schema(tampi_result, tmp_path):
    events = chrome_trace_events(
        tampi_result.profiler, variant="tampi_dataflow"
    )
    assert events
    for ev in events:
        assert ev["ph"] in ("X", "M")
        assert isinstance(ev["pid"], int)
        if ev["ph"] == "X":
            assert ev["ts"] >= 0 and ev["dur"] >= 0
            assert isinstance(ev["tid"], int)
    assert any(ev["ph"] == "M" for ev in events)
    path = tmp_path / "trace.json"
    n = write_chrome_trace(tampi_result.profiler, path)
    doc = json.loads(path.read_text())
    assert len(doc["traceEvents"]) == n == len(events)


def test_ascii_summary_and_compare(mpi_result, tampi_result):
    text = ascii_summary(tampi_result.profile)
    assert "tampi_dataflow" in text
    assert "critical path" in text
    assert "idle gaps" in text
    cmp_text = compare_reports(mpi_result.profile, tampi_result.profile)
    assert "mpi_only" in cmp_text and "tampi_dataflow" in cmp_text
    assert "overlap" in cmp_text


def test_metrics_exports(tampi_result):
    report = tampi_result.profile
    doc = json.loads(metrics_json(report))
    assert doc == report.metrics
    csv_text = metrics_csv(report)
    assert csv_text.splitlines()[0].startswith("name,labels,")
    assert len(csv_text.splitlines()) == len(report.metrics) + 1


# ----------------------------------------------------------------------
# Tracer ring buffer (bounded-memory mode)
# ----------------------------------------------------------------------
class TestTracerRingBuffer:
    def test_drops_oldest_and_counts(self):
        from repro.trace import Tracer

        t = Tracer(max_events=3)
        for i in range(5):
            t.mpi_event(0, f"call{i}", float(i), float(i) + 0.5)
        assert len(t.events) == 3
        assert t.dropped_events == 2
        assert [e.name for e in t.events] == ["call2", "call3", "call4"]

    def test_unbounded_by_default(self):
        from repro.trace import Tracer

        t = Tracer()
        for i in range(100):
            t.mpi_event(0, "x", float(i), float(i))
        assert len(t.events) == 100
        assert t.dropped_events == 0

    def test_invalid_max_events(self):
        from repro.trace import Tracer

        with pytest.raises(ValueError):
            Tracer(max_events=0)

    def test_spec_validates_trace_max_events(self):
        with pytest.raises(ValueError):
            RunSpec(
                config=small_config(), machine="laptop",
                variant="mpi_only", trace_max_events=-5,
            ).resolve()

    def test_bounded_trace_run_reports_drops(self):
        res = run_simulation(
            RunSpec(
                config=small_config(), machine="laptop",
                variant="tampi_dataflow", ranks_per_node=2,
                trace=True, trace_max_events=50,
            )
        )
        assert len(res.tracer.events) == 50
        assert res.tracer.dropped_events > 0
        assert res.phase_summary.dropped_events == res.tracer.dropped_events
        assert res.phase_summary.events == 50


# ----------------------------------------------------------------------
# trace.analysis edge cases (satellite: empty tracer, degenerate
# windows, single-rank runs)
# ----------------------------------------------------------------------
class TestAnalysisEdgeCases:
    def test_empty_tracer(self):
        from repro.trace import Tracer
        from repro.trace.analysis import (
            mpi_time_by_call,
            overlap_fraction,
            phase_time,
            task_time_by_phase,
            unpack_follows_gap_fraction,
        )

        t = Tracer()
        assert phase_time(t, "timestep") == 0.0
        assert mpi_time_by_call(t) == {}
        assert task_time_by_phase(t) == {}
        assert overlap_fraction(t, 0, "stencil", "pack") == 0.0
        assert unpack_follows_gap_fraction(t, 0) == 0.0
        assert t.summarize() == "empty trace"

    def test_zero_duration_window_raises(self):
        from repro.trace import Tracer
        from repro.trace.analysis import core_utilization

        t = Tracer()
        with pytest.raises(ValueError):
            core_utilization(t, 0, 2, 1.0, 1.0)
        with pytest.raises(ValueError):
            core_utilization(t, 0, 2, 2.0, 1.0)

    def test_utilization_of_empty_tracer_is_zero(self):
        from repro.trace import Tracer
        from repro.trace.analysis import core_utilization

        rep = core_utilization(Tracer(), 0, 2, 0.0, 1.0)
        assert rep.busy_fraction == 0.0
        assert rep.gaps == [(0.0, 1.0), (0.0, 1.0)]  # one per core
        assert rep.max_gap == 1.0

    def test_single_rank_run(self):
        cfg = small_config(
            num_ranks=1, npx=1, init_x=2
        )
        res = run_simulation(
            RunSpec(
                config=cfg, machine="laptop", variant="tampi_dataflow",
                num_nodes=1, ranks_per_node=1, profile=True,
            )
        )
        report = res.profile
        assert report.tasks > 0
        assert 0.0 < report.critical_path_length <= res.total_time + 1e-9
        assert report.idle["per_rank"][0]["rank"] == 0
        # One rank: any point-to-point traffic is at most self-sends.
        idle = report.idle
        assert idle["core_seconds"] == pytest.approx(
            report.cores_per_rank * res.total_time
        )

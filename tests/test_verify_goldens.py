"""Golden-result store: keys, roundtrip, drift detection, committed files."""

import json
from dataclasses import replace

import pytest

from repro import run_simulation
from repro.cli import main
from repro.verify import (
    GoldenMismatchError,
    GoldenStore,
    default_golden_specs,
    expected_from_result,
    golden_key,
)


@pytest.fixture(scope="module")
def quick_specs():
    return default_golden_specs(quick=True)


@pytest.fixture(scope="module")
def quick_result(quick_specs):
    return run_simulation(quick_specs["mpi_only_small"])


# ----------------------------------------------------------------------
# Keys
# ----------------------------------------------------------------------
def test_golden_key_is_stable_and_content_addressed(quick_specs):
    spec = quick_specs["mpi_only_small"]
    assert golden_key(spec) == golden_key(spec)
    assert golden_key(spec) != golden_key(quick_specs["fork_join_small"])
    assert golden_key(spec) != golden_key(replace(spec, scheduler="fifo"))


def test_golden_key_ignores_package_version(monkeypatch, quick_specs):
    """Goldens assert stability ACROSS versions (unlike the result cache)."""
    import repro

    spec = quick_specs["mpi_only_small"]
    before = golden_key(spec)
    monkeypatch.setattr(repro, "__version__", "999.0.0")
    assert golden_key(spec) == before
    assert spec.fingerprint() != before  # cache key: version-sensitive


# ----------------------------------------------------------------------
# Store roundtrip & drift
# ----------------------------------------------------------------------
def test_store_roundtrip_clean(tmp_path, quick_specs, quick_result):
    store = GoldenStore(tmp_path / "goldens")
    spec = quick_specs["mpi_only_small"]
    assert "g" not in store
    store.save("g", spec, quick_result)
    assert "g" in store and store.names() == ["g"]
    assert store.compare("g", spec, quick_result) == []
    store.check("g", spec, quick_result)  # does not raise


def test_missing_golden_is_a_problem(tmp_path, quick_specs, quick_result):
    store = GoldenStore(tmp_path / "goldens")
    problems = store.compare(
        "nope", quick_specs["mpi_only_small"], quick_result
    )
    assert problems and "no golden on file" in problems[0]


def test_corrupted_expectation_is_drift(tmp_path, quick_specs, quick_result):
    store = GoldenStore(tmp_path / "goldens")
    spec = quick_specs["mpi_only_small"]
    store.save("g", spec, quick_result)
    envelope = json.loads(store.path("g").read_text())
    envelope["expected"]["checksums"][0][1][0] += 1e-6
    envelope["expected"]["messages"] += 1
    store.path("g").write_text(json.dumps(envelope))
    problems = store.compare("g", spec, quick_result)
    assert any("messages" in p for p in problems)
    assert any("checksums[0]" in p for p in problems)
    with pytest.raises(GoldenMismatchError, match="golden drift"):
        store.check("g", spec, quick_result)


def test_spec_key_mismatch_is_reported(tmp_path, quick_specs, quick_result):
    store = GoldenStore(tmp_path / "goldens")
    spec = quick_specs["mpi_only_small"]
    store.save("g", spec, quick_result)
    changed = replace(spec, sched_seed=9)
    problems = store.compare("g", changed, quick_result)
    assert any("spec key changed" in p for p in problems)


def test_expected_payload_fields(quick_result):
    expected = expected_from_result(quick_result)
    for key in ("total_time", "flops", "num_blocks", "checksums",
                "messages", "tasks_spawned", "tasks_executed"):
        assert key in expected
    assert expected["checksums"], "at least one validation recorded"


# ----------------------------------------------------------------------
# The committed goldens/ directory stays in sync with the code
# ----------------------------------------------------------------------
def test_committed_goldens_match_default_specs():
    store = GoldenStore("goldens")
    specs = default_golden_specs()
    assert store.names() == sorted(specs)
    for name, spec in specs.items():
        envelope = store.load(name)
        assert envelope["key"] == golden_key(spec), (
            f"{name}: default_golden_specs() drifted from the committed "
            f"golden; regenerate with `miniamr-sim verify --update-goldens`"
        )


# ----------------------------------------------------------------------
# CLI: miniamr-sim verify
# ----------------------------------------------------------------------
def _verify_argv(goldens_dir, *extra):
    return [
        "verify", "--quick", "--skip-fuzz", "--skip-race",
        "--goldens-dir", str(goldens_dir), *extra,
    ]


def test_cli_verify_update_then_pass_then_corrupt(tmp_path, capsys):
    goldens = tmp_path / "goldens"
    assert main(_verify_argv(goldens, "--update-goldens")) == 0
    assert main(_verify_argv(goldens)) == 0
    assert "all checks passed" in capsys.readouterr().out

    # Seeded corruption: any tampering must flip the exit code.
    store = GoldenStore(goldens)
    envelope = json.loads(store.path("tampi_dataflow_small").read_text())
    envelope["expected"]["tasks_executed"] += 1
    store.path("tampi_dataflow_small").write_text(json.dumps(envelope))
    assert main(_verify_argv(goldens)) == 1
    out = capsys.readouterr().out
    assert "DRIFT" in out and "tasks_executed" in out


def test_cli_verify_missing_goldens_fails(tmp_path, capsys):
    assert main(_verify_argv(tmp_path / "empty")) == 1
    assert "no golden on file" in capsys.readouterr().out

"""repro.faults: deterministic fault injection, end to end.

The load-bearing checks:

* **bit-reproducibility** — the same spec + plan yields an identical
  :class:`RunResult` (fault ledger included); a different fault seed
  yields a different run;
* **fingerprint hygiene** — fault-off specs (``faults=None`` or an
  *inactive* plan) fingerprint, cache and golden-key byte-identically
  to pre-faults specs, so the committed ``goldens/`` never move;
* **the resilience claim** — under the same injected noise, the TAMPI
  data-flow variant's relative slowdown sits strictly below fork-join's
  (the quantitative form of the paper's imbalance argument);
* **reconciliation** — injected perturbations show up in the observed
  idle-gap taxonomy (``fault_noise`` / ``fault_retry`` blockers) of a
  profiled run.
"""

import json
from dataclasses import replace

import pytest

from repro import (
    FaultPlan,
    NetworkSpec,
    noise_plan,
    run_simulation,
    straggler_plan,
)
from repro.bench import resilience
from repro.cli import main
from repro.core import RunResult
from repro.exec import retry_jitter
from repro.faults import FaultInjector, FaultRng, FaultStats
from repro.obs import BLOCKERS, COMM_BLOCKED
from repro.verify import default_golden_specs, golden_key


@pytest.fixture(scope="module")
def quick_specs():
    return default_golden_specs(quick=True)


@pytest.fixture(scope="module")
def noisy_spec(quick_specs):
    return replace(
        quick_specs["tampi_dataflow_small"], faults=noise_plan(1.0)
    )


@pytest.fixture(scope="module")
def noisy_result(noisy_spec):
    return run_simulation(noisy_spec)


# ----------------------------------------------------------------------
# FaultPlan: validation, activity, scaling, serialization
# ----------------------------------------------------------------------
@pytest.mark.parametrize("bad", [
    dict(seed=-1),
    dict(cpu_noise_factor=-0.1),
    dict(message_loss_rate=1.0),
    dict(message_loss_rate=-0.5),
    dict(straggler_factor=0.5),
    dict(straggler_ranks=(-1,)),
    dict(degrade_latency_factor=0.9),
    dict(degrade_bandwidth_factor=0.0),
    dict(degrade_windows=((0.2, 0.1),)),
    dict(degrade_windows=((-1.0, 1.0),)),
    dict(retry_backoff=0.5),
    dict(max_retries=-1),
])
def test_plan_rejects_invalid_parameters(bad):
    with pytest.raises(ValueError):
        FaultPlan(**bad)


def test_plan_activity():
    assert not FaultPlan().is_active()
    assert not FaultPlan(seed=7).is_active()  # seed alone injects nothing
    assert not FaultPlan(straggler_ranks=(0,)).is_active()  # factor 1
    assert not FaultPlan(degrade_windows=((0.0, 1.0),)).is_active()
    assert noise_plan(1.0).is_active()
    assert straggler_plan().is_active()
    assert FaultPlan(
        degrade_windows=((0.0, 1.0),), degrade_latency_factor=2.0
    ).is_active()


def test_plan_scaled_endpoints():
    plan = noise_plan(1.0, seed=5)
    assert plan.scaled(1.0) == plan
    assert not plan.scaled(0.0).is_active()
    half = plan.scaled(0.5)
    assert half.cpu_noise_factor == pytest.approx(plan.cpu_noise_factor / 2)
    assert half.message_loss_rate == pytest.approx(
        plan.message_loss_rate / 2
    )
    assert half.seed == plan.seed  # structural fields stay fixed
    assert half.retry_timeout == plan.retry_timeout
    with pytest.raises(ValueError):
        plan.scaled(-0.1)


def test_plan_scaled_interpolates_factors_from_one():
    plan = straggler_plan(ranks=(1,), factor=3.0)
    assert plan.scaled(0.5).straggler_factor == pytest.approx(2.0)
    assert not plan.scaled(0.0).is_active()


def test_plan_scaled_clamps_loss_probability_into_range():
    """Regression: scaling up must never yield a loss *probability*
    outside [0, 1) — the scaled plan has to pass its own validation."""
    from repro.faults import MAX_MESSAGE_LOSS_RATE

    plan = noise_plan(1.0)  # 2% loss at intensity 1
    for intensity in (49.0, 50.0, 1e6):
        scaled = plan.scaled(intensity)
        assert 0.0 <= scaled.message_loss_rate < 1.0
        # Round-trips through validation and JSON untouched.
        assert FaultPlan.from_dict(scaled.to_dict()) == scaled
    assert plan.scaled(1e6).message_loss_rate == MAX_MESSAGE_LOSS_RATE
    # Unsaturated scaling stays exactly linear.
    assert plan.scaled(10.0).message_loss_rate == pytest.approx(0.2)


def test_plan_scaled_identity_near_the_probability_boundary():
    """scaled(1) must be the identity for every valid plan — including
    loss rates in (0.999, 1), which an arbitrary hard cap used to
    silently rewrite."""
    from repro.faults import MAX_MESSAGE_LOSS_RATE

    for rate in (0.999, 0.9995, MAX_MESSAGE_LOSS_RATE):
        plan = FaultPlan(message_loss_rate=rate)
        assert plan.scaled(1.0) == plan
    # The boundary itself is invalid, one ulp below is the maximum.
    with pytest.raises(ValueError):
        FaultPlan(message_loss_rate=1.0)
    FaultPlan(message_loss_rate=MAX_MESSAGE_LOSS_RATE)  # largest valid


def test_plan_scaled_rates_and_durations_are_not_clamped():
    """Only probabilities clamp: jitter and burst rate are unbounded
    physical quantities and keep scaling linearly."""
    plan = noise_plan(1.0)
    big = plan.scaled(100.0)
    assert big.message_jitter == pytest.approx(plan.message_jitter * 100)
    assert big.cpu_burst_rate == pytest.approx(plan.cpu_burst_rate * 100)


def test_plan_json_round_trip():
    plan = noise_plan(0.7, seed=5).with_overrides(
        straggler_ranks=(0, 3), straggler_factor=1.5,
        degrade_windows=((0.001, 0.002),), degrade_latency_factor=2.0,
    )
    wire = json.loads(json.dumps(plan.to_dict()))
    assert FaultPlan.from_dict(wire) == plan


def test_plan_from_dict_rejects_unknown_fields():
    with pytest.raises(ValueError, match="unknown FaultPlan fields"):
        FaultPlan.from_dict({"seed": 1, "flux_capacitor": True})


# ----------------------------------------------------------------------
# Fingerprints and goldens: fault-off must be byte-identical
# ----------------------------------------------------------------------
def test_inactive_plan_fingerprints_like_no_faults(quick_specs):
    spec = quick_specs["tampi_dataflow_small"]
    inert = replace(spec, faults=FaultPlan())
    assert inert.fingerprint() == spec.fingerprint()
    assert golden_key(inert) == golden_key(spec)
    # the resolved canonical JSON is byte-identical, not merely hash-equal
    a = json.dumps(spec.resolve().to_dict(), sort_keys=True)
    b = json.dumps(inert.resolve().to_dict(), sort_keys=True)
    assert a == b
    assert "faults" not in spec.to_dict()


def test_active_plan_changes_fingerprint(quick_specs):
    spec = quick_specs["tampi_dataflow_small"]
    noisy = replace(spec, faults=noise_plan(1.0))
    assert noisy.fingerprint() != spec.fingerprint()
    assert golden_key(noisy) != golden_key(spec)
    reseeded = replace(spec, faults=noise_plan(1.0, seed=7))
    assert reseeded.fingerprint() != noisy.fingerprint()


def test_spec_round_trips_fault_plan(quick_specs):
    from repro.core import RunSpec

    noisy = replace(quick_specs["fork_join_small"], faults=noise_plan(0.5))
    wire = json.loads(json.dumps(noisy.to_dict()))
    assert RunSpec.from_dict(wire) == noisy


def test_committed_golden_keys_survive_inactive_plans():
    """The on-disk goldens' keys must match fault-off specs exactly —
    attaching an inactive plan cannot move them either."""
    for name, spec in default_golden_specs().items():
        with open(f"goldens/{name}.json") as fh:
            stored = json.load(fh)
        assert stored["key"] == golden_key(spec)
        assert stored["key"] == golden_key(replace(spec, faults=FaultPlan()))


# ----------------------------------------------------------------------
# Bit-reproducibility of faulty runs
# ----------------------------------------------------------------------
def test_faulty_run_is_bit_reproducible(noisy_spec, noisy_result):
    again = run_simulation(noisy_spec)
    assert again == noisy_result  # RunResult equality includes fault_stats
    assert again.total_time == noisy_result.total_time
    assert again.fault_stats == noisy_result.fault_stats


def test_fault_seed_changes_the_run(noisy_spec, noisy_result):
    reseeded = replace(noisy_spec, faults=noise_plan(1.0, seed=7))
    other = run_simulation(reseeded)
    assert other.total_time != noisy_result.total_time


def test_inactive_plan_runs_identically_to_no_faults(quick_specs):
    spec = quick_specs["mpi_only_small"]
    clean = run_simulation(spec)
    inert = run_simulation(replace(spec, faults=FaultPlan()))
    assert inert == clean
    assert clean.fault_stats is None
    assert "fault_stats" not in clean.to_dict()


def test_fault_stats_ledger_and_round_trip(noisy_result):
    fs = noisy_result.fault_stats
    assert fs is not None
    assert fs["injected_cpu_seconds"] > 0
    assert fs["cpu_noise_events"] > 0
    assert fs["injected_network_seconds"] > 0
    assert fs["messages_delayed"] > 0
    assert noisy_result.total_time > 0
    wire = json.loads(json.dumps(noisy_result.to_dict()))
    assert RunResult.from_dict(wire).fault_stats == fs


# ----------------------------------------------------------------------
# Injector mechanics: streams, stragglers, degradation windows
# ----------------------------------------------------------------------
def test_rng_streams_are_deterministic_and_independent():
    a = FaultRng(5, "jitter", 0)
    b = FaultRng(5, "jitter", 0)
    seq = [a.uniform() for _ in range(64)]
    assert seq == [b.uniform() for _ in range(64)]
    assert all(0.0 <= u < 1.0 for u in seq)
    # kind and rank each select a distinct stream
    assert seq != [FaultRng(5, "loss", 0).uniform() for _ in range(64)]
    assert seq != [FaultRng(5, "jitter", 1).uniform() for _ in range(64)]
    assert seq != [FaultRng(6, "jitter", 0).uniform() for _ in range(64)]


def test_straggler_stretch_is_exact():
    inj = FaultInjector(
        straggler_plan(ranks=(0,), factor=2.0), NetworkSpec(), num_ranks=2
    )
    assert inj.cpu_stretch(0, 1.0, 0.0) == pytest.approx(2.0)
    assert inj.cpu_stretch(1, 1.0, 0.0) == pytest.approx(1.0)
    assert inj.stats.injected_cpu_seconds == pytest.approx(1.0)


def test_degradation_window_is_time_gated():
    net = NetworkSpec()
    plan = FaultPlan(
        degrade_windows=((0.0, 1.0),), degrade_latency_factor=2.0
    )
    inj = FaultInjector(plan, net, num_ranks=2)
    inside = inj.message_delay(0, 1, 1024, False, now=0.5)
    assert inside == pytest.approx(net.latency_inter)  # (factor-1) x latency
    assert inj.message_delay(0, 1, 1024, False, now=2.0) == 0.0
    assert inj.stats.messages_degraded == 1


def test_fault_blockers_are_registered():
    assert "fault_noise" in BLOCKERS
    assert "fault_retry" in BLOCKERS
    assert "fault_retry" in COMM_BLOCKED
    assert "fault_noise" not in COMM_BLOCKED  # CPU noise is not comm


# ----------------------------------------------------------------------
# Observability: injected vs observed reconciliation
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def profiled_noisy_report(quick_specs):
    spec = replace(
        quick_specs["fork_join_small"], profile=True, faults=noise_plan(1.0)
    )
    return run_simulation(spec).profile


def test_profiled_run_reports_injected_vs_observed(profiled_noisy_report):
    report = profiled_noisy_report
    assert report.faults
    injected = report.faults["injected"]
    observed = report.faults["observed"]
    assert injected["injected_cpu_seconds"] > 0
    assert set(observed) == {"fault_noise", "fault_retry"}
    assert all(v >= 0 for v in observed.values())
    # observed fault idle is part of the taxonomy, not on top of it
    by_blocker = report.idle.get("by_blocker", {})
    for cls in ("fault_noise", "fault_retry"):
        assert by_blocker.get(cls, 0.0) == pytest.approx(observed[cls])


def test_profile_report_round_trips_faults(profiled_noisy_report):
    from repro.obs import ProfileReport, ascii_summary

    wire = json.loads(json.dumps(profiled_noisy_report.to_dict()))
    back = ProfileReport.from_dict(wire)
    assert back.faults == profiled_noisy_report.faults
    text = ascii_summary(profiled_noisy_report)
    assert "injected faults" in text


def test_clean_profile_has_no_fault_section(quick_specs):
    spec = replace(quick_specs["fork_join_small"], profile=True)
    report = run_simulation(spec).profile
    assert report.faults == {}
    assert "faults" not in report.to_dict()


# ----------------------------------------------------------------------
# Resilience: TAMPI+OSS must degrade less than fork-join
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def resilience_quick():
    return resilience(intensities=(1.0,), quick=True, seed=2020)


def test_resilience_tampi_beats_fork_join(resilience_quick):
    res = resilience_quick
    fj = res.slowdown_at("fork_join", 1.0)
    td = res.slowdown_at("tampi_dataflow", 1.0)
    assert fj > 1.0  # injected noise really hurts the bulk-sync variant
    assert td < fj  # the data-flow pool absorbs what fork-join amplifies
    assert res.slowdown_at("tampi_dataflow", 0.0) == pytest.approx(1.0)


def test_resilience_structure_and_csv(resilience_quick):
    res = resilience_quick
    # intensity 0 is always included as the per-variant baseline
    assert {p.intensity for p in res.points} == {0.0, 1.0}
    for p in res.points:
        assert p.slowdown == pytest.approx(
            p.total_time / res.series(p.variant)[0].total_time
        )
        assert (p.fault_stats is None) == (p.intensity == 0.0)
    csv = res.to_csv()
    assert csv.splitlines()[0] == "intensity,variant,total_time,slowdown"
    assert len(csv.splitlines()) == 1 + len(res.points)
    assert "Resilience" in res.text


# ----------------------------------------------------------------------
# Seeded sweep-retry jitter
# ----------------------------------------------------------------------
def test_retry_jitter_is_seeded_by_fingerprint():
    j = retry_jitter("abc123", 1)
    assert j == retry_jitter("abc123", 1)  # no wall-clock involved
    assert 0.0 <= j < 1.0
    assert retry_jitter("abc123", 2) != j
    assert retry_jitter("def456", 1) != j


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
QUICK_RUN = [
    "--variant", "tampi_dataflow", "--preset", "laptop",
    "--nodes", "1", "--ranks-per-node", "2", "--root", "2", "2", "1",
    "--nx", "4", "--num-vars", "2", "--tsteps", "1", "--stages", "2",
    "--checksum-freq", "2", "--max-refine-level", "1",
]


def test_cli_version(capsys):
    from repro import __version__

    with pytest.raises(SystemExit) as exc:
        main(["--version"])
    assert exc.value.code == 0
    assert f"miniamr-sim {__version__}" in capsys.readouterr().out


def test_cli_run_with_fault_noise(capsys):
    assert main(["run", *QUICK_RUN, "--fault-noise", "1.0"]) == 0
    out = capsys.readouterr().out
    assert "injected faults:" in out


def test_cli_run_without_faults_stays_silent(capsys):
    assert main(["run", *QUICK_RUN]) == 0
    assert "injected faults" not in capsys.readouterr().out


def test_cli_rejects_negative_fault_noise(capsys):
    assert main(["run", *QUICK_RUN, "--fault-noise", "-1"]) == 2
    assert "miniamr-sim: error" in capsys.readouterr().err


def test_cli_invalid_spec_exits_2(capsys):
    # 4 ranks cannot be laid out on a 3x3x3 root grid
    argv = list(QUICK_RUN)
    argv[argv.index("--root") + 1:argv.index("--root") + 4] = ["3", "3", "3"]
    assert main(["run", *argv]) == 2
    assert "miniamr-sim: error" in capsys.readouterr().err


def test_cli_faults_subcommand(tmp_path, capsys):
    csv_path = tmp_path / "curve.csv"
    rc = main([
        "faults", "--quick", "--intensities", "1.0", "--nodes", "1",
        "--no-cache", "--csv", str(csv_path),
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Resilience" in out
    assert "tampi_dataflow" in out
    lines = csv_path.read_text().strip().splitlines()
    assert lines[0] == "intensity,variant,total_time,slowdown"
    assert len(lines) == 7  # header + 3 variants x 2 intensities

"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.simx import (
    AllOf,
    AnyOf,
    EmptySchedule,
    Environment,
    Event,
    EventAlreadyTriggered,
    Interrupt,
    NotTriggeredError,
    StaleProcessError,
)


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_clock_custom_start():
    env = Environment(initial_time=5.0)
    assert env.now == 5.0


def test_timeout_advances_clock():
    env = Environment()

    def proc(env):
        yield env.timeout(2.5)

    env.process(proc(env))
    env.run()
    assert env.now == 2.5


def test_timeout_value_passed_to_process():
    env = Environment()
    seen = []

    def proc(env):
        value = yield env.timeout(1.0, value="hello")
        seen.append(value)

    env.process(proc(env))
    env.run()
    assert seen == ["hello"]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1)


def test_process_return_value():
    env = Environment()

    def proc(env):
        yield env.timeout(1)
        return 42

    p = env.process(proc(env))
    result = env.run(until=p)
    assert result == 42


def test_sequential_timeouts_accumulate():
    env = Environment()
    times = []

    def proc(env):
        for delay in (1.0, 2.0, 3.0):
            yield env.timeout(delay)
            times.append(env.now)

    env.process(proc(env))
    env.run()
    assert times == [1.0, 3.0, 6.0]


def test_two_processes_interleave_deterministically():
    env = Environment()
    order = []

    def proc(env, name, delay):
        yield env.timeout(delay)
        order.append((name, env.now))

    env.process(proc(env, "a", 2))
    env.process(proc(env, "b", 1))
    env.run()
    assert order == [("b", 1), ("a", 2)]


def test_simultaneous_events_fire_in_schedule_order():
    env = Environment()
    order = []

    def proc(env, name):
        yield env.timeout(1.0)
        order.append(name)

    for name in "abcd":
        env.process(proc(env, name))
    env.run()
    assert order == list("abcd")


def test_run_until_time_stops_midway():
    env = Environment()
    done = []

    def proc(env):
        yield env.timeout(10)
        done.append(True)

    env.process(proc(env))
    env.run(until=5)
    assert env.now == 5
    assert not done
    env.run()
    assert done


def test_run_until_past_time_raises():
    env = Environment(initial_time=10)
    with pytest.raises(ValueError):
        env.run(until=5)


def test_event_succeed_wakes_waiter():
    env = Environment()
    got = []

    def waiter(env, ev):
        value = yield ev
        got.append(value)

    def trigger(env, ev):
        yield env.timeout(3)
        ev.succeed("payload")

    ev = env.event()
    env.process(waiter(env, ev))
    env.process(trigger(env, ev))
    env.run()
    assert got == ["payload"]


def test_event_double_trigger_raises():
    env = Environment()
    ev = env.event()
    ev.succeed()
    with pytest.raises(EventAlreadyTriggered):
        ev.succeed()


def test_event_value_before_trigger_raises():
    env = Environment()
    ev = env.event()
    with pytest.raises(NotTriggeredError):
        _ = ev.value


def test_event_fail_propagates_into_process():
    env = Environment()
    caught = []

    def waiter(env, ev):
        try:
            yield ev
        except RuntimeError as exc:
            caught.append(str(exc))

    ev = env.event()
    env.process(waiter(env, ev))
    env.process(iter_fail(env, ev))
    env.run()
    assert caught == ["boom"]


def iter_fail(env, ev):
    yield env.timeout(1)
    ev.fail(RuntimeError("boom"))


def test_unhandled_process_exception_crashes_run():
    env = Environment()

    def bad(env):
        yield env.timeout(1)
        raise ValueError("explode")

    env.process(bad(env))
    with pytest.raises(ValueError, match="explode"):
        env.run()


def test_wait_on_already_processed_event():
    env = Environment()
    got = []

    def late_waiter(env, ev):
        yield env.timeout(5)
        value = yield ev  # already processed by now
        got.append((value, env.now))

    ev = env.event()
    ev.succeed("early")
    env.process(late_waiter(env, ev))
    env.run()
    assert got == [("early", 5)]


def test_all_of_waits_for_every_event():
    env = Environment()
    times = []

    def proc(env):
        t1 = env.timeout(1, value="x")
        t2 = env.timeout(4, value="y")
        result = yield env.all_of([t1, t2])
        times.append(env.now)
        assert list(result.values()) == ["x", "y"]

    env.process(proc(env))
    env.run()
    assert times == [4]


def test_any_of_fires_on_first_event():
    env = Environment()
    times = []

    def proc(env):
        t1 = env.timeout(1, value="x")
        t2 = env.timeout(4, value="y")
        result = yield env.any_of([t1, t2])
        times.append(env.now)
        assert list(result.values()) == ["x"]

    env.process(proc(env))
    env.run()
    assert times == [1]


def test_all_of_empty_fires_immediately():
    env = Environment()
    done = []

    def proc(env):
        yield env.all_of([])
        done.append(env.now)

    env.process(proc(env))
    env.run()
    assert done == [0.0]


def test_condition_fails_if_member_fails():
    env = Environment()
    caught = []

    def proc(env, ev):
        try:
            yield env.all_of([ev, env.timeout(10)])
        except KeyError:
            caught.append(env.now)

    def failer(env, ev):
        yield env.timeout(2)
        ev.fail(KeyError("nope"))

    ev = env.event()
    env.process(proc(env, ev))
    env.process(failer(env, ev))
    env.run()
    assert caught == [2]


def test_interrupt_delivers_cause():
    env = Environment()
    causes = []

    def victim(env):
        try:
            yield env.timeout(100)
        except Interrupt as exc:
            causes.append((exc.cause, env.now))

    def attacker(env, victim_proc):
        yield env.timeout(3)
        victim_proc.interrupt("stop it")

    v = env.process(victim(env))
    env.process(attacker(env, v))
    env.run()
    assert causes == [("stop it", 3)]


def test_interrupt_terminated_process_raises():
    env = Environment()

    def quick(env):
        yield env.timeout(1)

    p = env.process(quick(env))
    env.run()
    with pytest.raises(StaleProcessError):
        p.interrupt()


def test_step_on_empty_schedule_raises():
    env = Environment()
    with pytest.raises(EmptySchedule):
        env.step()


def test_peek_returns_next_event_time():
    env = Environment()
    env.timeout(7)
    assert env.peek() == 7


def test_peek_empty_is_inf():
    env = Environment()
    assert env.peek() == float("inf")


def test_process_is_alive_lifecycle():
    env = Environment()

    def proc(env):
        yield env.timeout(2)

    p = env.process(proc(env))
    assert p.is_alive
    env.run()
    assert not p.is_alive


def test_yield_non_event_raises():
    env = Environment()

    def bad(env):
        yield 42

    env.process(bad(env))
    with pytest.raises(TypeError, match="non-event"):
        env.run()


def test_nested_process_wait():
    env = Environment()
    results = []

    def child(env):
        yield env.timeout(2)
        return "child-done"

    def parent(env):
        value = yield env.process(child(env))
        results.append((value, env.now))

    env.process(parent(env))
    env.run()
    assert results == [("child-done", 2)]


def test_many_processes_scale():
    env = Environment()
    count = []

    def proc(env, i):
        yield env.timeout(i % 10)
        count.append(i)

    for i in range(500):
        env.process(proc(env, i))
    env.run()
    assert len(count) == 500


def test_run_until_untriggered_event_after_exhaustion_raises():
    env = Environment()
    ev = env.event()

    def proc(env):
        yield env.timeout(1)

    env.process(proc(env))
    with pytest.raises(RuntimeError, match="ended before"):
        env.run(until=ev)

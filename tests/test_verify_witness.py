"""Access-witness race detector: coverage rules, attribution, end-to-end.

The acceptance property for this layer: a deliberately under-declared
dependency in a task (here, a stencil task spawned without its block
inout) must be caught with a message naming the task and the handle.
"""

from dataclasses import replace

import pytest

from repro import run_simulation
from repro.core import driver
from repro.core.variants.tampi_dataflow import TampiDataflowProgram
from repro.simx import Environment
from repro.tasking.regions import Region
from repro.tasking.task import AccessMode, Task
from repro.verify import (
    READ,
    WRITE,
    AccessRaceError,
    AccessWitness,
    covers,
    default_golden_specs,
)


# ----------------------------------------------------------------------
# covers(): the coverage rules in isolation
# ----------------------------------------------------------------------
def test_read_covered_by_any_declared_mode():
    for mode in AccessMode:
        assert covers(mode, "h", READ, "h")


def test_write_requires_a_write_mode():
    assert not covers(AccessMode.IN, "h", WRITE, "h")
    for mode in (AccessMode.OUT, AccessMode.INOUT, AccessMode.COMMUTATIVE):
        assert covers(mode, "h", WRITE, "h")


def test_scalar_handles_cover_by_equality():
    assert covers(AccessMode.INOUT, ("blk", 1, 0), WRITE, ("blk", 1, 0))
    assert not covers(AccessMode.INOUT, ("blk", 1, 0), WRITE, ("blk", 2, 0))


def test_region_covers_by_containment_on_same_base():
    decl = Region("buf", 0, 100)
    assert covers(AccessMode.OUT, decl, WRITE, Region("buf", 10, 90))
    assert covers(AccessMode.OUT, decl, WRITE, Region("buf", 0, 100))
    assert not covers(AccessMode.OUT, decl, WRITE, Region("buf", 50, 101))
    assert not covers(AccessMode.OUT, decl, WRITE, Region("other", 10, 20))
    # A scalar declaration never covers a region touch (and vice versa).
    assert not covers(AccessMode.OUT, "buf", WRITE, Region("buf", 0, 10))


# ----------------------------------------------------------------------
# AccessWitness mechanics
# ----------------------------------------------------------------------
def _task(env, label, **kw):
    from repro.tasking.task import normalize_accesses

    return Task(env, label, accesses=normalize_accesses(**kw), phase=label)


def test_witness_flags_undeclared_touch_with_task_and_handle():
    env = Environment()
    w = AccessWitness(env)
    t = _task(env, "stencil b1", ins=[("blk", 1, 0)])
    w.task_begin(t, rank=0, timestep=3)
    w.touch(READ, ("blk", 1, 0))  # declared: fine
    w.touch(WRITE, ("blk", 1, 0))  # in does not permit a write
    w.touch(READ, ("blk", 2, 0))  # undeclared handle
    w.task_end(t)
    assert len(w.violations) == 2
    report = w.report()
    assert "stencil b1" in report
    assert "('blk', 1, 0)" in report and "('blk', 2, 0)" in report
    assert "timestep 3" in report
    with pytest.raises(AccessRaceError, match="stencil b1"):
        w.check()


def test_witness_clean_run_and_main_thread_touches_ignored():
    env = Environment()
    w = AccessWitness(env)
    w.touch(WRITE, "anything")  # outside any task: program-ordered
    t = _task(env, "ok", inouts=["h"])
    w.task_begin(t, rank=0)
    w.touch(READ, "h")
    w.touch(WRITE, "h")
    w.task_end(t)
    assert w.clean
    assert w.touches_checked == 2
    w.check()  # does not raise


def test_unchecked_tasks_are_exempt_but_still_framed():
    env = Environment()
    w = AccessWitness(env)
    outer = _task(env, "outer", ins=["h"])
    chunk = _task(env, "chunk")
    chunk.unchecked = True
    w.task_begin(outer, rank=0)
    w.task_begin(chunk, rank=0)
    # The chunk's touches must be swallowed, not attributed to `outer`.
    w.touch(WRITE, "something-outer-never-declared")
    w.task_end(chunk)
    w.task_end(outer)
    assert w.clean


def test_duplicate_violations_deduplicate_with_count():
    env = Environment()
    w = AccessWitness(env)
    t = _task(env, "loop", ins=["h"])
    w.task_begin(t, rank=0)
    for _ in range(5):
        w.touch(WRITE, "h")
    w.task_end(t)
    assert len(w.violations) == 1
    assert w.violations[0].count == 5
    assert "(x5)" in w.report()


# ----------------------------------------------------------------------
# End-to-end: RunSpec(check_access=True)
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "name", ["mpi_only_small", "fork_join_small", "tampi_dataflow_small"]
)
def test_all_variants_are_race_clean(name):
    spec = default_golden_specs(quick=True)[name]
    run_simulation(replace(spec, check_access=True))  # must not raise


class UnderDeclaredStencilProgram(TampiDataflowProgram):
    """Fixture: the stencil task 'forgets' its (block, group) inout."""

    def stencil(self, group):
        cfg = self.cfg
        vs = cfg.group_slice(group)
        nvars = cfg.group_size(group)
        cost = self.stencil_cost(nvars)
        for bid in sorted(self.blocks):
            yield from self.rt.spawn(
                f"stencil {bid.coords}",
                cost=cost,
                body=self._stencil_body(bid, vs),
                # BUG under test: no ins/inouts declared at all.
                phase="stencil",
            )
            self.count_stencil_flops(nvars)


def test_under_declared_stencil_is_caught(monkeypatch):
    monkeypatch.setitem(
        driver.VARIANTS, "tampi_dataflow", UnderDeclaredStencilProgram
    )
    spec = default_golden_specs(quick=True)["tampi_dataflow_small"]
    with pytest.raises(AccessRaceError) as exc:
        run_simulation(replace(spec, check_access=True))
    message = str(exc.value)
    assert "stencil" in message  # names the task
    assert "'blk'" in message  # names the handle
    assert "undeclared" in message

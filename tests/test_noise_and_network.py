"""Tests for the OS-noise model and the extended network model."""

import pytest

from repro.machine import CostSpec, NetworkSpec
from repro.machine.costmodel import NoiseModel


# ----------------------------------------------------------------------
# NoiseModel
# ----------------------------------------------------------------------
def test_noise_is_deterministic_per_rank():
    spec = CostSpec()
    a = NoiseModel(spec, rank=3)
    b = NoiseModel(spec, rank=3)
    seq_a = [a.stretch(1e-4) for _ in range(50)]
    seq_b = [b.stretch(1e-4) for _ in range(50)]
    assert seq_a == seq_b


def test_noise_differs_across_ranks():
    spec = CostSpec()
    a = NoiseModel(spec, rank=0)
    b = NoiseModel(spec, rank=1)
    assert [a.stretch(1e-4) for _ in range(10)] != [
        b.stretch(1e-4) for _ in range(10)
    ]


def test_noise_never_speeds_up():
    spec = CostSpec()
    noise = NoiseModel(spec, rank=7)
    for _ in range(200):
        assert noise.stretch(1e-4) >= 1e-4


def test_noise_amplitude_bound_without_spikes():
    spec = CostSpec(noise_amplitude=0.1, noise_spike_rate=0.0)
    noise = NoiseModel(spec, rank=2)
    for _ in range(200):
        stretched = noise.stretch(1e-3)
        assert stretched <= 1e-3 * 1.1 + 1e-12


def test_noise_disabled_is_identity():
    spec = CostSpec(noise_amplitude=0.0, noise_spike_rate=0.0)
    noise = NoiseModel(spec, rank=0)
    assert noise.stretch(0.5) == 0.5


def test_noise_zero_time_unchanged():
    noise = NoiseModel(CostSpec(), rank=0)
    assert noise.stretch(0.0) == 0.0


def test_spikes_appear_at_expected_rate():
    spec = CostSpec(noise_amplitude=0.0, noise_spike_rate=100.0,
                    noise_spike_time=1.0)
    noise = NoiseModel(spec, rank=5)
    # 1000 charges of 1 ms with 100 spikes/s -> ~100 spikes expected.
    spikes = sum(1 for _ in range(1000) if noise.stretch(1e-3) > 0.5)
    assert 50 < spikes < 200


# ----------------------------------------------------------------------
# Network extensions
# ----------------------------------------------------------------------
def test_scaled_to_adds_hop_latency():
    net = NetworkSpec()
    big = net.scaled_to(64)
    assert big.latency_inter == pytest.approx(
        net.latency_inter + 6 * net.hop_latency
    )
    assert big.latency_intra == net.latency_intra


def test_scaled_to_single_node_unchanged():
    net = NetworkSpec()
    assert net.scaled_to(1) is net


def test_injection_time_components():
    net = NetworkSpec()
    t = net.injection_time(1 << 20, same_node=False)
    assert t == pytest.approx(
        net.injection_gap + (1 << 20) / net.bandwidth_inter
    )
    assert net.injection_time(0, same_node=True) == pytest.approx(
        net.injection_gap
    )


def test_injection_intra_uses_intra_bandwidth():
    net = NetworkSpec()
    assert net.injection_time(1 << 20, True) < net.injection_time(
        1 << 20, False
    )


def test_match_scan_cost_positive_default():
    assert NetworkSpec().match_scan_cost > 0

"""Engine telemetry bus: line atomicity, schema, aggregation, neutrality."""

import json
import multiprocessing
import os
from dataclasses import replace

import pytest

from repro import AmrConfig, RunSpec, sphere
from repro.exec import ResultCache, RunStatsStore, Sweep, SweepEngine
from repro.exec.engine import RunOutcome, run_spec_dict
from repro.pipeline import (
    PipelineNode,
    PipelineSpec,
    register_generator,
    run_pipeline,
)
from repro.obs import EngineReport
from repro.obs.telemetry import (
    TELEMETRY_ENV,
    QueueEmitter,
    TelemetryBus,
    TelemetryError,
    drain_queue,
    iter_records,
    read_records,
    validate_file,
    validate_record,
)


def small_config(num_ranks=2, **overrides):
    kwargs = dict(
        npx=num_ranks, npy=1, npz=1, init_x=1, init_y=2, init_z=2,
        nx=4, ny=4, nz=4, num_vars=2, num_tsteps=1, stages_per_ts=2,
        refine_freq=1, checksum_freq=2, max_refine_level=1,
        payload="synthetic",
        objects=(sphere(center=(0.3, 0.3, 0.3), radius=0.25),),
    )
    kwargs.update(overrides)
    return AmrConfig(**kwargs)


def small_sweep(n=3):
    variants = ("mpi_only", "fork_join", "tampi_dataflow")
    return [
        RunSpec(config=small_config(), machine="laptop",
                variant=variants[i % 3], ranks_per_node=2, sched_seed=i)
        for i in range(n)
    ]


def _crash_once(spec_dict):
    marker_dir = os.environ["REPRO_EXEC_TEST_DIR"]
    marker = os.path.join(marker_dir, "crashed")
    if not os.path.exists(marker):
        open(marker, "w").close()
        os._exit(42)
    return run_spec_dict(spec_dict)


@register_generator("tel.boom")
def _tel_boom(params, deps):
    raise RuntimeError("boom")


@register_generator("tel.downstream")
def _tel_downstream(params, deps):
    return {"never": "runs"}


def _hammer_bus(path, wid, count):
    with TelemetryBus(path, wid=wid) as bus:
        for i in range(count):
            bus.emit("job_queued", node=f"n{wid}-{i}",
                     reason="x" * 500)  # exercises truncation too


# ----------------------------------------------------------------------
# Schema and stream primitives
# ----------------------------------------------------------------------
class TestSchema:
    def test_validate_record_rejects_bad_shapes(self):
        with pytest.raises(TelemetryError):
            validate_record(["not", "a", "dict"])
        with pytest.raises(TelemetryError, match="base field"):
            validate_record({"type": "job_queued"})
        with pytest.raises(TelemetryError, match="unknown record type"):
            validate_record({"type": "nope", "t": 0.0, "pid": 1})
        with pytest.raises(TelemetryError, match="missing fields"):
            validate_record({"type": "job_launched", "t": 0.0, "pid": 1,
                             "node": "a"})
        record = {"type": "job_queued", "t": 1.0, "pid": 2, "node": "a"}
        assert validate_record(record) is record

    def test_corrupt_line_raises_with_line_number(self, tmp_path):
        path = tmp_path / "tel.jsonl"
        with TelemetryBus(path) as bus:
            bus.emit("job_queued", node="a")
        with open(path, "a") as fh:
            fh.write('{"torn": \n')
        with pytest.raises(TelemetryError, match=":2"):
            read_records(path)
        # Unvalidated iteration still chokes on unparsable JSON.
        with pytest.raises(TelemetryError):
            list(iter_records(path, validate=False))

    def test_oversized_record_degrades_to_stub(self, tmp_path):
        path = tmp_path / "tel.jsonl"
        with TelemetryBus(path) as bus:
            bus.emit("job_queued", node="n", blob="y" * 10_000)
        (record,) = read_records(path, validate=False)
        assert record["truncated"] is True
        assert len(json.dumps(record)) < 4096

    def test_truncated_fields_stay_under_bound(self, tmp_path):
        path = tmp_path / "tel.jsonl"
        with TelemetryBus(path) as bus:
            bus.emit("job_retry", node="n", attempt=1,
                     reason="r" * 5_000)
        (record,) = read_records(path)
        assert len(record["reason"]) == 200

    def test_from_env_disabled_and_unwritable(self, tmp_path,
                                              monkeypatch):
        monkeypatch.delenv(TELEMETRY_ENV, raising=False)
        assert TelemetryBus.from_env() is None
        monkeypatch.setenv(
            TELEMETRY_ENV, str(tmp_path / "no" / "such" / "dir" / "t")
        )
        assert TelemetryBus.from_env() is None  # never fails the run

    def test_queue_emitter_and_drain(self, tmp_path):
        queue = multiprocessing.get_context().Queue()
        emitter = QueueEmitter(queue, wid=3, run="f" * 8, node="n")
        emitter.emit("run_start")
        emitter.emit("run_end", ok=True)
        path = tmp_path / "tel.jsonl"
        with TelemetryBus(path) as bus:
            import time
            deadline = time.monotonic() + 5.0
            moved = 0
            while moved < 2 and time.monotonic() < deadline:
                moved += drain_queue(queue, bus)
        records = read_records(path)
        assert [r["type"] for r in records] == ["run_start", "run_end"]
        assert all(r["wid"] == 3 and r["node"] == "n" for r in records)


# ----------------------------------------------------------------------
# Concurrency: interleaved writers never tear a line
# ----------------------------------------------------------------------
class TestConcurrency:
    def test_parallel_writers_no_torn_lines(self, tmp_path):
        path = str(tmp_path / "tel.jsonl")
        ctx = multiprocessing.get_context(
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        procs = [
            ctx.Process(target=_hammer_bus, args=(path, wid, 200))
            for wid in range(4)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join()
        assert all(p.exitcode == 0 for p in procs)
        assert validate_file(path) == 800
        wids = {r["wid"] for r in read_records(path)}
        assert wids == {0, 1, 2, 3}

    def test_four_worker_sweep_stream_validates(self, tmp_path):
        path = tmp_path / "tel.jsonl"
        specs = small_sweep(6)
        with TelemetryBus(path) as bus:
            report = SweepEngine(jobs=4, telemetry=bus).run(
                Sweep(specs, name="tel4")
            )
        assert report.failed == 0
        count = validate_file(path)
        records = read_records(path)
        types = {r["type"] for r in records}
        assert {"engine_start", "engine_stop", "job_queued",
                "job_launched", "job_done", "run_start",
                "run_end"} <= types
        assert count == len(records)
        # Identity on every job/run record.
        for r in records:
            if r["type"].startswith(("job_", "run_")):
                assert r["node"]
        # Every pool child span carries the worker id it ran on.
        launched = [r for r in records if r["type"] == "job_launched"]
        assert {r["wid"] for r in launched} <= set(range(4))
        assert len(launched) == 6

    def test_engine_report_deterministic_across_runs(self, tmp_path):
        specs = small_sweep(5)
        digests = []
        for i in range(2):
            path = tmp_path / f"tel{i}.jsonl"
            with TelemetryBus(path) as bus:
                SweepEngine(jobs=4, telemetry=bus).run(
                    Sweep(specs, name="det")
                )
            digests.append(
                json.dumps(EngineReport.from_file(path).normalized(),
                           sort_keys=True)
            )
        assert digests[0] == digests[1]


# ----------------------------------------------------------------------
# Engine integration: lifecycle, cache, stats, retries, PDES
# ----------------------------------------------------------------------
class TestEngineIntegration:
    def test_cache_hits_emit_job_cached(self, tmp_path):
        path = tmp_path / "tel.jsonl"
        specs = small_sweep(2)
        cache = ResultCache(tmp_path / "cache")
        with TelemetryBus(path) as bus:
            engine = SweepEngine(jobs=1, cache=cache, telemetry=bus)
            engine.run(specs)
            warm = engine.run(specs)
        assert warm.cached == 2
        records = read_records(path)
        assert sum(r["type"] == "job_cached" for r in records) == 2
        # Each engine_stop reports its session's delta; the stream sum
        # reconciles with the cache object's cumulative counters.
        stops = [r for r in records if r["type"] == "engine_stop"]
        assert sum(s["cache_hits"] for s in stops) == cache.hits
        assert sum(s["cache_misses"] for s in stops) == cache.misses
        assert cache.hits == 2 and cache.misses == 2
        report = EngineReport.from_file(path)
        assert report.cache_hit_rate() is not None

    def test_stats_updates_reconcile_predictions(self, tmp_path):
        path = tmp_path / "tel.jsonl"
        stats = RunStatsStore(tmp_path / "stats.json")
        spec = small_sweep(1)[0]
        with TelemetryBus(path) as bus:
            engine = SweepEngine(jobs=1, stats=stats, telemetry=bus)
            engine.run([spec])
            # profile=True: new fingerprint (so it executes), same stats
            # signature (observational field) -> second update carries
            # the EWMA learned from the first run as its prediction.
            engine.run([replace(spec, profile=True)])
        updates = [r for r in read_records(path)
                   if r["type"] == "stats_update"]
        assert len(updates) == 2
        assert "predicted" not in updates[0]  # cold signature
        assert updates[1]["predicted"] == pytest.approx(
            updates[0]["actual"]
        )

    def test_retry_ledger_records_crashes(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_EXEC_TEST_DIR", str(tmp_path))
        path = tmp_path / "tel.jsonl"
        with TelemetryBus(path) as bus:
            report = SweepEngine(
                jobs=2, retries=2, backoff=0.01, runner=_crash_once,
                telemetry=bus,
            ).run(small_sweep(1))
        assert report.failed == 0
        records = read_records(path)
        retries = [r for r in records if r["type"] == "job_retry"]
        assert len(retries) == 1
        assert "exit code 42" in retries[0]["reason"]
        engine_report = EngineReport.from_file(path)
        ledger = engine_report.retry_ledger()
        assert len(ledger) == 1 and ledger[0][1] == 1

    def test_blocked_nodes_emit_job_blocked(self, tmp_path):
        pipeline = PipelineSpec(
            "blocked",
            nodes=[
                PipelineNode(name="bad", generator="tel.boom"),
                PipelineNode(name="down", generator="tel.downstream",
                             after=("bad",)),
            ],
        )
        path = tmp_path / "tel.jsonl"
        with TelemetryBus(path) as bus:
            report = SweepEngine(jobs=1, telemetry=bus).run(pipeline)
        assert report.failed == 1 and report.blocked == 1
        records = read_records(path)
        blocked = [r for r in records if r["type"] == "job_blocked"]
        assert blocked and blocked[0]["blocker"] == "bad"
        norm = EngineReport.from_file(path).normalized()
        assert norm["nodes"]["down"]["status"] == "blocked"

    def test_pdes_workers_emit_window_records(self, tmp_path,
                                              monkeypatch):
        path = tmp_path / "tel.jsonl"
        monkeypatch.setenv(TELEMETRY_ENV, str(path))
        cfg = small_config(num_ranks=4, npx=2, npy=2, init_x=1, init_y=1)
        spec = RunSpec(config=cfg, machine="laptop", variant="mpi_only",
                       ranks_per_node=4, pdes_workers=2)
        from repro.core import run_simulation

        run_simulation(spec)
        records = read_records(path)
        runs = [r for r in records if r["type"] == "pdes_run"]
        windows = [r for r in records if r["type"] == "pdes_window"]
        assert len(runs) == 1 and runs[0]["workers"] == 2
        assert runs[0]["run"] == spec.fingerprint()
        assert windows and {r["wid"] for r in windows} == {0, 1}
        assert sum(1 for r in windows if r["wid"] == 0) == \
            runs[0]["windows"]
        report = EngineReport.from_file(path)
        entry = report.pdes[spec.fingerprint()]
        assert entry.window_efficiency is not None
        assert set(entry.partitions) == {0, 1}

    def test_inline_and_trace_runs_get_worker_ids(self, tmp_path):
        path = tmp_path / "tel.jsonl"
        spec = small_sweep(1)[0]
        with TelemetryBus(path) as bus:
            report = SweepEngine(jobs=1, telemetry=bus).run(
                [spec, replace(spec, trace=True)]
            )
        assert report.outcomes[0].worker_id == 0
        assert report.outcomes[1].worker_id == -1
        launched = [r for r in read_records(path)
                    if r["type"] == "job_launched"]
        assert sorted(r["wid"] for r in launched) == [-1, 0]


# ----------------------------------------------------------------------
# Fingerprint / byte-identity neutrality
# ----------------------------------------------------------------------
class TestNeutrality:
    def test_fingerprint_ignores_telemetry_env(self, tmp_path,
                                               monkeypatch):
        spec = small_sweep(1)[0]
        monkeypatch.delenv(TELEMETRY_ENV, raising=False)
        off = spec.fingerprint()
        monkeypatch.setenv(TELEMETRY_ENV, str(tmp_path / "t.jsonl"))
        assert spec.fingerprint() == off

    def test_results_byte_identical_with_telemetry_on(self, tmp_path):
        specs = small_sweep(3)
        plain = SweepEngine(jobs=2).run(Sweep(specs, name="n"))
        with TelemetryBus(tmp_path / "tel.jsonl") as bus:
            instrumented = SweepEngine(jobs=2, telemetry=bus).run(
                Sweep(specs, name="n")
            )

        def blob(report):
            return json.dumps(
                [o.result.to_dict() for o in report.outcomes],
                sort_keys=True,
            )

        assert blob(plain) == blob(instrumented)
        assert (
            [o.fingerprint for o in plain.outcomes]
            == [o.fingerprint for o in instrumented.outcomes]
        )

    def test_cache_entries_shared_across_telemetry_modes(self, tmp_path):
        specs = small_sweep(2)
        cache = ResultCache(tmp_path / "cache")
        SweepEngine(jobs=1, cache=cache).run(specs)
        with TelemetryBus(tmp_path / "tel.jsonl") as bus:
            warm = SweepEngine(jobs=1, cache=cache,
                               telemetry=bus).run(specs)
        assert warm.cached == 2 and warm.executed == 0


# ----------------------------------------------------------------------
# RunOutcome worker attribution round-trip
# ----------------------------------------------------------------------
class TestRunOutcomeFields:
    def test_defaults_leave_existing_callers_untouched(self):
        outcome = RunOutcome(index=0, spec=None, fingerprint="f",
                             label="l", status="ok")
        assert outcome.worker_id is None and outcome.slots == 1

    def test_pipeline_report_roundtrips_worker_fields(self, tmp_path):
        spec = small_sweep(1)[0]
        pipeline = PipelineSpec(
            "attr", nodes=[PipelineNode(name="run0", run=spec)]
        )
        report = run_pipeline(pipeline, engine=SweepEngine(jobs=2))
        doc = json.loads(json.dumps(report.to_dict()))
        (node,) = doc["nodes"]
        assert node["worker_id"] in (0, 1)
        assert node["slots"] == 1

    def test_partitioned_outcome_reports_claimed_slots(self):
        cfg = small_config(num_ranks=4, npx=2, npy=2, init_x=1, init_y=1)
        spec = RunSpec(config=cfg, machine="laptop", variant="mpi_only",
                       ranks_per_node=4, pdes_workers=2)
        report = SweepEngine(jobs=2).run(Sweep([spec], labels=["wide"]))
        (outcome,) = report.outcomes
        assert outcome.status == "ok"
        assert outcome.slots == 2
        assert outcome.worker_id == 0


# ----------------------------------------------------------------------
# EngineReport exporters
# ----------------------------------------------------------------------
class TestEngineReportExports:
    @pytest.fixture(scope="class")
    def stream(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("tel")
        path = tmp / "tel.jsonl"
        cache = ResultCache(tmp / "cache")
        specs = small_sweep(4)
        with TelemetryBus(path) as bus:
            SweepEngine(jobs=2, cache=cache, telemetry=bus).run(
                Sweep(specs, name="export")
            )
            SweepEngine(jobs=2, cache=cache, telemetry=bus).run(
                Sweep(specs, name="export")
            )
        return path

    def test_chrome_trace_schema_matches_per_run_contract(self, stream,
                                                          tmp_path):
        report = EngineReport.from_file(stream)
        events = report.chrome_trace_events()
        assert events
        for ev in events:
            assert {"name", "ph", "pid", "tid"} <= ev.keys()
            if ev["ph"] == "X":
                assert ev["ts"] >= 0 and ev["dur"] >= 0
        assert any(ev["ph"] == "M" for ev in events)
        assert any(ev["ph"] == "X" for ev in events)
        path = tmp_path / "engine.trace.json"
        n = report.write_chrome_trace(path)
        doc = json.loads(path.read_text())
        assert len(doc["traceEvents"]) == n

    def test_ascii_summary_sections(self, stream):
        text = EngineReport.from_file(stream).ascii_summary()
        assert "engine: export" in text
        assert "worker utilization" in text
        assert "queue wait" in text
        assert "cache hit rate" in text

    def test_multi_session_streams_stay_summable(self, stream):
        # Two engine sessions share the file: counters and makespans
        # accumulate, so no worker can appear >100% utilized and the
        # outcome counts cover both sessions.
        report = EngineReport.from_file(stream)
        assert report.executed + report.cached == 8
        assert report.slot_occupancy() <= 1.0 + 1e-9
        for busy in report.worker_busy().values():
            assert busy <= report.makespan * 1.05

    def test_normalized_is_timestamp_free(self, stream):
        norm = EngineReport.from_file(stream).normalized()
        blob = json.dumps(norm)
        assert '"t"' not in blob and "wid" not in blob
        assert norm["jobs"] == 2


# ----------------------------------------------------------------------
# Live tailing: the ``top --follow`` reader across rotation/truncation
# ----------------------------------------------------------------------
def _line(rtype, t, **kw):
    return json.dumps(dict(type=rtype, t=t, pid=1, **kw)) + "\n"


def _start(t=0.0, graph="g"):
    return _line("engine_start", t, graph=graph, jobs=1, total=2)


def _stop(t=9.0, graph="g"):
    return _line("engine_stop", t, graph=graph, makespan=t, executed=2,
                 cached=0, failed=0, blocked=0)


class TestTailFollow:
    def test_reader_is_incremental(self, tmp_path):
        from repro.obs.live import TailReader

        path = tmp_path / "t.jsonl"
        path.write_text(_start() + _line("job_queued", 1.0, node="a"))
        with TailReader(path) as tail:
            first = tail.poll()
            assert [r["type"] for r in first] == [
                "engine_start", "job_queued",
            ]
            assert tail.poll() == []  # nothing appended
            with open(path, "a") as fh:
                fh.write(_line("job_queued", 2.0, node="b"))
            second = tail.poll()
            assert [r["node"] for r in second] == ["b"]
            assert len(tail.records) == 3
            assert tail.report().graph == "g"

    def test_reader_buffers_torn_final_line(self, tmp_path):
        from repro.obs.live import TailReader

        path = tmp_path / "t.jsonl"
        whole = _line("job_queued", 1.0, node="a")
        path.write_text(_start() + whole[:10])  # writer mid-append
        with TailReader(path) as tail:
            assert [r["type"] for r in tail.poll()] == ["engine_start"]
            with open(path, "a") as fh:
                fh.write(whole[10:])  # the rest of the record arrives
            assert [r["node"] for r in tail.poll()] == ["a"]

    def test_reader_reopens_after_compaction(self, tmp_path):
        """os.replace swaps the inode under the follower — the pre-fix
        reader kept serving the stale generation forever."""
        from repro.obs.live import TailReader

        path = tmp_path / "t.jsonl"
        path.write_text(
            _start(graph="before")
            + _line("job_queued", 1.0, node="a")
            + _line("job_queued", 2.0, node="b")
        )
        with TailReader(path) as tail:
            assert len(tail.poll()) == 3
            # Compaction: a new, smaller generation replaces the file.
            compacted = tmp_path / "t.jsonl.new"
            compacted.write_text(_start(graph="after") + _stop())
            os.replace(compacted, path)
            fresh = tail.poll()
            assert [r["type"] for r in fresh] == [
                "engine_start", "engine_stop",
            ]
            # State from the dead generation is gone.
            assert tail.records == fresh
            assert tail.report().graph == "after"

    def test_reader_reopens_after_in_place_truncation(self, tmp_path):
        from repro.obs.live import TailReader

        path = tmp_path / "t.jsonl"
        path.write_text(
            _start() + _line("job_queued", 1.0, node="a" * 40)
        )
        with TailReader(path) as tail:
            assert len(tail.poll()) == 2
            path.write_text(_start(graph="g2"))  # same inode, shrunk
            records = tail.poll()
            assert [r["graph"] for r in records] == ["g2"]
            assert tail.records == records

    def test_reader_tolerates_missing_file(self, tmp_path):
        from repro.obs.live import TailReader

        path = tmp_path / "t.jsonl"
        with TailReader(path) as tail:
            assert tail.poll() == []  # not created yet — not an error
            path.write_text(_start())
            assert len(tail.poll()) == 1
            path.unlink()  # writer between unlink and replace
            assert tail.poll() == []
            assert len(tail.records) == 1  # keeps showing what it has

    def test_follow_survives_rotation_mid_stream(self, tmp_path,
                                                 monkeypatch):
        """End to end: ``top --follow`` must pick up the new generation
        (and its engine_stop) after the stream is compacted."""
        import io
        import time as time_mod

        from repro.obs.live import follow

        path = tmp_path / "t.jsonl"
        path.write_text(
            _start(graph="before") + _line("job_queued", 1.0, node="a")
        )

        def rotate_instead_of_sleeping(_interval):
            compacted = tmp_path / "t.jsonl.new"
            compacted.write_text(_start(graph="after") + _stop())
            os.replace(compacted, path)

        monkeypatch.setattr(
            time_mod, "sleep", rotate_instead_of_sleeping
        )
        out = io.StringIO()
        frame = follow(path, interval=0.01, out=out, clear=False,
                       max_frames=5)
        assert "after" in frame and "finished" in frame
        assert "before" not in frame

"""Run-duration statistics: signature normalization, store resilience."""

import dataclasses
import json

from repro import AmrConfig, RunSpec, marenostrum4, sphere
from repro.exec import (
    ResultCache,
    RunStatsStore,
    SweepEngine,
    fallback_cost,
    spec_signature,
)
from repro.faults import FaultPlan, noise_plan


def small_config(**overrides):
    kwargs = dict(
        npx=2, npy=1, npz=1, init_x=1, init_y=2, init_z=2,
        nx=4, ny=4, nz=4, num_vars=2, num_tsteps=1, stages_per_ts=2,
        refine_freq=1, checksum_freq=2, max_refine_level=1,
        payload="synthetic",
        objects=(sphere(center=(0.3, 0.3, 0.3), radius=0.25),),
    )
    kwargs.update(overrides)
    return AmrConfig(**kwargs)


def base_spec(**overrides):
    kwargs = dict(
        config=small_config(), machine="laptop", variant="tampi_dataflow",
        num_nodes=1, ranks_per_node=2,
    )
    kwargs.update(overrides)
    return RunSpec(**kwargs)


# ----------------------------------------------------------------------
# Signature normalization (what shares one duration history)
# ----------------------------------------------------------------------
def test_observational_fields_share_one_signature():
    sig = spec_signature(base_spec())
    assert spec_signature(base_spec(profile=True)) == sig
    assert spec_signature(base_spec(trace_max_events=100)) == sig
    assert spec_signature(
        base_spec(profile=True, trace_max_events=7)
    ) == sig


def test_pdes_worker_counts_keep_distinct_histories():
    """Regression: ``pdes_workers`` divides host wall time, so a serial
    run and a 4-worker run must NOT share one EWMA entry (they used to,
    polluting both predictions and skewing critical-path ordering)."""
    serial = spec_signature(base_spec())
    assert spec_signature(base_spec(pdes_workers=4)) != serial
    assert spec_signature(base_spec(pdes_workers=2)) != spec_signature(
        base_spec(pdes_workers=4)
    )
    # The partition *policy* is still observational: with the worker
    # count fixed it only shifts window-barrier slack.
    assert spec_signature(
        base_spec(pdes_workers=2, pdes_partition="contiguous")
    ) == spec_signature(base_spec(pdes_workers=2))
    # Observational knobs still fold into the partitioned key.
    assert spec_signature(
        base_spec(pdes_workers=8, profile=True)
    ) == spec_signature(base_spec(pdes_workers=8))


def test_pdes_worker_histories_accumulate_separately(tmp_path):
    """The satellite claim end-to-end: recording a partitioned duration
    must leave the serial prediction untouched, and vice-versa."""
    store = RunStatsStore(tmp_path / "stats.json")
    serial_sig = spec_signature(base_spec())
    pdes_sig = spec_signature(base_spec(pdes_workers=4))
    store.record(serial_sig, 8.0)
    store.record(pdes_sig, 2.0)
    assert store.predict(serial_sig) == 8.0
    assert store.predict(pdes_sig) == 2.0
    entry = store.get(serial_sig)
    assert entry["runs"] == 1 and entry["last"] == 8.0


def test_signature_version_orphans_v1_entries():
    """Moving ``pdes_workers`` into the signature bumped the version, so
    every pre-migration key (which blended serial and partitioned
    durations) is unreachable — the graceful-invalidation contract."""
    import hashlib
    import json

    from repro.exec.stats import OBSERVATIONAL_FIELDS, SIGNATURE_VERSION

    assert SIGNATURE_VERSION >= 2
    spec = base_spec()
    d = spec.resolve().to_dict()
    for field in OBSERVATIONAL_FIELDS:
        d.pop(field, None)
    v1_blob = json.dumps(
        {"sig": 1, "spec": d},
        sort_keys=True, separators=(",", ":"), allow_nan=False,
    )
    v1_key = hashlib.sha256(v1_blob.encode("utf-8")).hexdigest()
    assert spec_signature(spec) != v1_key


def test_every_spec_field_is_classified():
    """Each ``RunSpec`` field must be declared semantic or observational
    — exactly one of the two.  This is the test that would have caught
    ``profile`` leaking into signatures (and now ``pdes_workers``): a
    new field fails here until its signature role is decided."""
    from repro.exec.stats import OBSERVATIONAL_FIELDS, SEMANTIC_FIELDS

    spec_fields = {f.name for f in dataclasses.fields(RunSpec)}
    classified = set(SEMANTIC_FIELDS) | set(OBSERVATIONAL_FIELDS)
    assert set(SEMANTIC_FIELDS).isdisjoint(OBSERVATIONAL_FIELDS), (
        "a field cannot be both semantic and observational"
    )
    assert classified == spec_fields, (
        f"unclassified spec fields: {sorted(spec_fields - classified)}; "
        f"stale classifications: {sorted(classified - spec_fields)}"
    )
    # And the classification is real: every semantic field perturbs the
    # signature via at least one canonical example.
    sig = spec_signature(base_spec())
    assert spec_signature(base_spec(variant="fork_join")) != sig
    assert spec_signature(base_spec(scheduler="fifo")) != sig


def test_inactive_fault_plan_shares_the_clean_signature():
    clean = spec_signature(base_spec())
    idle = spec_signature(base_spec(faults=FaultPlan()))
    assert idle == clean
    active = spec_signature(base_spec(faults=noise_plan(1.0)))
    assert active != clean


def test_preset_and_expanded_machine_share_one_signature():
    assert (
        spec_signature(base_spec(machine="marenostrum4"))
        == spec_signature(base_spec(machine=marenostrum4()))
    )


def test_signature_sensitive_to_what_actually_runs():
    sig = spec_signature(base_spec())
    assert spec_signature(base_spec(variant="fork_join")) != sig
    assert spec_signature(
        base_spec(config=small_config(num_tsteps=2))
    ) != sig
    assert spec_signature(base_spec(num_nodes=2)) != sig


def test_signature_has_no_package_version():
    """History must survive version bumps (unlike cache fingerprints)."""
    from repro import __version__

    spec = base_spec()
    assert spec_signature(spec) == spec_signature(spec)
    # The fingerprint *does* mix the version in, so they must differ.
    assert spec_signature(spec) != spec.fingerprint()


# ----------------------------------------------------------------------
# Fallback cost model
# ----------------------------------------------------------------------
def test_fallback_cost_is_positive_and_scales_with_work():
    small = fallback_cost(base_spec())
    assert small > 0
    bigger = fallback_cost(base_spec(config=small_config(num_tsteps=4)))
    assert bigger > small
    deeper = fallback_cost(
        base_spec(config=small_config(max_refine_level=2))
    )
    assert deeper > small


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------
def test_store_round_trips_through_disk(tmp_path):
    path = tmp_path / "stats.json"
    store = RunStatsStore(path)
    store.record("sig-a", 1.0)
    store.record("sig-a", 3.0)
    store.flush()
    again = RunStatsStore(path)
    entry = again.get("sig-a")
    assert entry["runs"] == 2
    assert entry["mean"] == 2.0
    assert again.predict("sig-a") == 2.0  # EWMA alpha=0.5: 0.5*3 + 0.5*1


def test_corrupt_stats_file_is_a_cold_start(tmp_path):
    path = tmp_path / "stats.json"
    path.write_text("{not json at all")
    store = RunStatsStore(path)
    assert len(store) == 0
    assert store.predict("anything") is None
    store.record("sig", 0.5)
    store.flush()
    # The corrupt file was replaced by a valid one.
    doc = json.loads(path.read_text())
    assert doc["version"] == 1 and "sig" in doc["entries"]


def test_wrong_shape_stats_file_is_a_cold_start(tmp_path):
    path = tmp_path / "stats.json"
    path.write_text(json.dumps(["not", "a", "dict"]))
    assert len(RunStatsStore(path)) == 0


def test_cached_hits_update_history_from_envelope_times(tmp_path):
    store = RunStatsStore(tmp_path / "stats.json")
    store.record("sig", 2.0, cached=True)
    entry = store.get("sig")
    assert entry["cached"] == 1 and entry["runs"] == 1
    # Old envelopes without wall_time only bump the hit counter.
    store.record("sig", None, cached=True)
    entry = store.get("sig")
    assert entry["cached"] == 2 and entry["runs"] == 1


def test_missing_file_is_empty_not_an_error(tmp_path):
    store = RunStatsStore(tmp_path / "nope" / "stats.json")
    assert len(store) == 0
    store.record("s", 1.0)
    store.flush()  # creates the parent directory
    assert (tmp_path / "nope" / "stats.json").exists()


# ----------------------------------------------------------------------
# Engine integration: every completed run feeds the store
# ----------------------------------------------------------------------
def test_engine_records_executions_and_cache_hits(tmp_path):
    spec = base_spec()
    sig = spec_signature(spec)
    cache = ResultCache(tmp_path / "cache")
    stats = RunStatsStore(tmp_path / "stats.json")
    SweepEngine(jobs=1, cache=cache, stats=stats).run([spec])
    entry = RunStatsStore(tmp_path / "stats.json").get(sig)
    assert entry is not None and entry["runs"] == 1

    # A warm re-run is 100% cached yet still feeds the history (from the
    # execution time stored in the cache envelope).
    stats2 = RunStatsStore(tmp_path / "stats.json")
    report = SweepEngine(jobs=1, cache=cache, stats=stats2).run([spec])
    assert report.cached == 1
    entry = RunStatsStore(tmp_path / "stats.json").get(sig)
    assert entry["cached"] == 1 and entry["runs"] == 2


def test_profiled_run_feeds_the_plain_spec_history(tmp_path):
    """The satellite claim end-to-end: profile=True shares the key."""
    stats = RunStatsStore(tmp_path / "stats.json")
    SweepEngine(jobs=1, stats=stats).run([base_spec(profile=True)])
    entry = stats.get(spec_signature(base_spec()))
    assert entry is not None and entry["runs"] == 1


def test_predict_costs_prefers_history_over_fallback(tmp_path):
    from repro.exec import Sweep
    from repro.pipeline import JobGraph

    spec = base_spec()
    other = base_spec(variant="fork_join")
    stats = RunStatsStore(tmp_path / "stats.json")
    stats.record(spec_signature(spec), 2.5)
    engine = SweepEngine(jobs=1, stats=stats)
    graph = JobGraph.from_sweep(Sweep([spec, other]))
    costs = engine.predict_costs(graph)
    assert costs[0] == 2.5
    # The cold node gets a fallback estimate rescaled to measured
    # history, inflated by the conservatism factor — never zero.
    assert costs[1] > 0
